//! From single and homogeneous to heterogeneous accelerators (Table II).
//!
//! On the homogeneous workload W3 (two CIFAR-10 classification tasks) the
//! paper compares four accelerator configurations: unconstrained NAS with
//! maximum resources, a single accelerator, two homogeneous
//! sub-accelerators and NASAIC's heterogeneous design.  This example
//! regenerates that comparison and prints the resulting table.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example heterogeneous_vs_homogeneous
//! ```

use nasaic::core::experiments::{table2, ExperimentScale};
use nasaic::core::studies::AcceleratorStudy;

fn main() {
    let result = table2::run(ExperimentScale::Quick, 9);
    print!("{result}");

    println!("\nObservations (compare with Table II of the paper):");
    let nas = result.row(AcceleratorStudy::NasUnconstrained);
    let single = result.row(AcceleratorStudy::SingleAccelerator);
    let hetero = result.row(AcceleratorStudy::Heterogeneous);
    if let (Some(nas), Some(hetero)) = (nas, hetero) {
        println!(
            "  - NAS reaches {:.2}% but violates the specs even with every PE and all the \
             bandwidth; NASAIC's best network reaches {:.2}% while satisfying them.",
            nas.best_accuracy() * 100.0,
            hetero.best_accuracy() * 100.0
        );
    }
    if let (Some(single), Some(hetero)) = (single, hetero) {
        println!(
            "  - A single accelerator is limited to {:.2}% because the two task instances \
             execute sequentially; exploiting task-level parallelism with two \
             (heterogeneous) sub-accelerators lifts the best network to {:.2}%.",
            single.best_accuracy() * 100.0,
            hetero.best_accuracy() * 100.0
        );
    }
    if let Some(hetero) = hetero {
        println!(
            "  - The heterogeneous design runs two distinct networks ({}), which the paper \
             points out is useful for ensemble deployment.",
            hetero.architectures.join(" and ")
        );
    }
}
