//! Swapping the accuracy oracle: calibrated surrogate vs proxy training.
//!
//! The paper trains every sampled DNN from scratch on a GPU.  This
//! reproduction uses a calibrated analytical surrogate by default, but the
//! full train/validate code path exists as well: a small MLP trained on a
//! synthetic classification task whose width scales with the sampled
//! architecture.  This example compares the two oracles on a few
//! architectures and runs a short co-exploration with the proxy trainer in
//! the loop.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example proxy_training
//! ```

use nasaic::accuracy::proxy::{ProxyAccuracyModel, ProxyTrainer};
use nasaic::accuracy::{AccuracyModel, SurrogateModel};
use nasaic::core::prelude::*;

fn main() {
    let surrogate = SurrogateModel::paper_calibrated();
    let proxy = ProxyTrainer::fast();

    println!("architecture                         surrogate    proxy (hidden units)");
    for values in [
        vec![8, 32, 0, 32, 0, 32, 0],
        vec![16, 64, 1, 128, 1, 128, 1],
        vec![32, 128, 2, 256, 2, 256, 2],
    ] {
        let arch = Backbone::ResNet9Cifar10.materialize_values(&values);
        let s = surrogate.evaluate(Backbone::ResNet9Cifar10, &arch);
        let report = proxy.train(&arch);
        println!(
            "{:<36} {:>6.2}%      {:>6.2}%  ({})",
            arch.hyperparameter_string(),
            s * 100.0,
            report.validation_accuracy * 100.0,
            report.hidden_size
        );
    }

    // Run a very small co-exploration with the proxy trainer as the
    // accuracy oracle.  This exercises the identical search code path the
    // surrogate uses — only the "training and validating" box of Fig. 4
    // changes.
    println!("\nrunning a short W3 co-exploration with the proxy trainer in the loop...");
    let config = NasaicConfig {
        episodes: 8,
        hardware_trials: 2,
        bound_samples: 5,
        oracle: AccuracyOracle::Proxy(ProxyAccuracyModel::default()),
        ..NasaicConfig::fast_demo(5)
    };
    let outcome = Nasaic::new(
        Workload::w3(),
        DesignSpecs::for_workload(WorkloadId::W3),
        config,
    )
    .run();
    println!("{outcome}");
    println!(
        "\nNote: the proxy task is synthetic, so its absolute accuracy is not comparable \
         to CIFAR-10 — the point is that the train/validate/reward plumbing is identical."
    );
}
