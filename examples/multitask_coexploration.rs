//! Multi-task co-exploration on AR-glasses style workloads.
//!
//! The paper motivates NASAIC with edge devices (AR glasses) that run
//! several AI tasks concurrently — e.g. image classification and
//! segmentation — on one heterogeneous ASIC.  This example runs the
//! co-exploration for all three paper workloads and prints a Fig. 6 style
//! summary per workload: how many spec-compliant solutions were explored,
//! the accuracy lower bound of the smallest networks, and the best solution.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multitask_coexploration [episodes]
//! ```

use nasaic::core::experiments::fig6;
use nasaic::core::experiments::ExperimentScale;
use nasaic::core::prelude::*;

fn main() {
    let episodes_override: Option<usize> = std::env::args().nth(1).and_then(|v| v.parse().ok());
    let scale = ExperimentScale::Quick;

    for (workload_id, seed) in [
        (WorkloadId::W1, 101_u64),
        (WorkloadId::W2, 202),
        (WorkloadId::W3, 303),
    ] {
        let panel = if let Some(episodes) = episodes_override {
            // Custom episode budget: run the search directly.
            let workload = Workload::for_id(workload_id);
            let specs = DesignSpecs::for_workload(workload_id);
            let config = NasaicConfig {
                episodes,
                ..NasaicConfig::paper(seed)
            };
            let outcome = Nasaic::new(workload, specs, config).run();
            println!("== {workload_id}: {outcome}");
            println!();
            continue;
        } else {
            fig6::run_panel(workload_id, scale, seed)
        };
        println!("{panel}");
        if let Some(best) = &panel.best {
            println!(
                "  -> best solution uses {} and reaches {:?}",
                best.label,
                best.accuracies
                    .iter()
                    .map(|a| format!("{:.2}%", a * 100.0))
                    .collect::<Vec<_>>()
            );
        }
        println!(
            "  -> every reported solution satisfies the specs: {}",
            panel.all_explored_meet_specs()
        );
        println!();
    }
}
