//! Regenerate every figure and table of the paper's evaluation in one go.
//!
//! ```text
//! cargo run --release --example reproduce_all [quick|benchmark|paper]
//! ```
//!
//! `quick` takes on the order of a minute, `benchmark` several minutes,
//! `paper` reproduces the paper's full search effort.  The output of this
//! binary is the source of the measured numbers recorded in EXPERIMENTS.md.

use nasaic::core::experiments::headline::HeadlineClaims;
use nasaic::core::experiments::{fig1, fig6, table1, table2, ExperimentScale};
use nasaic::core::prelude::*;

fn main() {
    let scale = match std::env::args().nth(1).unwrap_or_default().as_str() {
        "paper" => ExperimentScale::Paper,
        "benchmark" | "bench" => ExperimentScale::Benchmark,
        _ => ExperimentScale::Quick,
    };
    let seed = 2020;
    println!("NASAIC reproduction — regenerating all experiments at {scale} scale\n");

    println!("==================== Fig. 1 ====================");
    let fig1_result = fig1::run(scale, seed);
    print!("{fig1_result}");

    println!("\n==================== Table I ====================");
    let table1_result = table1::run(scale, seed);
    print!("{table1_result}");
    for workload in [WorkloadId::W1, WorkloadId::W2] {
        if let Some(claims) = HeadlineClaims::derive(&table1_result, workload) {
            print!("{claims}");
        }
    }

    println!("\n==================== Table II ====================");
    let table2_result = table2::run(scale, seed);
    print!("{table2_result}");

    println!("\n==================== Fig. 6 ====================");
    let fig6_result = fig6::run(scale, seed);
    print!("{fig6_result}");

    println!("\nDone. Compare against Section V of the paper (see EXPERIMENTS.md).");
}
