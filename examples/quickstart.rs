//! Quickstart: co-explore neural architectures and a heterogeneous ASIC
//! accelerator for the paper's W1 workload (CIFAR-10 classification +
//! Nuclei segmentation) under the paper's design specs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nasaic::core::prelude::*;

fn main() {
    // 1. Pick a workload and its design specs (Section V-A of the paper).
    let workload = Workload::w1();
    let specs = DesignSpecs::for_workload(WorkloadId::W1);
    println!("workload: {workload}");
    println!("specs:    {specs}");

    // 2. Configure the search.  `fast_demo` keeps the run to a few seconds;
    //    `NasaicConfig::paper(seed)` reproduces the paper's 500-episode run.
    let config = NasaicConfig::fast_demo(42);
    println!(
        "search:   {} episodes x (1 joint + {} hardware-only) steps, rho = {}",
        config.episodes, config.hardware_trials, config.rho
    );

    // 3. Run NASAIC.
    let outcome = Nasaic::new(workload, specs, config).run();
    println!("\n{outcome}\n");

    // 4. Inspect the best solution.
    match &outcome.best {
        Some(best) => {
            println!(
                "accelerator:  {}",
                best.candidate.accelerator.paper_notation()
            );
            for (arch, acc) in best
                .candidate
                .architectures
                .iter()
                .zip(&best.evaluation.accuracies)
            {
                println!(
                    "  network {} {} -> {:.2}%",
                    arch.name,
                    arch.hyperparameter_string(),
                    acc * 100.0
                );
            }
            println!("hardware:     {}", best.evaluation.metrics);
            println!(
                "all design specs satisfied: {}",
                best.evaluation.meets_specs()
            );
        }
        None => println!("no spec-compliant solution found — increase the episode budget"),
    }
}
