//! Why co-exploration is necessary: the Fig. 1 motivation experiment.
//!
//! Reproduces the paper's opening figure on a CIFAR-10 classification task:
//!
//! * successive NAS→ASIC optimisation — the most accurate architecture is
//!   found first, then accelerator designs are swept: every resulting
//!   solution violates the design specs;
//! * hardware-aware NAS on one fixed ASIC design — feasible but leaves
//!   accuracy on the table;
//! * the "closest to the specs" heuristic — also sub-optimal;
//! * the joint optimum located by Monte-Carlo search of the combined
//!   space — feasible and more accurate, but found blindly.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use nasaic::core::experiments::{fig1, ExperimentScale};

fn main() {
    let result = fig1::run(ExperimentScale::Quick, 7);
    print!("{result}");

    println!("\nInterpretation:");
    let nas_acc = result.nas_accuracy().unwrap_or(0.0);
    println!(
        "  - NAS alone reaches {:.2}% accuracy, but none of the {} accelerator designs \
         swept for it meets the specs (all violate: {}).",
        nas_acc * 100.0,
        result.nas_then_asic.len(),
        result.all_nas_points_violate_specs()
    );
    if let (Some(star), Some(triangle)) = (&result.monte_carlo_optimal, &result.hw_aware_nas) {
        println!(
            "  - Joint exploration finds a feasible solution at {:.2}% accuracy, \
             vs {:.2}% for NAS made aware of a single fixed ASIC design.",
            star.accuracies[0] * 100.0,
            triangle.accuracies[0] * 100.0
        );
    }
    if let Some(square) = &result.closest_to_specs {
        println!(
            "  - Simply picking the solution closest to the specs yields {:.2}% — \
             closeness to the specs is not the same as accuracy.",
            square.accuracies[0] * 100.0
        );
    }
    println!(
        "  => the architecture and the accelerator have to be explored jointly, \
         which is exactly what NASAIC does."
    );
}
