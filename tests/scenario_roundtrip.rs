//! Scenario-layer guarantees:
//!
//! 1. every built-in scenario round-trips losslessly through both config
//!    formats (TOML and JSON);
//! 2. the declarative `nasaic run --scenario w1` path is **bit-identical**
//!    to the pre-existing hardcoded `Workload::w1()` search path for the
//!    same seed and budget;
//! 3. the beyond-paper scenarios actually run end to end.

use nasaic::core::prelude::*;
use nasaic::core::scenario::Scenario;

/// Shrink a scenario's budget to test scale (structure untouched).
fn tiny(mut scenario: Scenario, seed: u64) -> Scenario {
    scenario.search.episodes = 3;
    scenario.search.hardware_trials = 2;
    scenario.search.bound_samples = 4;
    scenario.seed = seed;
    scenario
}

#[test]
fn every_builtin_round_trips_through_toml_and_json() {
    for name in registry::names() {
        let scenario = registry::get(name).unwrap();
        let from_toml = Scenario::from_toml_str(&scenario.to_toml_string())
            .unwrap_or_else(|e| panic!("{name} TOML: {e}"));
        assert_eq!(from_toml, scenario, "{name} TOML round trip");
        let from_json = Scenario::from_json_str(&scenario.to_json_string())
            .unwrap_or_else(|e| panic!("{name} JSON: {e}"));
        assert_eq!(from_json, scenario, "{name} JSON round trip");
    }
}

#[test]
fn scenario_w1_is_bit_identical_to_the_hardcoded_path() {
    // The pre-existing hardcoded path, exactly as PR 1 left it.
    let direct = Nasaic::new(
        Workload::w1(),
        DesignSpecs::for_workload(WorkloadId::W1),
        NasaicConfig::fast_demo(7),
    )
    .run();

    // The declarative path: registry -> Scenario -> run.
    let mut scenario = registry::get("w1").unwrap();
    scenario.seed = 7;
    scenario.search.episodes = 40;
    scenario.search.hardware_trials = 4;
    scenario.search.bound_samples = 10;
    assert_eq!(scenario.nasaic_config(), NasaicConfig::fast_demo(7));
    let declarative = scenario.run_outcome();

    // Full structural equality: every explored candidate, every
    // evaluation, every reward — not just the headline number.
    assert_eq!(declarative, direct);

    // And once more through the TOML serializer, so the config-file path
    // (parse -> run) is covered end to end.
    let reparsed = Scenario::from_toml_str(&scenario.to_toml_string()).unwrap();
    assert_eq!(reparsed.run_outcome(), direct);
}

#[test]
fn scenario_w3_matches_hardcoded_path_at_test_scale() {
    let scenario = tiny(registry::get("w3").unwrap(), 13);
    let config = NasaicConfig {
        episodes: 3,
        hardware_trials: 2,
        bound_samples: 4,
        ..NasaicConfig::paper(13)
    };
    let direct = Nasaic::new(
        Workload::w3(),
        DesignSpecs::for_workload(WorkloadId::W3),
        config,
    )
    .run();
    assert_eq!(scenario.run_outcome(), direct);
}

#[test]
fn beyond_paper_scenarios_run_end_to_end() {
    for name in [
        "quad-mix",
        "area-constrained",
        "edge-single",
        "dla-homogeneous",
    ] {
        let scenario = tiny(registry::get(name).unwrap(), 19);
        let outcome = scenario.run_outcome();
        assert_eq!(outcome.episodes, 3, "{name}");
        // Decoding must hold: every explored candidate carries one
        // architecture per task and respects the sub-accelerator count.
        for solution in &outcome.explored {
            assert_eq!(
                solution.candidate.architectures.len(),
                scenario.tasks.len(),
                "{name}"
            );
            assert_eq!(
                solution.candidate.accelerator.sub_accelerators().len(),
                scenario.hardware.sub_accelerators,
                "{name}"
            );
        }
    }
}

#[test]
fn homogeneous_scenario_replicates_the_sub_accelerator() {
    // NVDLA-only homogeneous hardware prunes heavily at tiny budgets, so
    // this check keeps the full phi = 10 hardware trials and a seed whose
    // episodes get past the pruner.
    let mut scenario = registry::get("dla-homogeneous").unwrap();
    scenario.search.episodes = 10;
    scenario.search.bound_samples = 4;
    scenario.seed = 5;
    let outcome = scenario.run_outcome();
    assert!(!outcome.explored.is_empty());
    for solution in &outcome.explored {
        let subs = solution.candidate.accelerator.sub_accelerators();
        assert_eq!(subs[0], subs[1], "homogeneous mode must replicate");
        assert_eq!(subs[0].dataflow, Dataflow::Nvdla);
    }
}

#[test]
fn seeded_scenario_runs_are_deterministic() {
    let a = tiny(registry::get("quad-mix").unwrap(), 29).run_outcome();
    let b = tiny(registry::get("quad-mix").unwrap(), 29).run_outcome();
    assert_eq!(a, b);
}
