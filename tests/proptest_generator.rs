//! Property-test net over the seeded scenario generator: every generated
//! scenario must round-trip TOML+JSON bit-identically through the strict
//! schema and be feasible-or-diagnosed (structured errors, never a panic);
//! the hand-written shrinker must produce 1-minimal failing
//! [`GeneratorSpec`]s; and the beam middle tier is pinned against the
//! exact optimum on *generated* instances, not just the hand-built W1–W3
//! workloads.

use nasaic::core::scenario::generate::{shrink_to_minimal, Feasibility, GeneratorSpec};
use nasaic::core::scenario::{HardwareSpec, Scenario};
use nasaic::nn::backbone::Backbone;
use nasaic::sched::{
    solve_beam, solve_beam_unbounded, solve_exact_unseeded, solve_heuristic, EXACT_LAYER_LIMIT,
};
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Strategy over the whole [`GeneratorSpec`] parameter space — including
/// unreachable layer ranges and over-tight constraints.  Generation must
/// handle every drawn spec with a structured error or a diagnosed
/// scenario, never a panic.
struct ArbSpec;

impl Strategy for ArbSpec {
    type Value = GeneratorSpec;

    fn generate(&self, rng: &mut TestRng) -> GeneratorSpec {
        const TIGHTNESS: [f64; 5] = [0.5, 0.9, 1.0, 1.4, 3.0];
        let backbones = Backbone::all();
        let mix_len = rng.gen_range(1..4usize);
        let backbone_mix = (0..mix_len)
            .map(|_| backbones[rng.gen_range(0..backbones.len())])
            .collect();
        let lo = rng.gen_range(1..45usize);
        let width = rng.gen_range(0..12usize);
        GeneratorSpec {
            seed: rng.next_u64(),
            layer_range: (lo, lo + width),
            network_count: rng.gen_range(1..4usize),
            backbone_mix,
            accel_pool: HardwareSpec::paper(rng.gen_range(1..5usize)),
            constraint_tightness: TIGHTNESS[rng.gen_range(0..TIGHTNESS.len())],
        }
    }
}

fn arb_spec() -> ArbSpec {
    ArbSpec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generator's full contract on arbitrary specs: a structured
    /// [`GenerateError`] for impossible recipes, otherwise a scenario that
    /// survives the strict schema bit-identically in both formats, lands
    /// inside the requested layer range, and is feasible-or-diagnosed.
    /// Re-generating from the same spec reproduces the same bytes.
    #[test]
    fn generated_scenarios_round_trip_and_are_feasible_or_diagnosed(spec in arb_spec()) {
        match spec.generate() {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(generated) => {
                let toml = generated.scenario.to_toml_string();
                let from_toml = Scenario::from_toml_str(&toml).unwrap();
                prop_assert_eq!(&from_toml, &generated.scenario);
                prop_assert_eq!(from_toml.to_toml_string(), toml.clone());
                let json = generated.scenario.to_json_string();
                let from_json = Scenario::from_json_str(&json).unwrap();
                prop_assert_eq!(&from_json, &generated.scenario);
                prop_assert_eq!(from_json.to_json_string(), json);

                let (lo, hi) = spec.layer_range;
                prop_assert!((lo..=hi).contains(&generated.total_layers));
                match &generated.feasibility {
                    Feasibility::Feasible { energy_nj, makespan_cycles } => {
                        prop_assert!(*makespan_cycles <= generated.scenario.specs.latency_cycles);
                        prop_assert!(*energy_nj <= generated.scenario.specs.energy_nj);
                    }
                    Feasibility::Diagnosed(reason) => {
                        prop_assert!(!reason.to_string().is_empty());
                    }
                }

                let again = spec.generate().unwrap();
                prop_assert_eq!(again.scenario.to_toml_string(), toml);
                prop_assert_eq!(again.total_layers, generated.total_layers);
            }
        }
    }

    /// [`GeneratorSpec::sized`] always produces a generatable spec whose
    /// nominal workload never exceeds the requested rung size — the
    /// invariant the scale ladder's tier expectations rest on.
    #[test]
    fn sized_specs_generate_at_or_under_the_requested_rung(
        total in 9usize..70,
        subs in 1usize..5,
        seed in any::<u64>(),
    ) {
        let generated = GeneratorSpec::sized(total, subs, seed)
            .generate()
            .unwrap_or_else(|e| panic!("sized({total}, {subs}) must generate: {e}"));
        prop_assert!(generated.total_layers <= total);
        prop_assert!(generated.total_layers >= total.saturating_sub(5).max(1));
        // Tightness 1.0 leaves headroom on every spec axis.
        prop_assert!(generated.feasibility.is_feasible(), "{}", generated.feasibility);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every shrink candidate is strictly simpler, so shrinking always
    /// terminates.
    #[test]
    fn shrink_candidates_strictly_reduce_complexity(spec in arb_spec()) {
        for candidate in spec.shrink_candidates() {
            prop_assert!(candidate.complexity() < spec.complexity());
        }
    }

    /// [`shrink_to_minimal`] lands on a 1-minimal failing spec: it still
    /// fails, and no candidate one shrink step below it does.  Non-failing
    /// starts are returned unchanged.
    #[test]
    fn shrinking_reaches_a_one_minimal_failing_spec(
        spec in arb_spec(),
        min_networks in 1usize..4,
        min_subs in 1usize..4,
    ) {
        let fails = |s: &GeneratorSpec| {
            s.network_count >= min_networks && s.accel_pool.sub_accelerators >= min_subs
        };
        let minimal = shrink_to_minimal(&spec, fails);
        if fails(&spec) {
            prop_assert!(fails(&minimal));
            prop_assert!(minimal.complexity() <= spec.complexity());
            for candidate in minimal.shrink_candidates() {
                prop_assert!(
                    !fails(&candidate),
                    "not 1-minimal: a strictly simpler spec still fails"
                );
            }
        } else {
            prop_assert_eq!(minimal, spec);
        }
    }
}

/// Satellite pin: on seeded *generated* instances within the exact layer
/// limit, the unbounded beam reproduces the exact optimum energy bit for
/// bit, and the width-1 beam never loses to the heuristic — it is
/// feasible whenever the heuristic is, never claims a makespan the
/// constraint does not certify, and never returns more energy.
#[test]
fn beam_tier_is_pinned_against_exact_on_generated_instances() {
    for seed in 0..12u64 {
        let generated = GeneratorSpec::sized(24, 2, seed)
            .generate()
            .expect("sized specs generate");
        let problem = generated.hap_problem();
        assert!(
            problem.costs.total_layers() <= EXACT_LAYER_LIMIT,
            "seed {seed}: instance must stay within the exact tier"
        );

        let exact = solve_exact_unseeded(&problem).expect("within EXACT_LAYER_LIMIT");
        let beam = solve_beam_unbounded(&problem);
        assert_eq!(beam.feasible, exact.feasible, "seed {seed}");
        assert_eq!(
            beam.energy_nj.to_bits(),
            exact.energy_nj.to_bits(),
            "seed {seed}: unbounded beam {} != exact optimum {}",
            beam.energy_nj,
            exact.energy_nj
        );

        let heuristic = solve_heuristic(&problem);
        let narrow = solve_beam(&problem, 1);
        if heuristic.feasible {
            assert!(narrow.feasible, "seed {seed}: width-1 lost feasibility");
            assert!(
                narrow.energy_nj <= heuristic.energy_nj + 1e-9 * heuristic.energy_nj,
                "seed {seed}: width-1 beam {} worse than heuristic {}",
                narrow.energy_nj,
                heuristic.energy_nj
            );
        }
        if narrow.feasible {
            assert!(
                narrow.latency_cycles <= problem.latency_constraint,
                "seed {seed}: width-1 claims feasibility past the constraint"
            );
        }
    }
}
