//! Comparative behaviour of NASAIC and its baselines on the paper's
//! workloads (shape checks at quick scale).

use nasaic::core::baselines::{HillClimb, MonteCarloSearch, NasThenAsic};
use nasaic::core::prelude::*;

#[test]
fn nasaic_beats_the_smallest_network_baseline_on_w3() {
    let workload = Workload::w3();
    let specs = DesignSpecs::for_workload(WorkloadId::W3);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let smallest: Vec<_> = workload
        .tasks
        .iter()
        .map(|t| t.backbone.smallest_architecture())
        .collect();
    let lower = evaluator.weighted_accuracy(&evaluator.accuracies(&smallest));

    let outcome = Nasaic::new(workload, specs, NasaicConfig::fast_demo(55)).run();
    let best = outcome.best.expect("NASAIC finds a compliant W3 solution");
    assert!(best.evaluation.weighted_accuracy > lower + 0.02);
}

#[test]
fn nas_then_asic_never_produces_a_compliant_w2_solution() {
    // W2 pairs CIFAR-10 with STL-10; the accuracy-optimal STL-10 network is
    // enormous, so successive optimisation has no chance of fitting the
    // specs regardless of the hardware sweep.
    let workload = Workload::w2();
    let specs = DesignSpecs::for_workload(WorkloadId::W2);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let hardware = HardwareSpace::paper_default(2);
    let (outcome, representative) = NasThenAsic::fast(5).run_with_engine(
        &workload,
        specs,
        &hardware,
        &EvalEngine::from(&evaluator),
    );
    assert!(outcome.best.is_none());
    assert!(!representative.expect("sweep ran").evaluation.meets_specs());
}

#[test]
fn guided_search_is_more_sample_efficient_than_random_search_on_w3() {
    let workload = Workload::w3();
    let specs = DesignSpecs::for_workload(WorkloadId::W3);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let hardware = HardwareSpace::paper_default(2);

    let nasaic = Nasaic::new(workload.clone(), specs, NasaicConfig::fast_demo(77)).run();
    let nasaic_evaluations = nasaic.explored.len().max(1);
    let random = MonteCarloSearch {
        runs: nasaic_evaluations,
        seed: 77,
    }
    .run_with_engine(&workload, &hardware, &EvalEngine::from(&evaluator));

    let nasaic_best = nasaic.best_weighted_accuracy();
    let random_best = random.best_weighted_accuracy();
    match (nasaic_best, random_best) {
        // With the same evaluation budget the guided search should not be
        // meaningfully worse than blind sampling (and usually is better).
        (Some(n), Some(r)) => assert!(n >= r - 0.02, "NASAIC {n} vs random {r}"),
        (Some(_), None) => {}
        (None, _) => panic!("NASAIC found no compliant solution on W3"),
    }
}

#[test]
fn hill_climbing_finds_a_compliant_solution_but_rl_matches_or_beats_it() {
    let workload = Workload::w3();
    let specs = DesignSpecs::for_workload(WorkloadId::W3);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let hardware = HardwareSpace::paper_default(2);

    let climb = HillClimb::new(15).run_with_engine(
        &workload,
        specs,
        &hardware,
        &EvalEngine::from(&evaluator),
    );
    let nasaic = Nasaic::new(workload, specs, NasaicConfig::fast_demo(88)).run();

    let climb_best = climb.best_weighted_accuracy();
    let nasaic_best = nasaic
        .best_weighted_accuracy()
        .expect("NASAIC compliant solution");
    if let Some(c) = climb_best {
        assert!(
            nasaic_best >= c - 0.03,
            "NASAIC ({nasaic_best}) fell well behind hill climbing ({c})"
        );
    }
}
