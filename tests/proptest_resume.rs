//! Property-test net over checkpoint/resume on *generated* scenarios: for
//! every algorithm, a checkpoint taken at any snapshot point, serialized
//! to JSON, parsed back and resumed to the full budget must land on a
//! bit-identical [`SearchOutcome`] — the builtin-scenario gates in
//! `checkpoint_resume.rs`, extended across the generator's space.

use nasaic::core::prelude::*;
use nasaic::core::scenario::generate::GeneratorSpec;
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Strategy over small generated scenarios (always-generatable sized
/// specs, shrunk to test budgets).
struct ArbScenario;

impl Strategy for ArbScenario {
    type Value = Scenario;

    fn generate(&self, rng: &mut TestRng) -> Scenario {
        let total = rng.gen_range(9..30usize);
        let subs = rng.gen_range(1..4usize);
        let generated = GeneratorSpec::sized(total, subs, rng.next_u64())
            .generate()
            .expect("sized specs generate");
        let mut scenario = generated.scenario;
        scenario.search.episodes = rng.gen_range(1..3usize);
        scenario.search.hardware_trials = 2;
        scenario.search.bound_samples = 3;
        scenario.seed = rng.next_u64() >> 1; // config seeds are i64-bounded
        scenario
    }
}

fn arb_scenario() -> ArbScenario {
    ArbScenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Checkpoint -> JSON -> parse -> resume is outcome-preserving at
    /// *every* checkpoint index, for every algorithm.
    #[test]
    fn every_checkpoint_of_every_algorithm_resumes_bit_identically(
        scenario in arb_scenario()
    ) {
        let mut scenario = scenario;
        for algorithm in Algorithm::all() {
            scenario.search.algorithm = algorithm;
            let baseline = scenario.run_algorithm_with_engine(algorithm, &scenario.engine());

            let sink = RecordingCheckpointSink::every(1);
            let checkpointed = scenario.run_algorithm_checkpointed(
                algorithm,
                &scenario.engine(),
                &NullObserver,
                None,
                &sink,
            );
            prop_assert_eq!(
                &baseline,
                &checkpointed,
                "{}/{}: taking checkpoints changed the outcome",
                scenario.name,
                algorithm
            );

            for (index, checkpoint) in sink.checkpoints().iter().enumerate() {
                let parsed = SearchCheckpoint::parse_json(&checkpoint.to_json())
                    .expect("checkpoint JSON round trip");
                prop_assert_eq!(checkpoint, &parsed);
                let resumed = scenario.run_algorithm_checkpointed(
                    algorithm,
                    &scenario.engine(),
                    &NullObserver,
                    Some(&parsed),
                    &NullCheckpointSink,
                );
                prop_assert_eq!(
                    &baseline,
                    &resumed,
                    "{}/{}: resume from checkpoint {} (progress {}) diverged",
                    scenario.name,
                    algorithm,
                    index,
                    checkpoint.progress
                );
            }
        }
    }

    /// Merged shard partials reproduce the single-process outcome on
    /// generated scenarios, through the partials' JSON round trip.
    #[test]
    fn sharded_runs_merge_bit_identically(
        scenario in arb_scenario(),
        shards in 2usize..5,
    ) {
        let mut scenario = scenario;
        let workload = scenario.workload();
        for algorithm in Algorithm::all() {
            scenario.search.algorithm = algorithm;
            let baseline = scenario.run_algorithm_with_engine(algorithm, &scenario.engine());
            let plan = scenario.algorithm_shard_plan(algorithm, &scenario.engine(), shards);
            let partials: Vec<ShardPartial> = (0..shards)
                .map(|shard_index| {
                    let partial = scenario.run_algorithm_shard(
                        algorithm,
                        &scenario.engine(),
                        &NullObserver,
                        &plan,
                        shard_index,
                    );
                    ShardPartial::parse_json(&partial.to_json(), &workload)
                        .expect("shard partial JSON round trip")
                })
                .collect();
            let merged =
                scenario.merge_algorithm_shards(algorithm, &scenario.engine(), &plan, partials);
            prop_assert_eq!(
                &baseline,
                &merged,
                "{}/{}: {}-shard merge diverged",
                scenario.name,
                algorithm,
                shards
            );
        }
    }
}
