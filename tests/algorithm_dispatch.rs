//! The `SearchAlgorithm` trait + `Algorithm::instantiate` factory must be
//! a pure refactor: for every builtin scenario and every algorithm, the
//! seeded outcome through the trait path is bit-identical to constructing
//! and running the concrete driver directly (the pre-refactor dispatch),
//! and observation is passive and deterministic.

use nasaic::core::algorithm::Budget;
use nasaic::core::baselines::{
    AsicThenHwNas, EvolutionarySearch, HillClimb, MonteCarloSearch, NasThenAsic,
};
use nasaic::core::prelude::*;

/// Shrink a scenario to a test-sized budget (same shape, seconds not
/// minutes).
fn shrink(mut scenario: Scenario) -> Scenario {
    scenario.search.episodes = 3;
    scenario.search.hardware_trials = 2;
    scenario.search.bound_samples = 3;
    scenario.seed = 7;
    scenario
}

/// The pre-refactor dispatch: construct each concrete driver by hand with
/// the exact budget mapping `Scenario::run_algorithm_with_engine` used to
/// inline, and call its direct `run_with_engine` entry point.
fn direct_construction(scenario: &Scenario, algorithm: Algorithm) -> SearchOutcome {
    let workload = scenario.workload();
    let hardware = scenario.hardware_space();
    let engine = scenario.engine();
    let search = &scenario.search;
    let hardware_budget = (search.episodes * search.hardware_trials).max(1);
    match algorithm {
        Algorithm::Nasaic => Nasaic::new(workload, scenario.specs, scenario.nasaic_config())
            .with_hardware_space(hardware)
            .run_with_engine(&engine),
        Algorithm::MonteCarlo => MonteCarloSearch {
            runs: search.total_evaluations(),
            seed: scenario.seed,
        }
        .run_with_engine(&workload, &hardware, &engine),
        Algorithm::HillClimb => HillClimb {
            max_steps: search.episodes,
            rho: search.rho,
        }
        .run_with_engine(&workload, scenario.specs, &hardware, &engine),
        Algorithm::Evolutionary => EvolutionarySearch {
            population: 24,
            generations: (search.total_evaluations() / 24).max(1),
            tournament: 3,
            mutation_rate: 0.2,
            rho: search.rho,
            seed: scenario.seed,
        }
        .run_with_engine(&workload, scenario.specs, &hardware, &engine),
        Algorithm::NasThenAsic => {
            NasThenAsic {
                nas_episodes: search.episodes,
                hardware_samples: hardware_budget,
                seed: scenario.seed,
            }
            .run_with_engine(&workload, scenario.specs, &hardware, &engine)
            .0
        }
        Algorithm::AsicThenHwNas => {
            AsicThenHwNas {
                monte_carlo_runs: hardware_budget,
                nas_episodes: search.episodes,
                rho: search.rho,
                seed: scenario.seed,
            }
            .run_with_engine(&workload, scenario.specs, &hardware, &engine)
            .1
        }
    }
}

#[test]
fn trait_factory_path_is_bit_identical_to_direct_construction_everywhere() {
    for name in registry::names() {
        let mut scenario = shrink(registry::get(name).expect("built-in"));
        for algorithm in Algorithm::all() {
            scenario.search.algorithm = algorithm;
            let through_trait = scenario.run_algorithm_with_engine(algorithm, &scenario.engine());
            let direct = direct_construction(&scenario, algorithm);
            assert_eq!(
                through_trait, direct,
                "trait-factory outcome diverged from direct construction \
                 on scenario `{name}` with algorithm `{algorithm}`"
            );
        }
    }
}

#[test]
fn instantiated_drivers_report_the_algorithm_name() {
    let scenario = shrink(registry::get("w3").unwrap());
    for algorithm in Algorithm::all() {
        let driver = algorithm.instantiate(&scenario.search, scenario.seed);
        assert_eq!(driver.name(), algorithm.name());
    }
}

#[test]
fn observation_is_passive_for_every_algorithm() {
    // Running with a RecordingObserver must not change the outcome.
    let mut scenario = shrink(registry::get("w1").unwrap());
    for algorithm in Algorithm::all() {
        scenario.search.algorithm = algorithm;
        let silent = scenario.run_algorithm_with_engine(algorithm, &scenario.engine());
        let recorder = RecordingObserver::new();
        let observed = scenario.run_algorithm_observed(algorithm, &scenario.engine(), &recorder);
        assert_eq!(
            silent, observed,
            "{algorithm}: observer changed the outcome"
        );
        assert!(
            !recorder.events().is_empty(),
            "{algorithm}: observer saw no events"
        );
    }
}

#[test]
fn event_streams_are_deterministic_for_a_seed() {
    let mut scenario = shrink(registry::get("w3").unwrap());
    for algorithm in [
        Algorithm::Nasaic,
        Algorithm::MonteCarlo,
        Algorithm::NasThenAsic,
        Algorithm::AsicThenHwNas,
    ] {
        scenario.search.algorithm = algorithm;
        let first = RecordingObserver::new();
        scenario.run_algorithm_observed(algorithm, &scenario.engine(), &first);
        let second = RecordingObserver::new();
        scenario.run_algorithm_observed(algorithm, &scenario.engine(), &second);
        assert_eq!(
            first.events(),
            second.events(),
            "{algorithm}: same seed produced different event streams"
        );
    }
}

#[test]
fn nasaic_event_count_matches_the_declared_budget() {
    let mut scenario = shrink(registry::get("w3").unwrap());
    scenario.search.algorithm = Algorithm::Nasaic;
    let recorder = RecordingObserver::new();
    scenario.run_algorithm_observed(Algorithm::Nasaic, &scenario.engine(), &recorder);
    // One EpisodeEvaluated per declared episode, one final summary.
    assert_eq!(
        recorder.count("episode_evaluated"),
        scenario.search.episodes
    );
    assert_eq!(recorder.count("search_finished"), 1);
    let events = recorder.events();
    assert!(matches!(
        events.last(),
        Some(SearchEvent::SearchFinished { .. })
    ));
    // Each NASAIC episode evaluates 1 + phi candidates.
    let per_episode = 1 + scenario.search.hardware_trials;
    for event in &events {
        if let SearchEvent::EpisodeEvaluated { evaluations, .. } = event {
            assert_eq!(*evaluations, per_episode);
        }
    }
    // The final summary's explored count matches the outcome bookkeeping.
    let outcome = scenario.run_algorithm_with_engine(Algorithm::Nasaic, &scenario.engine());
    if let Some(SearchEvent::SearchFinished { explored, .. }) = events.last() {
        assert_eq!(*explored, outcome.explored.len());
    }
}

#[test]
fn monte_carlo_event_count_matches_the_total_evaluation_budget() {
    let mut scenario = shrink(registry::get("w3").unwrap());
    scenario.search.algorithm = Algorithm::MonteCarlo;
    let recorder = RecordingObserver::new();
    scenario.run_algorithm_observed(Algorithm::MonteCarlo, &scenario.engine(), &recorder);
    assert_eq!(
        recorder.count("episode_evaluated"),
        scenario.search.budget().total_evaluations()
    );
    assert_eq!(recorder.count("search_finished"), 1);
}

#[test]
fn successive_baselines_emit_phase_events_and_keep_phase_summaries() {
    let mut scenario = shrink(registry::get("w1").unwrap());
    for (algorithm, expected_phases) in [
        (Algorithm::NasThenAsic, ["nas", "asic-sweep"]),
        (Algorithm::AsicThenHwNas, ["asic-monte-carlo", "hw-nas"]),
    ] {
        scenario.search.algorithm = algorithm;
        let recorder = RecordingObserver::new();
        let outcome = scenario.run_algorithm_observed(algorithm, &scenario.engine(), &recorder);
        assert_eq!(recorder.count("phase_started"), 2, "{algorithm}");
        assert_eq!(recorder.count("phase_finished"), 2, "{algorithm}");
        let phase_names: Vec<&str> = outcome.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(phase_names, expected_phases, "{algorithm}");
        // The PhaseFinished events carry the same summaries the outcome keeps.
        let finished: Vec<PhaseSummary> = recorder
            .events()
            .into_iter()
            .filter_map(|e| match e {
                SearchEvent::PhaseFinished { summary, .. } => Some(summary),
                _ => None,
            })
            .collect();
        assert_eq!(finished, outcome.phases, "{algorithm}");
    }
}

#[test]
fn new_incumbent_events_are_strictly_improving() {
    let mut scenario = shrink(registry::get("w3").unwrap());
    scenario.search.episodes = 5;
    scenario.search.algorithm = Algorithm::MonteCarlo;
    let recorder = RecordingObserver::new();
    scenario.run_algorithm_observed(Algorithm::MonteCarlo, &scenario.engine(), &recorder);
    let mut last = f64::NEG_INFINITY;
    for event in recorder.events() {
        if let SearchEvent::NewIncumbent {
            weighted_accuracy, ..
        } = event
        {
            assert!(weighted_accuracy > last);
            last = weighted_accuracy;
        }
    }
}

#[test]
fn context_budget_mirrors_the_search_spec() {
    let scenario = shrink(registry::get("w2").unwrap());
    let budget = scenario.search.budget();
    assert_eq!(budget, Budget::new(3, 2));
    assert_eq!(
        budget.total_evaluations(),
        scenario.search.total_evaluations()
    );
}
