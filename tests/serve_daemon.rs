//! Integration tests of `nasaic serve`: end-to-end socket round trips,
//! shared warm engines under concurrent clients, backpressure,
//! cancellation, cache bounds, warm restarts and crash durability.
//!
//! Most tests run the daemon in-process ([`Daemon::start`] on an ephemeral
//! port); the crash-durability test spawns the real binary and SIGKILLs it
//! mid-job to prove the journal + checkpoint machinery resumes
//! bit-identically.

use nasaic::serve::{Client, Daemon, Request, ServeConfig};
use nasaic_core::scenario::value::ConfigValue;
use nasaic_core::scenario::{registry, Scenario};
use std::path::{Path, PathBuf};

/// A fast scenario: small budgets so each job takes well under a second.
fn quick_scenario(seed: u64) -> Scenario {
    let mut scenario = registry::get("w1").expect("built-in scenario");
    scenario.search.episodes = 6;
    scenario.search.hardware_trials = 2;
    scenario.search.bound_samples = 6;
    scenario.seed = seed;
    scenario
}

fn ephemeral_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nasaic-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn shutdown(addr: &str) -> String {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let response = client.request(&Request::Shutdown).expect("shutdown");
    assert_eq!(
        response.get("ok").and_then(ConfigValue::as_bool),
        Some(true)
    );
    String::new()
}

/// Fields of a report that legitimately differ between a daemon job and a
/// direct run: wall time always; cache hit/miss/entry/eviction statistics
/// whenever the engine was warm (shared) rather than cold.
const NONDETERMINISTIC_FIELDS: &[&str] = &[
    "wall_ms",
    "cache_hit_rate",
    "accuracy_hit_rate",
    "hardware_hit_rate",
    "accuracy_hits",
    "accuracy_misses",
    "hardware_hits",
    "hardware_misses",
    "accuracy_entries",
    "hardware_entries",
    "accuracy_evictions",
    "hardware_evictions",
    "accuracy_capacity",
    "hardware_capacity",
];

/// Strip the timing/cache fields, keeping the search outcome itself.
fn outcome_only(report: &ConfigValue) -> ConfigValue {
    let mut stripped = report.clone();
    for field in NONDETERMINISTIC_FIELDS {
        stripped.remove(field);
    }
    stripped
}

#[test]
fn submitted_job_matches_a_direct_run_bit_for_bit() {
    let handle = Daemon::start(ephemeral_config()).expect("daemon starts");
    let addr = handle.addr().to_string();
    let scenario = quick_scenario(41);

    let mut events = Vec::new();
    let mut client = Client::connect(&addr).expect("connect");
    let response = client
        .submit_watch(scenario.to_value(), |event| events.push(event.clone()))
        .expect("watched submit");
    assert_eq!(
        response.get("ok").and_then(ConfigValue::as_bool),
        Some(true),
        "{response:?}"
    );
    assert_eq!(
        response.get("state").and_then(ConfigValue::as_str),
        Some("finished")
    );
    let report = response.get("report").expect("report in response");

    // The stream: first the queued ack, then incumbent events tagged with
    // the job id.
    assert!(!events.is_empty(), "expected at least the submit ack");
    assert_eq!(
        events[0].get("state").and_then(ConfigValue::as_str),
        Some("queued")
    );
    let incumbents: Vec<_> = events
        .iter()
        .filter(|e| e.get("event").and_then(ConfigValue::as_str) == Some("new_incumbent"))
        .collect();
    assert!(
        !incumbents.is_empty(),
        "a fresh search must improve its incumbent at least once"
    );
    for event in &incumbents {
        assert_eq!(
            event.get("job").and_then(ConfigValue::as_integer),
            response.get("job").and_then(ConfigValue::as_integer)
        );
    }

    // Bit-identical to the same scenario run directly, engine and all.
    let direct = scenario.run_report().to_value();
    assert_eq!(outcome_only(report), outcome_only(&direct));

    shutdown(&addr);
    handle.join().expect("clean shutdown");
}

#[test]
fn concurrent_clients_share_one_warm_engine_and_get_their_own_results() {
    let handle = Daemon::start(ephemeral_config()).expect("daemon starts");
    let addr = handle.addr().to_string();

    // Four clients, same scenario identity (same engine), different seeds.
    let seeds: Vec<u64> = vec![11, 22, 33, 44];
    let threads: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let response = client
                    .submit_watch(quick_scenario(seed).to_value(), |_| {})
                    .expect("watched submit");
                (seed, response)
            })
        })
        .collect();
    let results: Vec<(u64, ConfigValue)> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    // Every client got a finished report, and each matches the direct run
    // of ITS OWN seed — no cross-talk between interleaved jobs.
    for (seed, response) in &results {
        assert_eq!(
            response.get("state").and_then(ConfigValue::as_str),
            Some("finished"),
            "seed {seed}: {response:?}"
        );
        let report = response.get("report").expect("report");
        let direct = quick_scenario(*seed).run_report().to_value();
        assert_eq!(
            outcome_only(report),
            outcome_only(&direct),
            "seed {seed} diverged from its direct run"
        );
    }

    // One engine served all four jobs (same scenario identity), and the
    // repeated seeds hit its warm caches.
    let mut client = Client::connect(&addr).expect("connect");
    let cache = client.request(&Request::ShowCache).expect("show cache");
    let engines = cache
        .get("engines")
        .and_then(ConfigValue::as_array)
        .expect("engines array");
    assert_eq!(engines.len(), 1, "one scenario identity, one engine");
    let stats = engines[0].get("stats").expect("stats");
    let hits = stats
        .get("accuracy_hits")
        .and_then(ConfigValue::as_integer)
        .unwrap_or(0)
        + stats
            .get("hardware_hits")
            .and_then(ConfigValue::as_integer)
            .unwrap_or(0);
    assert!(hits > 0, "shared engine saw no cache hits: {stats:?}");

    shutdown(&addr);
    handle.join().expect("clean shutdown");
}

#[test]
fn full_queue_rejects_submits_with_a_reason() {
    // One worker and a zero-length queue: the first job occupies the
    // worker, any further submit while it is queued/running is rejected.
    let config = ServeConfig {
        queue_capacity: 0,
        workers: 1,
        ..ephemeral_config()
    };
    let handle = Daemon::start(config).expect("daemon starts");
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    let response = client
        .request(&Request::Submit {
            scenario: quick_scenario(1).to_value(),
            watch: false,
        })
        .expect("submit");
    assert_eq!(
        response.get("ok").and_then(ConfigValue::as_bool),
        Some(false)
    );
    let reason = response
        .get("error")
        .and_then(ConfigValue::as_str)
        .expect("reject reason");
    assert!(reason.contains("queue full"), "{reason}");
    assert!(reason.contains("--queue-capacity"), "{reason}");

    shutdown(&addr);
    handle.join().expect("clean shutdown");
}

#[test]
fn cancel_stops_a_running_job_and_reports_cancelled() {
    let handle = Daemon::start(ephemeral_config()).expect("daemon starts");
    let addr = handle.addr().to_string();

    // A long job (many episodes) so the cancel lands while it runs.
    let mut scenario = quick_scenario(7);
    scenario.search.episodes = 500;

    let watcher = {
        let addr = addr.clone();
        let value = scenario.to_value();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.submit_watch(value, |_| {}).expect("watched submit")
        })
    };

    // Wait until the daemon reports the job running, then cancel it.
    let mut client = Client::connect(&addr).expect("connect");
    let job_id = loop {
        let jobs = client.request(&Request::ShowJobs).expect("show jobs");
        let rows = jobs
            .get("jobs")
            .and_then(ConfigValue::as_array)
            .expect("jobs array");
        if let Some(row) = rows.iter().find(|row| {
            matches!(
                row.get("state").and_then(ConfigValue::as_str),
                Some("running") | Some("queued")
            )
        }) {
            break row.get("job").and_then(ConfigValue::as_integer).unwrap() as u64;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    let response = client
        .request(&Request::Cancel { job: job_id })
        .expect("cancel");
    assert_eq!(
        response.get("ok").and_then(ConfigValue::as_bool),
        Some(true)
    );

    let final_response = watcher.join().expect("watcher thread");
    assert_eq!(
        final_response.get("state").and_then(ConfigValue::as_str),
        Some("cancelled"),
        "{final_response:?}"
    );

    // The terminal state is queryable and a second cancel is rejected.
    let incumbent = client
        .request(&Request::ShowIncumbent { job: job_id })
        .expect("show incumbent");
    assert_eq!(
        incumbent.get("state").and_then(ConfigValue::as_str),
        Some("cancelled")
    );
    let again = client
        .request(&Request::Cancel { job: job_id })
        .expect("cancel again");
    assert_eq!(again.get("ok").and_then(ConfigValue::as_bool), Some(false));

    shutdown(&addr);
    handle.join().expect("clean shutdown");
}

#[test]
fn forced_small_cache_bounds_evict_without_changing_outcomes() {
    let config = ServeConfig {
        accuracy_capacity: 2,
        hardware_capacity: 2,
        ..ephemeral_config()
    };
    let handle = Daemon::start(config).expect("daemon starts");
    let addr = handle.addr().to_string();

    let scenario = quick_scenario(17);
    let mut client = Client::connect(&addr).expect("connect");
    let response = client
        .submit_watch(scenario.to_value(), |_| {})
        .expect("watched submit");
    let report = response.get("report").expect("report");

    // Outcome identical to an unbounded direct run…
    let direct = scenario.run_report().to_value();
    assert_eq!(outcome_only(report), outcome_only(&direct));

    // …while the bound actually evicted (visible in the report and in
    // `show cache`).
    let evictions = report
        .get("accuracy_evictions")
        .and_then(ConfigValue::as_integer)
        .unwrap_or(0)
        + report
            .get("hardware_evictions")
            .and_then(ConfigValue::as_integer)
            .unwrap_or(0);
    assert!(evictions > 0, "capacity 2 must evict: {report:?}");
    let cache = client.request(&Request::ShowCache).expect("show cache");
    let stats = cache
        .get("engines")
        .and_then(ConfigValue::as_array)
        .unwrap()[0]
        .get("stats")
        .expect("stats");
    assert_eq!(
        stats
            .get("accuracy_capacity")
            .and_then(ConfigValue::as_integer),
        Some(2)
    );
    assert!(
        stats
            .get("accuracy_entries")
            .and_then(ConfigValue::as_integer)
            .unwrap()
            <= 2
    );

    shutdown(&addr);
    handle.join().expect("clean shutdown");
}

#[test]
fn warm_restart_imports_caches_and_changes_wall_time_only() {
    let state_dir = temp_dir("warm-restart");
    let scenario = quick_scenario(29);

    // First daemon: run the job cold, shut down gracefully (persists the
    // caches to state_dir/caches.json).
    let config = ServeConfig {
        state_dir: Some(state_dir.clone()),
        ..ephemeral_config()
    };
    let handle = Daemon::start(config.clone()).expect("first daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let first = client
        .submit_watch(scenario.to_value(), |_| {})
        .expect("first run");
    shutdown(&addr);
    handle.join().expect("clean shutdown");
    assert!(
        state_dir.join("caches.json").exists(),
        "graceful shutdown must persist caches"
    );

    // Second daemon over the same state dir: the re-submitted job hits the
    // imported caches (recompute nothing) and produces the same outcome.
    let handle = Daemon::start(config).expect("second daemon");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let second = client
        .submit_watch(scenario.to_value(), |_| {})
        .expect("second run");
    let first_report = first.get("report").expect("first report");
    let second_report = second.get("report").expect("second report");
    assert_eq!(
        outcome_only(first_report),
        outcome_only(&second_report.clone()),
        "warm restart changed the outcome"
    );
    let hit_rate = match second_report.get("accuracy_hit_rate") {
        Some(ConfigValue::Float(rate)) => *rate,
        Some(ConfigValue::Integer(rate)) => *rate as f64,
        other => panic!("report lacks accuracy_hit_rate: {other:?}"),
    };
    assert_eq!(hit_rate, 1.0, "warm accuracy cache must serve every query");

    shutdown(&addr);
    handle.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn metrics_endpoint_serves_prometheus_families_after_a_job() {
    let config = ServeConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ephemeral_config()
    };
    let handle = Daemon::start(config).expect("daemon starts");
    let addr = handle.addr().to_string();
    let metrics_addr = handle.metrics_addr().expect("metrics listener bound");

    let mut client = Client::connect(&addr).expect("connect");
    let response = client
        .submit_watch(quick_scenario(61).to_value(), |_| {})
        .expect("watched submit");
    assert_eq!(
        response.get("state").and_then(ConfigValue::as_str),
        Some("finished")
    );

    // Scrape over plain TCP, exactly as Prometheus would.
    let body = {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(metrics_addr).expect("connect metrics");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("send scrape");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read scrape");
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        assert!(
            head.contains("text/plain; version=0.0.4"),
            "exposition content type missing: {head}"
        );
        body.to_string()
    };
    for family in [
        "# TYPE nasaic_serve_queue_depth gauge",
        "# TYPE nasaic_serve_queue_wait_ms summary",
        "# TYPE nasaic_serve_job_wall_ms summary",
        // Counter value is not asserted: every daemon test in this binary
        // shares the process-global registry.
        "# TYPE nasaic_serve_submits_total counter",
        "nasaic_engine_cache_hit_ratio{cache=\"accuracy\",engine=\"W1\"}",
    ] {
        assert!(body.contains(family), "scrape lacks `{family}`:\n{body}");
    }

    // The same registry is queryable over the control socket…
    let metrics = client.request(&Request::ShowMetrics).expect("show metrics");
    let names: Vec<&str> = metrics
        .get("metrics")
        .and_then(ConfigValue::as_array)
        .expect("metrics array")
        .iter()
        .filter_map(|m| m.get("name").and_then(ConfigValue::as_str))
        .collect();
    assert!(names.contains(&"nasaic_serve_job_wall_ms"), "{names:?}");
    assert!(names.contains(&"nasaic_serve_queue_depth"), "{names:?}");

    // …and `show jobs` surfaces the same instants as per-job durations.
    let jobs = client.request(&Request::ShowJobs).expect("show jobs");
    let row = &jobs.get("jobs").and_then(ConfigValue::as_array).unwrap()[0];
    assert!(
        row.get("queue_wait_ms")
            .and_then(ConfigValue::as_integer)
            .is_some(),
        "{row:?}"
    );
    assert!(
        row.get("run_ms").and_then(ConfigValue::as_integer).unwrap() >= 0,
        "{row:?}"
    );

    shutdown(&addr);
    handle.join().expect("clean shutdown");
}

// ---------------------------------------------------------------------------
// Crash durability: the real binary, SIGKILLed mid-job.
// ---------------------------------------------------------------------------

/// Start the real `nasaic serve` binary on an ephemeral port, wait for the
/// addr file, and return (child, addr).
fn spawn_daemon(state_dir: &Path, extra: &[&str]) -> (std::process::Child, String) {
    let addr_file = state_dir.join("addr");
    let _ = std::fs::remove_file(&addr_file);
    let mut command = std::process::Command::new(env!("CARGO_BIN_EXE_nasaic"));
    command
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--state-dir",
            state_dir.to_str().unwrap(),
        ])
        .args(extra)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    let child = command.spawn().expect("spawn nasaic serve");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never wrote its addr file"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    (child, addr)
}

#[test]
fn killed_daemon_resumes_its_job_bit_identically_on_restart() {
    let state_dir = temp_dir("crash");

    // A job big enough to survive until the kill, checkpointing every
    // progress unit.
    let mut scenario = quick_scenario(53);
    scenario.search.episodes = 300;
    let expected = scenario.run_report().to_value();

    let (mut child, addr) =
        spawn_daemon(&state_dir, &["--checkpoint-every", "1", "--workers", "1"]);

    // Submit without watching (the reply returns immediately), then wait
    // until the job has checkpointed at least once.
    let mut client = Client::connect(&addr).expect("connect");
    let submitted = client
        .request(&Request::Submit {
            scenario: scenario.to_value(),
            watch: false,
        })
        .expect("submit");
    let job_id = submitted
        .get("job")
        .and_then(ConfigValue::as_integer)
        .expect("job id") as u64;
    let ckpt = state_dir.join("jobs").join(format!("{job_id}.ckpt.json"));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while !ckpt.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "job never checkpointed"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // SIGKILL: no graceful shutdown, no cache export, checkpoint mid-job.
    child.kill().expect("kill daemon");
    child.wait().expect("reap daemon");
    assert!(
        !state_dir
            .join("jobs")
            .join(format!("{job_id}.result.json"))
            .exists(),
        "the job must not have finished before the kill"
    );

    // Restart over the same state dir: the journaled job is re-queued and
    // resumed from its checkpoint.
    let (mut child, addr) = spawn_daemon(&state_dir, &["--workers", "1"]);
    let mut client = Client::connect(&addr).expect("reconnect");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let report = loop {
        let jobs = client.request(&Request::ShowJobs).expect("show jobs");
        let rows = jobs
            .get("jobs")
            .and_then(ConfigValue::as_array)
            .expect("jobs array");
        let row = rows
            .iter()
            .find(|row| row.get("job").and_then(ConfigValue::as_integer) == Some(job_id as i64))
            .expect("restarted daemon must remember the journaled job");
        match row.get("state").and_then(ConfigValue::as_str) {
            Some("finished") => {
                let text = std::fs::read_to_string(
                    state_dir.join("jobs").join(format!("{job_id}.result.json")),
                )
                .expect("persisted result");
                let result =
                    nasaic_core::scenario::value::parse_json(&text).expect("result parses");
                break result.get("report").expect("report").clone();
            }
            Some("failed") => panic!("resumed job failed: {row:?}"),
            _ => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "resumed job never finished"
        );
    };

    // Bit-identical to the uninterrupted run.
    assert_eq!(
        outcome_only(&report),
        outcome_only(&expected),
        "kill + resume diverged from the uninterrupted run"
    );

    // Graceful shutdown of the second daemon.
    let _ = client.request(&Request::Shutdown);
    child.wait().expect("daemon exits after shutdown");
    let _ = std::fs::remove_dir_all(&state_dir);
}
