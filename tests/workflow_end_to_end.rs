//! End-to-end workflow test: the full NASAIC pipeline through the public
//! facade crate, from workload definition to a spec-compliant co-designed
//! solution.

use nasaic::core::prelude::*;

#[test]
fn w1_co_exploration_end_to_end() {
    let workload = Workload::w1();
    let specs = DesignSpecs::for_workload(WorkloadId::W1);
    let outcome = Nasaic::new(workload.clone(), specs, NasaicConfig::fast_demo(2024)).run();

    // The search ran to completion and found compliant solutions.
    assert_eq!(outcome.episodes, NasaicConfig::fast_demo(2024).episodes);
    let best = outcome
        .best
        .as_ref()
        .expect("a spec-compliant solution exists");

    // The best solution is internally consistent.
    assert_eq!(best.candidate.architectures.len(), workload.num_tasks());
    assert!(best.candidate.accelerator.has_capacity());
    assert!(best.evaluation.meets_specs());
    assert!(best.evaluation.metrics.latency_cycles <= specs.latency_cycles);
    assert!(best.evaluation.metrics.energy_nj <= specs.energy_nj);
    assert!(best.evaluation.metrics.area_um2 <= specs.area_um2);

    // The accelerator respects the resource budget of the paper.
    assert!(best
        .candidate
        .accelerator
        .is_within(&ResourceBudget::paper()));

    // Re-evaluating the best candidate from scratch gives the same result
    // (the whole pipeline is deterministic given the candidate).
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let re_evaluated = evaluator.evaluate(&best.candidate);
    assert_eq!(re_evaluated.accuracies, best.evaluation.accuracies);
    assert!(re_evaluated.meets_specs());
}

#[test]
fn w2_co_exploration_improves_over_smallest_networks() {
    let workload = Workload::w2();
    let specs = DesignSpecs::for_workload(WorkloadId::W2);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let smallest: Vec<_> = workload
        .tasks
        .iter()
        .map(|t| t.backbone.smallest_architecture())
        .collect();
    let lower_bound = evaluator.weighted_accuracy(&evaluator.accuracies(&smallest));

    // W2 is the hardest workload for spec compliance (random STL-10
    // architectures are huge), so give the quick run a larger episode
    // budget than the other workloads.
    let config = NasaicConfig {
        episodes: 200,
        hardware_trials: 6,
        ..NasaicConfig::fast_demo(2020)
    };
    let outcome = Nasaic::new(workload, specs, config).run();
    let best = outcome.best.expect("W2 search finds a compliant solution");
    assert!(
        best.evaluation.weighted_accuracy > lower_bound,
        "search did not improve over the smallest networks: {} vs {}",
        best.evaluation.weighted_accuracy,
        lower_bound
    );
}

#[test]
fn every_reported_solution_satisfies_the_specs() {
    // The paper's first observation on Fig. 6: NASAIC guarantees that all
    // explored (reported) solutions meet the design specs.
    let outcome = Nasaic::new(
        Workload::w3(),
        DesignSpecs::for_workload(WorkloadId::W3),
        NasaicConfig::fast_demo(99),
    )
    .run();
    for solution in &outcome.spec_compliant {
        assert!(solution.evaluation.meets_specs());
    }
    // And the compliant list is exactly the subset of explored solutions
    // whose evaluation meets the specs.
    let recomputed = outcome
        .explored
        .iter()
        .filter(|s| s.evaluation.meets_specs())
        .count();
    assert_eq!(recomputed, outcome.spec_compliant.len());
}

#[test]
fn facade_reexports_are_usable_together() {
    // Smoke-test that the sub-crates compose through the facade: build a
    // candidate manually and run both evaluation paths.
    use nasaic::accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic::cost::CostModel;
    use nasaic::nn::backbone::Backbone;
    use nasaic::sched::{solve_heuristic, HapProblem};

    let arch = Backbone::ResNet9Cifar10.materialize_values(&[16, 64, 1, 128, 1, 128, 1]);
    let accelerator = Accelerator::new(vec![
        SubAccelerator::new(Dataflow::Nvdla, 1536, 32),
        SubAccelerator::new(Dataflow::Shidiannao, 1024, 16),
    ]);
    let model = CostModel::paper_calibrated();
    let costs =
        nasaic::cost::WorkloadCosts::build(&model, std::slice::from_ref(&arch), &accelerator);
    let solution = solve_heuristic(&HapProblem::new(costs, 1.0e6));
    assert!(solution.feasible);
    assert!(solution.energy_nj > 0.0);
    assert!(model.area_um2(&accelerator) > 0.0);
}
