//! The paper's headline claims, checked in shape (who wins and in which
//! direction) rather than in absolute numbers.
//!
//! Abstract of the paper: "compared with successive NAS and ASIC design
//! optimizations which lead to design spec violations, NASAIC can guarantee
//! the results to meet the design specs with 17.77%, 2.49x, and 2.32x
//! reductions on latency, energy, and area and with 0.76% accuracy loss";
//! "compared with hardware-aware NAS for a fixed ASIC design, NASAIC can
//! achieve 3.65% higher accuracy".

use nasaic::core::experiments::headline::HeadlineClaims;
use nasaic::core::experiments::table1::{self, Approach, Table1Result};
use nasaic::core::experiments::ExperimentScale;
use nasaic::core::spec::WorkloadId;

use std::sync::OnceLock;

fn w1_table() -> &'static Table1Result {
    static TABLE: OnceLock<Table1Result> = OnceLock::new();
    TABLE.get_or_init(|| Table1Result {
        rows: table1::run_workload(WorkloadId::W1, ExperimentScale::Quick, 314),
    })
}

#[test]
fn nasaic_meets_specs_where_successive_optimisation_cannot() {
    let table = w1_table();
    let nas = table
        .row(WorkloadId::W1, Approach::NasThenAsic)
        .expect("NAS->ASIC row");
    let nasaic = table
        .row(WorkloadId::W1, Approach::Nasaic)
        .expect("NASAIC row");
    assert!(
        !nas.satisfied,
        "the architectures found by accuracy-only NAS should not fit the specs"
    );
    assert!(
        nasaic.satisfied,
        "NASAIC must deliver a spec-compliant solution"
    );
}

#[test]
fn headline_shape_holds_on_w1() {
    let table = w1_table();
    let claims = HeadlineClaims::derive(table, WorkloadId::W1).expect("both rows present for W1");
    // Direction of every headline quantity matches the paper:
    //  - NASAIC feasible, NAS->ASIC not;
    //  - energy and area reduced (the paper reports 2.49x and 2.32x);
    //  - small accuracy loss vs unconstrained NAS (paper: 0.76%);
    //  - no meaningful accuracy loss vs hardware-aware NAS (paper: a gain).
    assert!(
        claims.matches_paper_shape(),
        "headline shape violated: {claims}"
    );
    assert!(claims.energy_reduction_factor > 1.2, "{claims}");
    assert!(claims.area_reduction_factor > 1.1, "{claims}");
    assert!(claims.accuracy_loss_vs_nas < 0.06, "{claims}");
}

#[test]
fn paper_numbers_reproduce_exactly_from_the_published_table() {
    // Sanity-check the derivation itself against the numbers printed in the
    // paper's Table I (this does not depend on our simulator calibration).
    use nasaic::core::experiments::table1::Table1Row;
    let table = Table1Result {
        rows: vec![
            Table1Row {
                workload: WorkloadId::W1,
                approach: Approach::NasThenAsic,
                hardware: "<dla, 2112, 48> + <shi, 1984, 16>".into(),
                datasets: vec!["CIFAR-10".into(), "Nuclei".into()],
                accuracies: vec![0.9417, 0.8394],
                latency_cycles: 9.45e5,
                energy_nj: 3.56e9,
                area_um2: 4.71e9,
                satisfied: false,
            },
            Table1Row {
                workload: WorkloadId::W1,
                approach: Approach::Nasaic,
                hardware: "<dla, 576, 56> + <shi, 1792, 8>".into(),
                datasets: vec!["CIFAR-10".into(), "Nuclei".into()],
                accuracies: vec![0.9285, 0.8374],
                latency_cycles: 7.77e5,
                energy_nj: 1.43e9,
                area_um2: 2.03e9,
                satisfied: true,
            },
        ],
    };
    let claims = HeadlineClaims::derive(&table, WorkloadId::W1).unwrap();
    assert!((claims.latency_reduction - 0.1777).abs() < 0.003);
    assert!((claims.energy_reduction_factor - 2.49).abs() < 0.01);
    assert!((claims.area_reduction_factor - 2.32).abs() < 0.01);
    assert!((claims.accuracy_loss_vs_nas - 0.0076).abs() < 0.0005);
}
