//! Telemetry is observationally pure: turning the metrics registry and
//! the [`MetricsObserver`] on must not perturb a seeded search in any
//! way.  This is the test-suite twin of the `telemetry_baseline` identity
//! gate (which also measures overhead).

use nasaic_core::prelude::*;

/// Strip the only field that legitimately differs between repetitions.
fn outcome_only(report: &RunReport) -> nasaic_core::scenario::value::ConfigValue {
    let mut stripped = report.to_value();
    stripped.remove("wall_ms");
    stripped
}

fn run_once(scenario: &Scenario, telemetry: bool) -> RunReport {
    nasaic_telemetry::set_enabled(telemetry);
    if telemetry {
        nasaic_telemetry::global().reset();
    }
    let observer = MetricsObserver::new();
    let engine = scenario.engine();
    let report = scenario.run_report_checkpointed(
        scenario.search.algorithm,
        &engine,
        &observer,
        None,
        &NullCheckpointSink,
    );
    nasaic_telemetry::set_enabled(false);
    report
}

/// One test (not one per scenario) because the enable switch is
/// process-global and integration tests run multi-threaded: a parallel
/// sibling toggling the flag mid-run would make the comparison
/// meaningless.
#[test]
fn seeded_outcomes_are_bit_identical_with_telemetry_on_and_off() {
    for name in registry::names() {
        let mut scenario = registry::get(name).expect("built-in scenario");
        scenario.seed = 11;
        scenario.search.episodes = 3;
        scenario.search.hardware_trials = 2;
        scenario.search.bound_samples = 3;
        let disabled = outcome_only(&run_once(&scenario, false));
        let enabled = outcome_only(&run_once(&scenario, true));
        assert_eq!(
            disabled, enabled,
            "telemetry changed the `{name}` search outcome"
        );
    }
}
