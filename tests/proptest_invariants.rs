//! Property-based tests over the core data structures and invariants of the
//! co-exploration stack.

use nasaic::accel::{Dataflow, ResourceBudget, SubAccelerator};
use nasaic::accuracy::{AccuracyCombiner, SurrogateModel};
use nasaic::cost::{CostModel, WorkloadCosts};
use nasaic::nn::backbone::Backbone;
use nasaic::sched::{solve_heuristic, HapProblem};
use nasaic::tensor::activation::softmax;
use nasaic_accuracy::AccuracyModel;
use proptest::prelude::*;

fn arb_backbone() -> impl Strategy<Value = Backbone> {
    prop_oneof![
        Just(Backbone::ResNet9Cifar10),
        Just(Backbone::ResNet9Stl10),
        Just(Backbone::UNetNuclei),
    ]
}

fn arb_dataflow() -> impl Strategy<Value = Dataflow> {
    prop_oneof![
        Just(Dataflow::Shidiannao),
        Just(Dataflow::Nvdla),
        Just(Dataflow::RowStationary),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any index vector inside the search space decodes to an architecture,
    /// and encoding the decoded values reproduces the indices.
    #[test]
    fn search_space_decode_encode_round_trip(
        backbone in arb_backbone(),
        seed in any::<u64>(),
    ) {
        let space = backbone.search_space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let indices = space.sample(&mut rng);
        let values = space.decode(&indices).unwrap();
        prop_assert_eq!(space.indices_of(&values).unwrap(), indices.clone());
        let arch = backbone.materialize(&indices).unwrap();
        prop_assert!(arch.total_macs() > 0);
        prop_assert!(arch.num_layers() >= 3);
    }

    /// The surrogate accuracy always stays inside the calibrated range of
    /// its dataset and is monotone from the smallest to the largest
    /// architecture.
    #[test]
    fn surrogate_accuracy_stays_in_calibrated_range(
        backbone in arb_backbone(),
        seed in any::<u64>(),
    ) {
        let space = backbone.search_space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let arch = backbone.materialize(&space.sample(&mut rng)).unwrap();
        let model = SurrogateModel::paper_calibrated();
        let accuracy = model.evaluate(backbone, &arch);
        let small = model.evaluate(backbone, &backbone.smallest_architecture());
        let large = model.evaluate(backbone, &backbone.largest_architecture());
        prop_assert!(accuracy >= small - 0.01, "accuracy {} below lower bound {}", accuracy, small);
        prop_assert!(accuracy <= large + 0.01, "accuracy {} above upper bound {}", accuracy, large);
        prop_assert!((0.0..=1.0).contains(&accuracy));
    }

    /// The resource allocator never produces a design that exceeds the
    /// budget, regardless of the proposal.
    #[test]
    fn budget_fit_always_admits(
        df1 in arb_dataflow(),
        df2 in arb_dataflow(),
        pes1 in 0usize..8192,
        pes2 in 0usize..8192,
        bw1 in 0usize..128,
        bw2 in 0usize..128,
    ) {
        let budget = ResourceBudget::paper();
        let fitted = budget.fit(&[
            SubAccelerator::new(df1, pes1, bw1),
            SubAccelerator::new(df2, pes2, bw2),
        ]);
        prop_assert!(budget.admits(&fitted));
        prop_assert!(fitted.total_pes() <= 4096);
        prop_assert!(fitted.total_bandwidth_gbps() <= 64);
    }

    /// The cost model is monotone in resources: adding PEs or bandwidth
    /// never increases a layer's latency.
    #[test]
    fn layer_latency_is_monotone_in_resources(
        df in arb_dataflow(),
        pes in 64usize..2048,
        bw in 8usize..32,
        channels in 8usize..128,
        resolution_exp in 3u32..7, // 8..64
    ) {
        let model = CostModel::paper_calibrated();
        let resolution = 1usize << resolution_exp;
        let layer = nasaic::nn::layer::LayerShape::conv2d("c", channels, channels, 3, resolution, 1);
        let base = model.layer_cost(&layer, &SubAccelerator::new(df, pes, bw));
        let more_pes = model.layer_cost(&layer, &SubAccelerator::new(df, pes * 2, bw));
        let more_bw = model.layer_cost(&layer, &SubAccelerator::new(df, pes, bw * 2));
        prop_assert!(more_pes.latency_cycles <= base.latency_cycles + 1e-6);
        prop_assert!(more_bw.latency_cycles <= base.latency_cycles + 1e-6);
        prop_assert!(base.energy_nj > 0.0);
    }

    /// The HAP heuristic never returns a solution that violates its latency
    /// constraint while claiming feasibility, and relaxing the constraint
    /// never increases the minimised energy.
    #[test]
    fn hap_heuristic_is_consistent(
        constraint_scale in 1u32..50,
        pes in 256usize..2048,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let space = Backbone::ResNet9Cifar10.search_space();
        let arch = Backbone::ResNet9Cifar10.materialize(&space.sample(&mut rng)).unwrap();
        let acc = nasaic::accel::Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, pes, 32),
            SubAccelerator::new(Dataflow::Shidiannao, pes, 32),
        ]);
        let model = CostModel::paper_calibrated();
        let costs = WorkloadCosts::build(&model, std::slice::from_ref(&arch), &acc);
        let constraint = constraint_scale as f64 * 5.0e4;
        let tight = solve_heuristic(&HapProblem::new(costs.clone(), constraint));
        let loose = solve_heuristic(&HapProblem::new(costs, constraint * 10.0));
        if tight.feasible {
            prop_assert!(tight.latency_cycles <= constraint);
            prop_assert!(loose.feasible);
            prop_assert!(loose.energy_nj <= tight.energy_nj + 1e-6);
        }
    }

    /// Softmax output is always a probability distribution.
    #[test]
    fn softmax_is_a_distribution(logits in proptest::collection::vec(-50.0f64..50.0, 1..20)) {
        let p = softmax(&logits);
        prop_assert_eq!(p.len(), logits.len());
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    /// Weighted accuracy combination is bounded by the extreme task
    /// accuracies.
    #[test]
    fn combined_accuracy_is_bounded_by_extremes(
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        w in 0.01f64..0.99,
    ) {
        let combiner = AccuracyCombiner::Weighted(vec![w, 1.0 - w]);
        let combined = combiner.combine(&[a, b]);
        prop_assert!(combined <= a.max(b) + 1e-12);
        prop_assert!(combined >= a.min(b) - 1e-12);
        prop_assert!(AccuracyCombiner::Minimum.combine(&[a, b]) <= combined + 1e-12);
    }
}
