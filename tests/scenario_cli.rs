//! End-to-end smoke tests of the `nasaic` CLI through its library entry
//! point (`nasaic::cli::run_command`), covering every subcommand at tiny
//! budgets plus the file-config path.

use nasaic::cli::run_command;
use nasaic::core::scenario::{registry, value, Scenario};

fn cli(args: &[&str]) -> String {
    run_command(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        .unwrap_or_else(|e| panic!("{args:?}: {e}"))
}

#[test]
fn run_w1_smoke_emits_a_parsable_json_report() {
    let json = cli(&[
        "run",
        "--scenario",
        "w1",
        "--budget-episodes",
        "2",
        "--format",
        "json",
    ]);
    let report = value::parse_json(&json).unwrap();
    assert_eq!(report.get("scenario").unwrap().as_str(), Some("w1"));
    assert_eq!(report.get("episodes").unwrap().as_integer(), Some(2));
    assert_eq!(report.get("explored").unwrap().as_integer(), Some(22));
}

#[test]
fn run_accepts_a_config_file_path() {
    let dir = std::env::temp_dir().join("nasaic-cli-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edge.toml");
    let mut scenario = registry::get("edge-single").unwrap();
    scenario.name = "edge-from-file".to_string();
    scenario.search.episodes = 2;
    scenario.search.bound_samples = 4;
    std::fs::write(&path, scenario.to_toml_string()).unwrap();

    let csv = cli(&[
        "run",
        "--scenario",
        path.to_str().unwrap(),
        "--format",
        "csv",
    ]);
    let mut lines = csv.lines();
    assert!(lines.next().unwrap().starts_with("scenario,algorithm"));
    assert!(lines.next().unwrap().starts_with("edge-from-file,nasaic,"));
}

#[test]
fn compare_runs_selected_algorithms_as_csv() {
    let csv = cli(&[
        "compare",
        "--scenario",
        "w3",
        "--budget-episodes",
        "2",
        "--algorithms",
        "nasaic,monte-carlo,hill-climb",
        "--format",
        "csv",
    ]);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 4, "header + 3 algorithm rows:\n{csv}");
    assert!(lines[1].starts_with("w3,nasaic,"));
    assert!(lines[2].starts_with("w3,monte-carlo,"));
    assert!(lines[3].starts_with("w3,hill-climb,"));
}

#[test]
fn show_output_is_a_loadable_config() {
    for name in registry::names() {
        let toml = cli(&["show", "--scenario", name]);
        let reparsed =
            Scenario::from_toml_str(&toml).unwrap_or_else(|e| panic!("show {name}: {e}"));
        assert_eq!(reparsed, registry::get(name).unwrap());
    }
}

#[test]
fn run_with_trace_streams_parseable_deterministic_json_lines() {
    let dir = std::env::temp_dir().join("nasaic-cli-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("w1-trace.jsonl");

    let run = |path: &std::path::Path| {
        cli(&[
            "run",
            "--scenario",
            "w1",
            "--budget-episodes",
            "2",
            "--format",
            "json",
            "--trace",
            path.to_str().unwrap(),
        ]);
        std::fs::read_to_string(path).unwrap()
    };
    let trace = run(&trace_path);

    // Every line is standalone JSON with an event tag and a monotonic
    // timestamp (trace schema v2).
    let lines: Vec<&str> = trace.lines().collect();
    assert!(!lines.is_empty());
    let mut kinds = Vec::new();
    let mut last_elapsed = 0i64;
    for line in &lines {
        let event = value::parse_json(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        kinds.push(event.get("event").unwrap().as_str().unwrap().to_string());
        let elapsed = event
            .get("elapsed_ms")
            .unwrap_or_else(|| panic!("line lacks elapsed_ms: `{line}`"))
            .as_integer()
            .unwrap();
        assert!(elapsed >= last_elapsed, "elapsed_ms went backwards");
        last_elapsed = elapsed;
    }
    // Every declared episode is covered and the stream ends with the
    // final summary.
    assert_eq!(
        kinds.iter().filter(|k| *k == "episode_evaluated").count(),
        2
    );
    assert_eq!(kinds.last().map(String::as_str), Some("search_finished"));

    // Same seed, same scenario => identical trace, modulo the wall-clock
    // `elapsed_ms` timestamps (the only non-deterministic field).
    let strip_timestamps = |text: &str| -> Vec<String> {
        text.lines()
            .map(|line| {
                let mut event = value::parse_json(line).unwrap();
                event.remove("elapsed_ms").expect("schema v2 timestamp");
                value::to_json_compact(&event)
            })
            .collect()
    };
    let second_path = dir.join("w1-trace-2.jsonl");
    let second = run(&second_path);
    assert_eq!(
        strip_timestamps(&trace),
        strip_timestamps(&second),
        "trace stream is not deterministic"
    );
}

#[test]
fn run_reports_the_scheduler_tier_in_every_format() {
    // Default policy: the paper's ratio heuristic, reported as such.
    let json = cli(&[
        "run",
        "--scenario",
        "w1",
        "--budget-episodes",
        "2",
        "--format",
        "json",
    ]);
    let report = value::parse_json(&json).unwrap();
    assert_eq!(
        report.get("sched_policy").unwrap().as_str(),
        Some("heuristic")
    );
    assert_eq!(
        report.get("sched_tier").unwrap().as_str(),
        Some("heuristic")
    );

    // A generated scenario whose instances cross EXACT_LAYER_LIMIT runs
    // policy auto and must report the beam tier with a reason naming the
    // crossed limit — the silent `None` tier edge this PR closes.
    let dir = std::env::temp_dir().join("nasaic-cli-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gen-beam.toml");
    let toml = cli(&["gen", "--seed", "5", "--layers", "40", "--subs", "2"]);
    std::fs::write(&path, &toml).unwrap();
    let path = path.to_str().unwrap();

    let json = cli(&[
        "run",
        "--scenario",
        path,
        "--budget-episodes",
        "2",
        "--format",
        "json",
    ]);
    let report = value::parse_json(&json).unwrap();
    assert_eq!(report.get("sched_policy").unwrap().as_str(), Some("auto"));
    assert_eq!(report.get("sched_tier").unwrap().as_str(), Some("beam"));
    let reason = report.get("sched_tier_reason").unwrap().as_str().unwrap();
    assert!(reason.contains("EXACT_LAYER_LIMIT"), "{reason}");

    // The same three columns close every CSV row...
    let csv = cli(&[
        "run",
        "--scenario",
        path,
        "--budget-episodes",
        "2",
        "--format",
        "csv",
    ]);
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert!(
        header.ends_with("sched_policy,sched_tier,sched_tier_reason"),
        "{header}"
    );
    assert!(lines.next().unwrap().contains(",auto,beam,"), "{csv}");

    // ...and the text summary names tier and policy on one line.
    let text = cli(&["run", "--scenario", path, "--budget-episodes", "2"]);
    assert!(
        text.contains("scheduler: beam tier under policy auto"),
        "{text}"
    );
}

#[test]
fn trace_does_not_apply_to_other_subcommands() {
    let err = run_command(&[
        "compare".to_string(),
        "--scenario".to_string(),
        "w3".to_string(),
        "--trace".to_string(),
        "/tmp/t.jsonl".to_string(),
    ])
    .unwrap_err();
    assert!(err.to_string().contains("does not apply"), "{err}");
}

#[test]
fn errors_are_reported_not_panicked() {
    let err = run_command(&[
        "run".to_string(),
        "--scenario".to_string(),
        "nope".to_string(),
    ])
    .unwrap_err();
    assert!(err.to_string().contains("neither"), "{err}");
}
