//! Golden-file gate on the JSON-lines trace schema: every [`SearchEvent`]
//! variant must serialise with exactly its documented field set, in the
//! documented order.  The golden file is the schema contract — changing
//! what an event serialises to requires a deliberate edit here *and* a
//! `TRACE_SCHEMA_VERSION` bump in `crates/core/src/algorithm.rs`.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! NASAIC_UPDATE_GOLDEN=1 cargo test --test trace_schema
//! ```

use nasaic::core::prelude::*;
use nasaic::core::scenario::value;

const GOLDEN_PATH: &str = "tests/golden/search_events.jsonl";

/// One fixture per variant, optional fields populated, plus one extra
/// `episode_evaluated` with every optional field absent (pinning that
/// `None` fields are *omitted*, not serialised as null).
fn fixtures() -> Vec<SearchEvent> {
    vec![
        SearchEvent::PhaseStarted {
            phase: "nas".to_string(),
            budget: 500,
        },
        SearchEvent::PhaseFinished {
            phase: "nas".to_string(),
            summary: PhaseSummary {
                name: "nas".to_string(),
                episodes: 500,
                explored: 420,
                spec_compliant: 17,
                best_weighted_accuracy: Some(0.9125),
                detail: "chose 2 architectures".to_string(),
            },
        },
        SearchEvent::EpisodeEvaluated {
            episode: 42,
            evaluations: 6,
            weighted_accuracy: Some(0.875),
            any_compliant: true,
            reward: 0.625,
            entropy: Some(1.5),
            baseline: Some(0.25),
        },
        SearchEvent::EpisodeEvaluated {
            episode: 43,
            evaluations: 1,
            weighted_accuracy: None,
            any_compliant: false,
            reward: -1.0,
            entropy: None,
            baseline: None,
        },
        SearchEvent::NewIncumbent {
            episode: 42,
            weighted_accuracy: 0.875,
            latency_cycles: 100000.0,
            energy_nj: 250000000.0,
            area_um2: 3000000000.0,
            candidate: "(64, 4, 2) | (2, 8, 16)".to_string(),
        },
        SearchEvent::CheckpointSaved { progress: 50 },
        SearchEvent::SearchFinished {
            episodes: 500,
            explored: 420,
            spec_compliant: 17,
            pruned_episodes: 80,
            cache: CacheStats {
                accuracy_hits: 320,
                accuracy_misses: 100,
                hardware_hits: 1200,
                hardware_misses: 800,
                accuracy_entries: 100,
                hardware_entries: 512,
                accuracy_evictions: 0,
                hardware_evictions: 288,
                accuracy_capacity: 0,
                hardware_capacity: 512,
            },
        },
    ]
}

/// Exhaustive match — adding a `SearchEvent` variant fails to compile
/// here until the new variant gets a fixture and a golden line.
fn variant_tag(event: &SearchEvent) -> &'static str {
    match event {
        SearchEvent::PhaseStarted { .. } => "phase_started",
        SearchEvent::PhaseFinished { .. } => "phase_finished",
        SearchEvent::EpisodeEvaluated { .. } => "episode_evaluated",
        SearchEvent::NewIncumbent { .. } => "new_incumbent",
        SearchEvent::CheckpointSaved { .. } => "checkpoint_saved",
        SearchEvent::SearchFinished { .. } => "search_finished",
    }
}

#[test]
fn every_event_variant_serializes_its_documented_field_set() {
    let fixtures = fixtures();

    // Every variant is represented (and the exhaustive match above makes
    // an unrepresented new variant a compile error, not a silent gap).
    let mut tags: Vec<&str> = fixtures.iter().map(variant_tag).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len(), 6, "a variant has no fixture");

    let actual: Vec<String> = fixtures
        .iter()
        .map(|event| value::to_json_compact(&event.to_value()))
        .collect();
    let actual_text = actual.join("\n") + "\n";

    if std::env::var_os("NASAIC_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual_text).expect("write golden file");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden_lines.len(),
        actual.len(),
        "golden file has {} lines, fixtures produce {} — regenerate with \
         NASAIC_UPDATE_GOLDEN=1 and bump TRACE_SCHEMA_VERSION if the \
         schema changed",
        golden_lines.len(),
        actual.len()
    );
    for (i, (got, want)) in actual.iter().zip(&golden_lines).enumerate() {
        assert_eq!(
            got,
            want,
            "trace schema drifted at golden line {} — if intentional, \
             regenerate with NASAIC_UPDATE_GOLDEN=1 and bump \
             TRACE_SCHEMA_VERSION",
            i + 1
        );
    }
}

#[test]
fn event_field_names_match_the_golden_catalogue() {
    // Field *names and order* per variant, independent of values: the
    // machine-readable contract consumers key on.
    let expected: &[(&str, &[&str])] = &[
        ("phase_started", &["event", "phase", "budget"]),
        ("phase_finished", &["event", "phase", "summary"]),
        (
            "episode_evaluated",
            &[
                "event",
                "episode",
                "evaluations",
                "weighted_accuracy",
                "any_compliant",
                "reward",
                "entropy",
                "baseline",
            ],
        ),
        (
            "episode_evaluated",
            &["event", "episode", "evaluations", "any_compliant", "reward"],
        ),
        (
            "new_incumbent",
            &[
                "event",
                "episode",
                "weighted_accuracy",
                "latency_cycles",
                "energy_nj",
                "area_um2",
                "candidate",
            ],
        ),
        ("checkpoint_saved", &["event", "progress"]),
        (
            "search_finished",
            &[
                "event",
                "episodes",
                "explored",
                "spec_compliant",
                "pruned_episodes",
                "accuracy_hits",
                "accuracy_misses",
                "hardware_hits",
                "hardware_misses",
                "accuracy_entries",
                "hardware_entries",
                "accuracy_evictions",
                "hardware_evictions",
                "accuracy_capacity",
                "hardware_capacity",
                "accuracy_hit_rate",
                "hardware_hit_rate",
                "cache_hit_rate",
            ],
        ),
    ];

    let fixtures = fixtures();
    assert_eq!(fixtures.len(), expected.len());
    for (event, (tag, fields)) in fixtures.iter().zip(expected) {
        assert_eq!(event.kind(), *tag);
        let table = event.to_value();
        let entries = table.as_table().expect("events serialise as tables");
        let got: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(&got, fields, "field set of `{tag}` drifted");
    }
}
