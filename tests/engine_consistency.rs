//! Engine-consistency suite: the cached, parallel [`EvalEngine`] must be an
//! *observationally invisible* optimisation — bit-identical `Evaluation`s
//! to direct `Evaluator` calls on every workload, cache hits on repeated
//! candidate streams, and unchanged search outcomes.

use nasaic::accel::HardwareSpace;
use nasaic::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_candidates(workload: &Workload, count: usize, seed: u64) -> Vec<Candidate> {
    let hardware = HardwareSpace::paper_default(2);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let architectures = workload
                .tasks
                .iter()
                .map(|t| {
                    let space = t.backbone.search_space();
                    t.backbone
                        .materialize(&space.sample(&mut rng))
                        .expect("sampled indices are valid")
                })
                .collect();
            let accelerator = if i % 2 == 0 {
                hardware.sample(&mut rng)
            } else {
                hardware.sample_fully_allocated(&mut rng)
            };
            Candidate::from_parts(architectures, accelerator)
        })
        .collect()
}

#[test]
fn engine_is_bit_identical_to_direct_evaluation_on_all_workloads() {
    for (workload, id, seed) in [
        (Workload::w1(), WorkloadId::W1, 101),
        (Workload::w2(), WorkloadId::W2, 102),
        (Workload::w3(), WorkloadId::W3, 103),
    ] {
        let specs = DesignSpecs::for_workload(id);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let engine = EvalEngine::new(evaluator.clone());
        let candidates = random_candidates(&workload, 20, seed);

        // Serial direct evaluation vs cold engine batch vs warm engine
        // batch: all three must agree to the bit (PartialEq on Evaluation
        // compares every f64 exactly).
        let direct: Vec<Evaluation> = candidates.iter().map(|c| evaluator.evaluate(c)).collect();
        let cold = engine.evaluate_batch(&candidates);
        let warm = engine.evaluate_batch(&candidates);
        assert_eq!(direct, cold, "{id}: cold engine diverged from evaluator");
        assert_eq!(direct, warm, "{id}: warm engine diverged from evaluator");

        // Hardware-only path agrees too.
        for candidate in &candidates {
            let (direct_metrics, direct_check) =
                evaluator.evaluate_hardware(&candidate.architectures, &candidate.accelerator);
            let (engine_metrics, engine_check) =
                engine.evaluate_hardware(&candidate.architectures, &candidate.accelerator);
            assert_eq!(direct_metrics, engine_metrics);
            assert_eq!(direct_check, engine_check);
        }

        // Accuracy path agrees element-wise.
        for candidate in &candidates {
            assert_eq!(
                evaluator.accuracies(&candidate.architectures),
                engine.accuracies(&candidate.architectures)
            );
        }
    }
}

#[test]
fn repeated_candidate_stream_hits_the_cache() {
    let workload = Workload::w3();
    let specs = DesignSpecs::for_workload(WorkloadId::W3);
    let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));

    // An episode-like stream: 10 distinct candidates replayed 5 times.
    let distinct = random_candidates(&workload, 10, 202);
    for _ in 0..5 {
        engine.evaluate_batch(&distinct);
    }

    let stats = engine.stats();
    // 50 hardware queries, only 10 of them cold.
    assert_eq!(stats.hardware_misses, 10);
    assert_eq!(stats.hardware_hits, 40);
    // Per-task accuracy queries: 2 tasks x 10 candidates cold, the rest hot.
    assert_eq!(stats.accuracy_misses, 20);
    assert_eq!(stats.accuracy_hits, 80);
    // Overall hit rate of the replayed stream: 80%.
    assert!(
        stats.hit_rate() > 0.75,
        "hit rate {:.2} too low for a replayed stream",
        stats.hit_rate()
    );
}

#[test]
fn search_outcome_is_unchanged_by_engine_thread_count() {
    // The engine parallelises within an episode but the controller feedback
    // stays sequential, so the same seed must give the same outcome no
    // matter how the batch is scheduled: pin one run to a single worker and
    // one to many and compare everything.
    let specs = DesignSpecs::for_workload(WorkloadId::W3);
    let serial = Nasaic::new(Workload::w3(), specs, NasaicConfig::fast_demo(5))
        .with_engine_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        })
        .run();
    let parallel = Nasaic::new(Workload::w3(), specs, NasaicConfig::fast_demo(5))
        .with_engine_config(EngineConfig {
            threads: 8,
            ..EngineConfig::default()
        })
        .run();
    assert_eq!(
        serial.best_weighted_accuracy(),
        parallel.best_weighted_accuracy()
    );
    assert_eq!(serial.explored.len(), parallel.explored.len());
    assert_eq!(serial.reward_history, parallel.reward_history);
    // And against the auto-sized default.
    let auto = Nasaic::new(Workload::w3(), specs, NasaicConfig::fast_demo(5)).run();
    assert_eq!(auto.reward_history, serial.reward_history);
}

#[test]
fn generated_scenarios_are_bit_identical_across_engine_thread_counts() {
    use nasaic::core::scenario::generate::GeneratorSpec;

    // Same GeneratorSpec seed => bit-identical scenario bytes.
    let spec = GeneratorSpec::sized(24, 2, 11);
    let first = spec.generate().unwrap();
    let second = spec.generate().unwrap();
    assert_eq!(first.scenario, second.scenario);
    assert_eq!(
        first.scenario.to_toml_string(),
        second.scenario.to_toml_string()
    );

    // ...and a bit-identical seeded search outcome no matter how the
    // engine schedules its evaluation batches (generated scenarios run
    // the auto scheduler policy, so this also covers the tiered solver).
    let mut scenario = first.scenario;
    scenario.search.episodes = 2;
    scenario.search.hardware_trials = 2;
    scenario.search.bound_samples = 4;
    let run = |threads: usize| {
        let evaluator = Evaluator::new(
            &scenario.workload(),
            scenario.specs,
            AccuracyOracle::default(),
        )
        .with_scheduler(scenario.search.scheduler);
        let engine = EvalEngine::with_config(
            evaluator,
            EngineConfig {
                threads,
                ..EngineConfig::default()
            },
        );
        scenario.run_algorithm_with_engine(scenario.search.algorithm, &engine)
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.reward_history, parallel.reward_history);
    assert_eq!(
        serial.best_weighted_accuracy(),
        parallel.best_weighted_accuracy()
    );
    assert_eq!(serial.explored.len(), parallel.explored.len());
}

#[test]
fn baseline_engine_entry_points_match_the_trait_path() {
    use nasaic::core::baselines::MonteCarloSearch;

    let workload = Workload::w3();
    let specs = DesignSpecs::for_workload(WorkloadId::W3);
    let hardware = HardwareSpace::paper_default(2);
    let mc = MonteCarloSearch { runs: 40, seed: 9 };

    let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
    let through_engine = mc.run_with_engine(&workload, &hardware, &engine);

    let trait_engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
    let ctx = SearchContext::new(
        &workload,
        specs,
        &hardware,
        &trait_engine,
        9,
        Budget::new(40, 0),
    );
    let through_trait = mc.run(&ctx);
    assert_eq!(through_engine, through_trait);
    assert_eq!(through_engine.explored.len(), through_trait.explored.len());
    assert_eq!(
        through_engine.best_weighted_accuracy(),
        through_trait.best_weighted_accuracy()
    );
}
