//! Checkpoint/resume and sharded-execution identity gates: for every
//! builtin scenario and every algorithm, a run resumed from any checkpoint
//! and continued to the full budget must be bit-identical to the
//! uninterrupted run, and the merged outcome of an N-shard split must be
//! bit-identical to the single-process run.  Checkpoints and shard
//! partials must survive their JSON round trip unchanged.

use nasaic::core::prelude::*;

/// Shrink a scenario to a test-sized budget (same shape, seconds not
/// minutes).
fn shrink(mut scenario: Scenario) -> Scenario {
    scenario.search.episodes = 3;
    scenario.search.hardware_trials = 2;
    scenario.search.bound_samples = 3;
    scenario.seed = 7;
    scenario
}

#[test]
fn resuming_any_checkpoint_reproduces_the_uninterrupted_run() {
    for name in registry::names() {
        let mut scenario = shrink(registry::get(name).expect("built-in"));
        for algorithm in Algorithm::all() {
            scenario.search.algorithm = algorithm;
            let baseline = scenario.run_algorithm_with_engine(algorithm, &scenario.engine());

            // Capture a checkpoint at every snapshot point; the
            // checkpointed run itself must not diverge.
            let sink = RecordingCheckpointSink::every(1);
            let checkpointed = scenario.run_algorithm_checkpointed(
                algorithm,
                &scenario.engine(),
                &NullObserver,
                None,
                &sink,
            );
            assert_eq!(
                baseline, checkpointed,
                "{name}/{algorithm}: taking checkpoints changed the outcome"
            );
            let checkpoints = sink.checkpoints();
            assert!(
                !checkpoints.is_empty(),
                "{name}/{algorithm}: no checkpoints were offered"
            );

            // Resume from the first, middle and last checkpoint, through
            // the serialized form (the proptest suite covers every index
            // on generated scenarios).
            let picks = [0, checkpoints.len() / 2, checkpoints.len() - 1];
            for &pick in &picks {
                let checkpoint = &checkpoints[pick];
                let parsed = SearchCheckpoint::parse_json(&checkpoint.to_json())
                    .expect("checkpoint JSON round trip");
                assert_eq!(checkpoint, &parsed);
                let resumed = scenario.run_algorithm_checkpointed(
                    algorithm,
                    &scenario.engine(),
                    &NullObserver,
                    Some(&parsed),
                    &NullCheckpointSink,
                );
                assert_eq!(
                    baseline, resumed,
                    "{name}/{algorithm}: resume from checkpoint {} (progress {}) diverged",
                    pick, checkpoint.progress
                );
            }
        }
    }
}

#[test]
fn merged_shards_reproduce_the_single_process_run() {
    for name in registry::names() {
        let mut scenario = shrink(registry::get(name).expect("built-in"));
        for algorithm in Algorithm::all() {
            scenario.search.algorithm = algorithm;
            let baseline = scenario.run_algorithm_with_engine(algorithm, &scenario.engine());
            let workload = scenario.workload();

            let shards = 3;
            let plan = scenario.algorithm_shard_plan(algorithm, &scenario.engine(), shards);
            assert_eq!(plan.algorithm, algorithm.name());
            let partials: Vec<ShardPartial> = (0..shards)
                .map(|shard_index| {
                    // Each shard gets its own engine, as separate worker
                    // processes would.
                    let partial = scenario.run_algorithm_shard(
                        algorithm,
                        &scenario.engine(),
                        &NullObserver,
                        &plan,
                        shard_index,
                    );
                    ShardPartial::parse_json(&partial.to_json(), &workload)
                        .expect("shard partial JSON round trip")
                })
                .collect();
            let merged =
                scenario.merge_algorithm_shards(algorithm, &scenario.engine(), &plan, partials);
            assert_eq!(
                baseline, merged,
                "{name}/{algorithm}: merged {shards}-shard outcome diverged"
            );
        }
    }
}

#[test]
fn shard_counts_are_interchangeable_for_strided_plans() {
    // The strided drivers actually distribute work: the same outcome must
    // come back for any worker count, including more workers than items.
    let mut scenario = shrink(registry::get("w1").expect("built-in"));
    for algorithm in [Algorithm::MonteCarlo, Algorithm::NasThenAsic] {
        scenario.search.algorithm = algorithm;
        let baseline = scenario.run_algorithm_with_engine(algorithm, &scenario.engine());
        for shards in [1, 2, 4, 7] {
            let plan = scenario.algorithm_shard_plan(algorithm, &scenario.engine(), shards);
            assert_eq!(
                plan.mode,
                ShardMode::Strided,
                "{algorithm} should shard its independent trials"
            );
            let partials: Vec<ShardPartial> = (0..shards)
                .map(|shard_index| {
                    scenario.run_algorithm_shard(
                        algorithm,
                        &scenario.engine(),
                        &NullObserver,
                        &plan,
                        shard_index,
                    )
                })
                .collect();
            let merged =
                scenario.merge_algorithm_shards(algorithm, &scenario.engine(), &plan, partials);
            assert_eq!(
                baseline, merged,
                "{algorithm}: {shards}-shard merge diverged"
            );
        }
    }
}

#[test]
fn checkpoint_events_fire_only_when_a_sink_wants_them() {
    let mut scenario = shrink(registry::get("w3").expect("built-in"));
    scenario.search.algorithm = Algorithm::MonteCarlo;

    // A plain run never emits checkpoint events (so traces of existing
    // runs are unchanged by the checkpoint plumbing).
    let recorder = RecordingObserver::new();
    scenario.run_algorithm_observed(Algorithm::MonteCarlo, &scenario.engine(), &recorder);
    assert_eq!(recorder.count("checkpoint_saved"), 0);

    // A checkpointing run emits one event per taken checkpoint.
    let recorder = RecordingObserver::new();
    let sink = RecordingCheckpointSink::every(2);
    scenario.run_algorithm_checkpointed(
        Algorithm::MonteCarlo,
        &scenario.engine(),
        &recorder,
        None,
        &sink,
    );
    let taken = sink.checkpoints().len();
    assert!(taken > 0);
    assert_eq!(recorder.count("checkpoint_saved"), taken);
}

/// An observer that panics after seeing `limit` events — stands in for a
/// crash (OOM-kill, ^C) mid-search.
struct KillSwitch {
    seen: std::sync::atomic::AtomicUsize,
    limit: usize,
}

impl SearchObserver for KillSwitch {
    fn on_event(&self, _event: &SearchEvent) {
        let seen = self.seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
        assert!(seen < self.limit, "simulated crash after {seen} events");
    }
}

#[test]
fn a_run_killed_mid_search_leaves_a_parseable_trace_prefix() {
    let mut scenario = shrink(registry::get("w1").expect("built-in"));
    scenario.search.algorithm = Algorithm::MonteCarlo;

    // The complete event stream of the run, for comparison.
    let recorder = RecordingObserver::new();
    scenario.run_algorithm_observed(Algorithm::MonteCarlo, &scenario.engine(), &recorder);
    let full_events = recorder.events();
    assert!(full_events.len() > 4);

    // Re-run tracing to a file, with a kill switch that panics mid-search
    // *after* the trace observer has written each event.
    let dir = std::env::temp_dir().join("nasaic-trace-kill-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("killed.jsonl");
    let kill_after = 4;
    let trace = TraceObserver::create(&path).unwrap();
    let kill = KillSwitch {
        seen: std::sync::atomic::AtomicUsize::new(0),
        limit: kill_after,
    };
    let mut observers = MulticastObserver::new();
    observers.push(&trace);
    observers.push(&kill);
    let engine = scenario.engine();
    let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        scenario.run_algorithm_observed(Algorithm::MonteCarlo, &engine, &observers);
    }));
    assert!(died.is_err(), "the kill switch must fire mid-run");
    // The trace is dropped without `finish()` — as a killed process would.
    drop(trace);

    // Per-event flushing must have left exactly the pre-crash events as
    // complete, parseable JSON lines matching the uninterrupted stream.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), kill_after);
    for (line, event) in lines.iter().zip(&full_events) {
        let mut parsed =
            nasaic::core::scenario::value::parse_json(line).expect("complete JSON line");
        // The trace layer stamps each line with `elapsed_ms` (schema v2);
        // everything else must match the event verbatim.
        parsed.remove("elapsed_ms").expect("schema v2 timestamp");
        assert_eq!(parsed, event.to_value(), "trace prefix diverged");
    }
}

#[test]
fn resume_rejects_checkpoints_from_another_algorithm() {
    let mut scenario = shrink(registry::get("w1").expect("built-in"));
    scenario.search.algorithm = Algorithm::MonteCarlo;
    let sink = RecordingCheckpointSink::every(1);
    scenario.run_algorithm_checkpointed(
        Algorithm::MonteCarlo,
        &scenario.engine(),
        &NullObserver,
        None,
        &sink,
    );
    let checkpoint = sink.checkpoints().pop().expect("a checkpoint");
    let result = std::panic::catch_unwind(|| {
        scenario.run_algorithm_checkpointed(
            Algorithm::Evolutionary,
            &scenario.engine(),
            &NullObserver,
            Some(&checkpoint),
            &NullCheckpointSink,
        )
    });
    assert!(
        result.is_err(),
        "a monte-carlo checkpoint must not resume an evolutionary run"
    );
}
