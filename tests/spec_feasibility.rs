//! Cross-crate feasibility invariants: the evaluator, the HAP theorem and
//! the penalty must agree about what "meeting the design specs" means.

use nasaic::accel::HardwareSpace;
use nasaic::core::bounds::PenaltyBounds;
use nasaic::core::penalty::Penalty;
use nasaic::core::prelude::*;
use nasaic::cost::WorkloadCosts;
use nasaic::sched::{meets_design_specs, solve_heuristic, HapProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_candidates(seed: u64, count: usize) -> Vec<Candidate> {
    let workload = Workload::w1();
    let hardware = HardwareSpace::paper_default(2);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let architectures = workload
                .tasks
                .iter()
                .map(|t| {
                    let space = t.backbone.search_space();
                    let indices = space.sample(&mut rng);
                    t.backbone.materialize(&indices).expect("valid sample")
                })
                .collect();
            let accelerator = if i % 2 == 0 {
                hardware.sample(&mut rng)
            } else {
                hardware.sample_fully_allocated(&mut rng)
            };
            Candidate::from_parts(architectures, accelerator)
        })
        .collect()
}

#[test]
fn penalty_is_zero_exactly_when_all_specs_are_met() {
    let workload = Workload::w1();
    let specs = DesignSpecs::for_workload(WorkloadId::W1);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let bounds = PenaltyBounds::from_specs(&specs, 3.0);
    for candidate in random_candidates(11, 30) {
        let evaluation = evaluator.evaluate(&candidate);
        let penalty = Penalty::compute(&evaluation.metrics, &specs, &bounds);
        assert_eq!(
            penalty.is_zero(),
            evaluation.meets_specs(),
            "penalty/spec mismatch for {}",
            candidate.summary()
        );
        assert!(penalty.total() >= 0.0);
        assert!(penalty.total().is_finite());
    }
}

#[test]
fn hap_theorem_matches_evaluator_latency_and_energy_checks() {
    // Theorem (Section IV): the latency and energy specs can be met iff
    // HAP(D, AIC, LS) <= ES.
    let workload = Workload::w1();
    let specs = DesignSpecs::for_workload(WorkloadId::W1);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let model = evaluator.cost_model().clone();
    for candidate in random_candidates(13, 20) {
        if !candidate.accelerator.has_capacity() {
            continue;
        }
        let costs = WorkloadCosts::build(&model, &candidate.architectures, &candidate.accelerator);
        if !costs.is_schedulable() {
            continue;
        }
        let problem = HapProblem::new(costs, specs.latency_cycles);
        let solution = solve_heuristic(&problem);
        let theorem_says_ok = meets_design_specs(&solution, specs.energy_nj);

        let evaluation = evaluator.evaluate(&candidate);
        let evaluator_says_ok = evaluation.spec_check.latency && evaluation.spec_check.energy;
        assert_eq!(
            theorem_says_ok,
            evaluator_says_ok,
            "theorem and evaluator disagree for {}",
            candidate.summary()
        );
    }
}

#[test]
fn hardware_metrics_never_report_negative_or_nan_values() {
    let workload = Workload::w2();
    let specs = DesignSpecs::for_workload(WorkloadId::W2);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    for candidate in random_candidates(17, 25) {
        let evaluation = evaluator.evaluate(&candidate);
        let m = &evaluation.metrics;
        assert!(!m.latency_cycles.is_nan() && m.latency_cycles > 0.0);
        assert!(!m.energy_nj.is_nan() && m.energy_nj > 0.0);
        assert!(!m.area_um2.is_nan() && m.area_um2 >= 0.0);
        for acc in &evaluation.accuracies {
            assert!((0.0..=1.0).contains(acc));
        }
    }
}

#[test]
fn accelerator_budget_is_always_respected_by_decoded_designs() {
    let hardware = HardwareSpace::paper_default(2);
    let budget = ResourceBudget::paper();
    let mut rng = StdRng::seed_from_u64(23);
    let space = hardware.search_space();
    for _ in 0..200 {
        let indices = space.sample(&mut rng);
        let accelerator = hardware.decode(&indices).expect("valid indices");
        assert!(budget.admits(&accelerator), "{accelerator}");
    }
}
