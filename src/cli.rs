//! The `nasaic` command-line runner: scenarios from the registry or from
//! TOML/JSON config files, executed through the shared evaluation engine.
//!
//! The parsing and execution live in this library module (the
//! `src/bin/nasaic.rs` binary is a three-line wrapper) so the whole CLI is
//! exercisable from integration tests without spawning processes.
//!
//! ```text
//! nasaic run --scenario <name|path> [--budget-episodes N] [--seed N]
//!            [--algorithm NAME] [--format text|json|csv] [--output FILE]
//!            [--trace FILE] [--progress]
//!            [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]
//!            [--shards N --shard-index I --shard-out FILE]
//! nasaic merge --scenario <name|path> [--algorithm NAME]
//!              --partials a.json,b.json,... [--format text|json|csv]
//! nasaic compare --scenario <name|path> [--algorithms a,b,c] [...]
//! nasaic list-scenarios [--format text|json]
//! nasaic show --scenario <name|path> [--format toml|json]
//! nasaic serve [--addr HOST:PORT] [--state-dir DIR] [--workers N] [...]
//! nasaic client --request <name> [--addr HOST:PORT] [--scenario ...] [--watch]
//! ```
//!
//! `--trace FILE` streams every search event (episodes, incumbents, phase
//! boundaries, the final cache summary) as JSON lines; `--progress` (also
//! implied by `--trace`) prints a human-readable progress line to stderr
//! on each improvement.
//!
//! `--checkpoint FILE` snapshots the live search state to `FILE` (atomic
//! rename) every `--checkpoint-every N` progress units; `--resume FILE`
//! continues an interrupted run from such a snapshot, bit-identically to
//! the uninterrupted run.  `--shards N --shard-index I` runs the `I`-th
//! shard of a deterministic `N`-way split and writes a partial result to
//! `--shard-out FILE`; `nasaic merge --partials ...` folds the partials
//! into the exact single-process report.

use nasaic_core::algorithm::{MulticastObserver, ProgressObserver, TraceObserver};
use nasaic_core::checkpoint::{
    CheckpointSink, FileCheckpointSink, NullCheckpointSink, SearchCheckpoint, ShardPartial,
};
use nasaic_core::experiments::compare;
use nasaic_core::scenario::generate::GeneratorSpec;
use nasaic_core::scenario::report::RunReport;
use nasaic_core::scenario::value::{self, ConfigValue};
use nasaic_core::scenario::{registry, Algorithm, ConfigError, Scenario};
use nasaic_serve::{Client, Daemon, Request, ServeConfig};
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// A CLI failure: bad usage or a scenario/config error.  [`fmt::Display`]
/// renders the message shown on stderr.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError {
    message: String,
}

impl CliError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::new(e.to_string())
    }
}

/// Top-level usage text (also the output of `nasaic help`); the built-in
/// list comes from the registry so it never goes stale.
pub fn usage() -> String {
    format!(
        "\
nasaic — neural architecture / ASIC accelerator co-exploration (DAC 2020)

USAGE:
    nasaic <COMMAND> [OPTIONS]

COMMANDS:
    run             Run one scenario's declared search algorithm
    merge           Merge shard partials into the single-process result
    compare         Run several algorithms on one scenario over a shared engine
    list-scenarios  List the built-in scenario registry
    show            Print a scenario's config (authoring starting point)
    gen             Generate a seeded scenario (always feasible or diagnosed)
    profile         Run a scenario and print its wall-time breakdown
    serve           Run the long-lived search daemon (shared warm engines)
    client          Talk to a running daemon (submit/cancel/show/shutdown)
    help            Show this message

OPTIONS:
    --scenario <name|path>   Registry name or path to a .toml/.json config
    --budget-episodes <N>    Override the scenario's episode budget
    --seed <N>               Override the scenario's RNG seed (run/show/gen)
    --algorithm <name>       Override the scenario's algorithm (run/show)
    --algorithms <a,b,..>    Comma-separated algorithm list (compare; default all)
    --networks <N>           Task count of the generated workload (gen)
    --layers <LO..HI|N>      Total nominal layer range (gen; `N` means N-5..N)
    --subs <N>               Sub-accelerator count of the generated pool (gen)
    --tightness <X>          Spec tightness of the generated scenario (gen; default 1.0)
    --format <fmt>           text|json|csv (run/compare), text|json (list),
                             toml|json (show), toml|json|text (gen)
    --output <file>          Write the result there instead of stdout
    --trace <file>           Stream search events as JSON lines (run; implies --progress)
    --progress               Print search progress lines to stderr (run)
    --checkpoint <file>      Snapshot the search state to this file (run)
    --checkpoint-every <N>   Checkpoint every N progress units (run; default 1)
    --resume <file>          Continue from a checkpoint file (run)
    --shards <N>             Split the run into N deterministic shards (run)
    --shard-index <I>        Which shard this process runs, 0-based (run)
    --shard-out <file>       Where the shard writes its partial result (run)
    --partials <a,b,..>      Comma-separated shard partial files (merge)
    --min-coverage <X>       Fail `profile` when attributed time covers less
                             than this fraction of the wall (0..1; default: report only)
    --addr <host:port>       Daemon listen/connect address (serve/client;
                             default 127.0.0.1:7764, port 0 = ephemeral)
    --addr-file <file>       Write the actually bound address there (serve)
    --metrics-addr <h:p>     Also expose Prometheus text-format metrics over
                             HTTP there (serve; port 0 = ephemeral)
    --metrics-addr-file <f>  Write the bound metrics address there (serve)
    --state-dir <dir>        Durability root: job journal, checkpoints and
                             persisted caches (serve; default: no persistence)
    --queue-capacity <N>     Max queued jobs before submits are rejected (serve)
    --workers <N>            Concurrently running jobs (serve; default 2)
    --job-threads <N>        Engine threads per job (serve; 0 = all cores)
    --accuracy-capacity <N>  Accuracy-cache bound per engine, entries (serve; 0 = unbounded)
    --hardware-capacity <N>  Hardware-cache bound per engine, entries (serve; 0 = unbounded)
    --request <name>         ping|submit|cancel|show-jobs|show-cache|
                             show-incumbent|show-metrics|shutdown (client)
    --job <N>                Job id for cancel/show-incumbent (client)
    --watch                  Stream incumbent events to stderr and wait for
                             the final report (client --request submit)

Protocol and ops runbook: docs/serve.md.
Scenario schema: docs/scenarios.md.  Built-ins: {}.",
        registry::names().join(" ")
    )
}

/// Output format of `run` / `compare` / `list-scenarios` / `show`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
    Toml,
}

impl Format {
    fn parse(text: &str, allowed: &[Format], ctx: &str) -> Result<Format, CliError> {
        let format = match text.trim().to_ascii_lowercase().as_str() {
            "text" => Format::Text,
            "json" => Format::Json,
            "csv" => Format::Csv,
            "toml" => Format::Toml,
            other => return Err(CliError::new(format!("unknown format `{other}`"))),
        };
        if !allowed.contains(&format) {
            return Err(CliError::new(format!(
                "format `{text}` is not valid for {ctx}"
            )));
        }
        Ok(format)
    }
}

/// Parsed command-line options (shared by all subcommands; each declares
/// the subset that applies via [`Options::ensure_only`]).
#[derive(Debug, Default)]
struct Options {
    scenario: Option<String>,
    budget_episodes: Option<usize>,
    seed: Option<u64>,
    algorithm: Option<String>,
    algorithms: Option<String>,
    networks: Option<usize>,
    layers: Option<String>,
    subs: Option<usize>,
    tightness: Option<f64>,
    format: Option<String>,
    output: Option<String>,
    trace: Option<String>,
    progress: bool,
    checkpoint: Option<String>,
    checkpoint_every: Option<usize>,
    resume: Option<String>,
    shards: Option<usize>,
    shard_index: Option<usize>,
    shard_out: Option<String>,
    partials: Option<String>,
    addr: Option<String>,
    addr_file: Option<String>,
    metrics_addr: Option<String>,
    metrics_addr_file: Option<String>,
    min_coverage: Option<f64>,
    state_dir: Option<String>,
    queue_capacity: Option<usize>,
    workers: Option<usize>,
    job_threads: Option<usize>,
    accuracy_capacity: Option<usize>,
    hardware_capacity: Option<usize>,
    request: Option<String>,
    job: Option<u64>,
    watch: bool,
    /// The flag names actually given, for applicability checks.
    provided: Vec<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut options = Options::default();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut take = || {
                iter.next()
                    .cloned()
                    .ok_or_else(|| CliError::new(format!("`{flag}` needs a value")))
            };
            match flag.as_str() {
                "--scenario" => options.scenario = Some(take()?),
                "--budget-episodes" => {
                    let text = take()?;
                    options.budget_episodes = Some(text.parse().map_err(|_| {
                        CliError::new(format!(
                            "--budget-episodes needs a positive integer, got `{text}`"
                        ))
                    })?)
                }
                "--seed" => {
                    let text = take()?;
                    let seed: u64 = text.parse().map_err(|_| {
                        CliError::new(format!("--seed needs a non-negative integer, got `{text}`"))
                    })?;
                    // The config format stores integers as i64, so larger
                    // seeds could not round-trip through `show`/config
                    // files; reject them up front.
                    if seed > i64::MAX as u64 {
                        return Err(CliError::new(format!(
                            "--seed must be at most {} so scenario configs round-trip",
                            i64::MAX
                        )));
                    }
                    options.seed = Some(seed);
                }
                "--algorithm" => options.algorithm = Some(take()?),
                "--algorithms" => options.algorithms = Some(take()?),
                "--networks" => {
                    let text = take()?;
                    options.networks = Some(text.parse().map_err(|_| {
                        CliError::new(format!("--networks needs a positive integer, got `{text}`"))
                    })?)
                }
                "--layers" => options.layers = Some(take()?),
                "--subs" => {
                    let text = take()?;
                    options.subs = Some(text.parse().map_err(|_| {
                        CliError::new(format!("--subs needs a positive integer, got `{text}`"))
                    })?)
                }
                "--tightness" => {
                    let text = take()?;
                    options.tightness = Some(text.parse().map_err(|_| {
                        CliError::new(format!("--tightness needs a number, got `{text}`"))
                    })?)
                }
                "--format" => options.format = Some(take()?),
                "--output" => options.output = Some(take()?),
                "--trace" => options.trace = Some(take()?),
                "--progress" => options.progress = true,
                "--checkpoint" => options.checkpoint = Some(take()?),
                "--checkpoint-every" => {
                    let text = take()?;
                    let every: usize = text.parse().map_err(|_| {
                        CliError::new(format!(
                            "--checkpoint-every needs a positive integer, got `{text}`"
                        ))
                    })?;
                    if every == 0 {
                        return Err(CliError::new("--checkpoint-every must be at least 1"));
                    }
                    options.checkpoint_every = Some(every);
                }
                "--resume" => options.resume = Some(take()?),
                "--shards" => {
                    let text = take()?;
                    let shards: usize = text.parse().map_err(|_| {
                        CliError::new(format!("--shards needs a positive integer, got `{text}`"))
                    })?;
                    if shards == 0 {
                        return Err(CliError::new("--shards must be at least 1"));
                    }
                    options.shards = Some(shards);
                }
                "--shard-index" => {
                    let text = take()?;
                    options.shard_index = Some(text.parse().map_err(|_| {
                        CliError::new(format!(
                            "--shard-index needs a non-negative integer, got `{text}`"
                        ))
                    })?)
                }
                "--shard-out" => options.shard_out = Some(take()?),
                "--partials" => options.partials = Some(take()?),
                "--addr" => options.addr = Some(take()?),
                "--addr-file" => options.addr_file = Some(take()?),
                "--metrics-addr" => options.metrics_addr = Some(take()?),
                "--metrics-addr-file" => options.metrics_addr_file = Some(take()?),
                "--min-coverage" => {
                    let text = take()?;
                    let coverage: f64 = text.parse().map_err(|_| {
                        CliError::new(format!(
                            "--min-coverage needs a fraction in 0..1, got `{text}`"
                        ))
                    })?;
                    if !(0.0..=1.0).contains(&coverage) {
                        return Err(CliError::new(format!(
                            "--min-coverage needs a fraction in 0..1, got `{text}`"
                        )));
                    }
                    options.min_coverage = Some(coverage);
                }
                "--state-dir" => options.state_dir = Some(take()?),
                "--queue-capacity" => {
                    let text = take()?;
                    options.queue_capacity = Some(text.parse().map_err(|_| {
                        CliError::new(format!(
                            "--queue-capacity needs a non-negative integer, got `{text}`"
                        ))
                    })?)
                }
                "--workers" => {
                    let text = take()?;
                    let workers: usize = text.parse().map_err(|_| {
                        CliError::new(format!("--workers needs a positive integer, got `{text}`"))
                    })?;
                    if workers == 0 {
                        return Err(CliError::new("--workers must be at least 1"));
                    }
                    options.workers = Some(workers);
                }
                "--job-threads" => {
                    let text = take()?;
                    options.job_threads = Some(text.parse().map_err(|_| {
                        CliError::new(format!(
                            "--job-threads needs a non-negative integer, got `{text}`"
                        ))
                    })?)
                }
                "--accuracy-capacity" => {
                    let text = take()?;
                    options.accuracy_capacity = Some(text.parse().map_err(|_| {
                        CliError::new(format!(
                            "--accuracy-capacity needs a non-negative integer, got `{text}`"
                        ))
                    })?)
                }
                "--hardware-capacity" => {
                    let text = take()?;
                    options.hardware_capacity = Some(text.parse().map_err(|_| {
                        CliError::new(format!(
                            "--hardware-capacity needs a non-negative integer, got `{text}`"
                        ))
                    })?)
                }
                "--request" => options.request = Some(take()?),
                "--job" => {
                    let text = take()?;
                    options.job = Some(text.parse().map_err(|_| {
                        CliError::new(format!("--job needs a non-negative integer, got `{text}`"))
                    })?)
                }
                "--watch" => options.watch = true,
                other => {
                    return Err(CliError::new(format!(
                        "unknown option `{other}` (see `nasaic help`)"
                    )))
                }
            }
            options.provided.push(flag.clone());
        }
        Ok(options)
    }

    /// Error out on flags the subcommand does not use, instead of silently
    /// ignoring them (e.g. `compare --algorithm` — a typo for
    /// `--algorithms` — must not run all six algorithms).
    fn ensure_only(&self, command: &str, allowed: &[&str]) -> Result<(), CliError> {
        for flag in &self.provided {
            if !allowed.contains(&flag.as_str()) {
                return Err(CliError::new(format!(
                    "`{flag}` does not apply to `nasaic {command}` (allowed: {})",
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// Resolve the scenario reference and apply the override flags.
    fn scenario(&self) -> Result<Scenario, CliError> {
        let reference = self
            .scenario
            .as_deref()
            .ok_or_else(|| CliError::new("missing `--scenario <name|path>`"))?;
        let mut scenario = registry::resolve(reference)?;
        if let Some(episodes) = self.budget_episodes {
            if episodes == 0 {
                return Err(CliError::new("--budget-episodes must be at least 1"));
            }
            scenario.search.episodes = episodes;
        }
        if let Some(seed) = self.seed {
            scenario.seed = seed;
        }
        if let Some(name) = &self.algorithm {
            scenario.search.algorithm = Algorithm::from_str(name)?;
        }
        Ok(scenario)
    }
}

/// Run the CLI on already-split arguments (everything after the program
/// name) and return the output text the binary prints to stdout.
///
/// # Errors
///
/// Returns a [`CliError`] with the message the binary prints to stderr
/// (exit code 2).
pub fn run_command(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = match args.split_first() {
        None => return Ok(usage()),
        Some((first, rest)) => (first.as_str(), rest),
    };
    let options = Options::parse(rest)?;
    let output = match command {
        "run" => cmd_run(&options)?,
        "merge" => cmd_merge(&options)?,
        "compare" => cmd_compare(&options)?,
        "list-scenarios" => cmd_list(&options)?,
        "show" => cmd_show(&options)?,
        "gen" => cmd_gen(&options)?,
        "profile" => cmd_profile(&options)?,
        "serve" => cmd_serve(&options)?,
        "client" => cmd_client(&options)?,
        "help" | "--help" | "-h" => usage(),
        other => {
            return Err(CliError::new(format!(
                "unknown command `{other}` (see `nasaic help`)"
            )))
        }
    };
    match &options.output {
        None => Ok(output),
        Some(path) => {
            std::fs::write(path, format!("{output}\n"))
                .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
            Ok(format!("wrote {path}"))
        }
    }
}

fn cmd_run(options: &Options) -> Result<String, CliError> {
    options.ensure_only(
        "run",
        &[
            "--scenario",
            "--budget-episodes",
            "--seed",
            "--algorithm",
            "--format",
            "--output",
            "--trace",
            "--progress",
            "--checkpoint",
            "--checkpoint-every",
            "--resume",
            "--shards",
            "--shard-index",
            "--shard-out",
        ],
    )?;
    let scenario = options.scenario()?;
    if options.shards.is_some() || options.shard_index.is_some() || options.shard_out.is_some() {
        return cmd_run_shard(options, &scenario);
    }
    let format = Format::parse(
        options.format.as_deref().unwrap_or("text"),
        &[Format::Text, Format::Json, Format::Csv],
        "run",
    )?;
    let resume = options
        .resume
        .as_deref()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::new(format!("cannot read checkpoint {path}: {e}")))?;
            SearchCheckpoint::parse_json(&text)
                .map_err(|e| CliError::new(format!("bad checkpoint {path}: {e}")))
        })
        .transpose()?;
    let file_sink = match (&options.checkpoint, options.checkpoint_every) {
        (Some(path), every) => Some(FileCheckpointSink::new(Path::new(path), every.unwrap_or(1))),
        (None, Some(_)) => {
            return Err(CliError::new(
                "--checkpoint-every needs `--checkpoint <file>`",
            ))
        }
        (None, None) => None,
    };
    let sink: &dyn CheckpointSink = match &file_sink {
        Some(sink) => sink,
        None => &NullCheckpointSink,
    };
    let report =
        if options.trace.is_some() || options.progress || resume.is_some() || file_sink.is_some() {
            let engine = scenario.engine();
            let trace =
                match &options.trace {
                    None => None,
                    Some(path) => Some(TraceObserver::create(Path::new(path)).map_err(|e| {
                        CliError::new(format!("cannot create trace file {path}: {e}"))
                    })?),
                };
            let progress =
                ProgressObserver::new(format!("{} {}", scenario.name, scenario.search.algorithm));
            let mut observers = MulticastObserver::new();
            if let Some(trace) = &trace {
                observers.push(trace);
            }
            if options.trace.is_some() || options.progress {
                observers.push(&progress);
            }
            let report = scenario.run_report_checkpointed(
                scenario.search.algorithm,
                &engine,
                &observers,
                resume.as_ref(),
                sink,
            );
            if let Some(trace) = trace {
                let path = options.trace.as_deref().unwrap_or_default();
                trace
                    .finish()
                    .map_err(|e| CliError::new(format!("cannot write trace file {path}: {e}")))?;
                eprintln!("trace written to {path}");
            }
            report
        } else {
            scenario.run_report()
        };
    if let Some(sink) = &file_sink {
        if let Some(error) = sink.take_error() {
            let path = options.checkpoint.as_deref().unwrap_or_default();
            return Err(CliError::new(format!(
                "cannot write checkpoint {path}: {error}"
            )));
        }
    }
    Ok(match format {
        Format::Text => report.to_string(),
        Format::Json => report.to_json(),
        Format::Csv => format!("{}\n{}", RunReport::CSV_HEADER, report.to_csv_row()),
        Format::Toml => unreachable!("rejected by Format::parse"),
    })
}

/// The `run --shards N --shard-index I` path: run one shard of the
/// deterministic N-way split and write its partial to `--shard-out`.
fn cmd_run_shard(options: &Options, scenario: &Scenario) -> Result<String, CliError> {
    let shards = options
        .shards
        .ok_or_else(|| CliError::new("sharded runs need `--shards <N>`"))?;
    let shard_index = options
        .shard_index
        .ok_or_else(|| CliError::new("sharded runs need `--shard-index <I>`"))?;
    if shard_index >= shards {
        return Err(CliError::new(format!(
            "--shard-index {shard_index} is out of range for {shards} shard(s)"
        )));
    }
    if options.resume.is_some() || options.checkpoint.is_some() {
        return Err(CliError::new(
            "`--shards` does not combine with `--checkpoint`/`--resume` (checkpoint the \
             single-process run, or re-run the cheap shard from scratch)",
        ));
    }
    let out = options
        .shard_out
        .as_deref()
        .ok_or_else(|| CliError::new("sharded runs need `--shard-out <file>`"))?;
    let engine = scenario.engine();
    let algorithm = scenario.search.algorithm;
    let plan = scenario.algorithm_shard_plan(algorithm, &engine, shards);
    let progress = ProgressObserver::new(format!(
        "{} {} shard {shard_index}/{shards}",
        scenario.name, scenario.search.algorithm
    ));
    let partial = if options.progress {
        scenario.run_algorithm_shard(algorithm, &engine, &progress, &plan, shard_index)
    } else {
        let observer = nasaic_core::algorithm::NullObserver;
        scenario.run_algorithm_shard(algorithm, &engine, &observer, &plan, shard_index)
    };
    std::fs::write(out, format!("{}\n", partial.to_json()))
        .map_err(|e| CliError::new(format!("cannot write shard partial {out}: {e}")))?;
    Ok(format!(
        "wrote shard {shard_index}/{shards} partial ({} solution(s)) to {out}",
        partial.solutions.len()
            + partial
                .complete
                .as_ref()
                .map_or(0, |outcome| outcome.explored.len())
    ))
}

/// The `merge` subcommand: fold shard partials back into the exact
/// single-process outcome and report it.
fn cmd_merge(options: &Options) -> Result<String, CliError> {
    options.ensure_only(
        "merge",
        &[
            "--scenario",
            "--budget-episodes",
            "--seed",
            "--algorithm",
            "--partials",
            "--format",
            "--output",
        ],
    )?;
    let scenario = options.scenario()?;
    let format = Format::parse(
        options.format.as_deref().unwrap_or("text"),
        &[Format::Text, Format::Json, Format::Csv],
        "merge",
    )?;
    let paths: Vec<&str> = options
        .partials
        .as_deref()
        .ok_or_else(|| CliError::new("missing `--partials <a.json,b.json,...>`"))?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if paths.is_empty() {
        return Err(CliError::new("--partials needs at least one file"));
    }
    let workload = scenario.workload();
    let mut partials = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::new(format!("cannot read shard partial {path}: {e}")))?;
        partials.push(
            ShardPartial::parse_json(&text, &workload)
                .map_err(|e| CliError::new(format!("bad shard partial {path}: {e}")))?,
        );
    }
    let algorithm = scenario.search.algorithm;
    for (path, partial) in paths.iter().zip(&partials) {
        if partial.algorithm != algorithm.name() {
            return Err(CliError::new(format!(
                "shard partial {path} was produced by `{}`, but the scenario declares `{}`",
                partial.algorithm,
                algorithm.name()
            )));
        }
        if partial.shards != partials.len() {
            return Err(CliError::new(format!(
                "shard partial {path} belongs to a {}-shard run, but {} partial(s) were given",
                partial.shards,
                partials.len()
            )));
        }
    }
    let engine = scenario.engine();
    let plan = scenario.algorithm_shard_plan(algorithm, &engine, partials.len());
    let outcome = scenario.merge_algorithm_shards(algorithm, &engine, &plan, partials);
    let report = scenario.report_for_outcome(algorithm, &outcome);
    Ok(match format {
        Format::Text => report.to_string(),
        Format::Json => report.to_json(),
        Format::Csv => format!("{}\n{}", RunReport::CSV_HEADER, report.to_csv_row()),
        Format::Toml => unreachable!("rejected by Format::parse"),
    })
}

fn cmd_compare(options: &Options) -> Result<String, CliError> {
    options.ensure_only(
        "compare",
        &[
            "--scenario",
            "--budget-episodes",
            "--seed",
            "--algorithms",
            "--format",
            "--output",
        ],
    )?;
    let scenario = options.scenario()?;
    let algorithms: Vec<Algorithm> = match &options.algorithms {
        None => Algorithm::all().to_vec(),
        Some(list) => list
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(Algorithm::from_str)
            .collect::<Result<_, _>>()?,
    };
    if algorithms.is_empty() {
        return Err(CliError::new("--algorithms needs at least one name"));
    }
    let format = Format::parse(
        options.format.as_deref().unwrap_or("text"),
        &[Format::Text, Format::Json, Format::Csv],
        "compare",
    )?;
    let comparison = compare::run(&scenario, &algorithms);
    Ok(match format {
        Format::Text => comparison.to_string(),
        Format::Json => comparison.to_json(),
        Format::Csv => comparison.to_csv(),
        Format::Toml => unreachable!("rejected by Format::parse"),
    })
}

fn cmd_list(options: &Options) -> Result<String, CliError> {
    options.ensure_only("list-scenarios", &["--format", "--output"])?;
    let format = Format::parse(
        options.format.as_deref().unwrap_or("text"),
        &[Format::Text, Format::Json],
        "list-scenarios",
    )?;
    let scenarios = registry::all();
    Ok(match format {
        Format::Text => {
            let mut out = String::from("built-in scenarios:\n");
            for scenario in &scenarios {
                out.push_str(&format!(
                    "  {:<18} {}\n      {}\n",
                    scenario.name,
                    scenario.description,
                    scenario.summary()
                ));
            }
            out.push_str("\nrun one with: nasaic run --scenario <name>");
            out
        }
        Format::Json => {
            let mut root = ConfigValue::table();
            root.insert(
                "scenarios",
                ConfigValue::Array(scenarios.iter().map(Scenario::to_value).collect()),
            );
            value::to_json(&root)
        }
        _ => unreachable!("rejected by Format::parse"),
    })
}

fn cmd_show(options: &Options) -> Result<String, CliError> {
    options.ensure_only(
        "show",
        &[
            "--scenario",
            "--budget-episodes",
            "--seed",
            "--algorithm",
            "--format",
            "--output",
        ],
    )?;
    let scenario = options.scenario()?;
    let format = Format::parse(
        options.format.as_deref().unwrap_or("toml"),
        &[Format::Toml, Format::Json],
        "show",
    )?;
    Ok(match format {
        Format::Toml => scenario.to_toml_string(),
        Format::Json => scenario.to_json_string(),
        _ => unreachable!("rejected by Format::parse"),
    })
}

/// Parse the `--layers` value: `LO..HI` (inclusive) or a single `N`
/// shorthand for `N-5..N` (the slack [`GeneratorSpec::sized`] uses, so
/// every rung is reachable by some backbone combination without ever
/// exceeding the requested count).
fn parse_layer_range(text: &str) -> Result<(usize, usize), CliError> {
    let bad = || {
        CliError::new(format!(
            "--layers needs `LO..HI` or a single count, got `{text}`"
        ))
    };
    match text.split_once("..") {
        Some((lo, hi)) => {
            let lo: usize = lo.trim().parse().map_err(|_| bad())?;
            let hi: usize = hi.trim().parse().map_err(|_| bad())?;
            Ok((lo, hi))
        }
        None => {
            let n: usize = text.trim().parse().map_err(|_| bad())?;
            Ok((n.saturating_sub(5).max(1), n.max(1)))
        }
    }
}

fn cmd_gen(options: &Options) -> Result<String, CliError> {
    options.ensure_only(
        "gen",
        &[
            "--seed",
            "--networks",
            "--layers",
            "--subs",
            "--tightness",
            "--format",
            "--output",
        ],
    )?;
    let format = Format::parse(
        options.format.as_deref().unwrap_or("toml"),
        &[Format::Toml, Format::Json, Format::Text],
        "gen",
    )?;
    let range = options
        .layers
        .as_deref()
        .map(parse_layer_range)
        .transpose()?;
    let mut spec = GeneratorSpec::sized(
        range
            .map(|(_, hi)| hi)
            .unwrap_or(GeneratorSpec::default().layer_range.1),
        options.subs.unwrap_or(2),
        options.seed.unwrap_or(GeneratorSpec::default().seed),
    );
    if let Some(range) = range {
        spec.layer_range = range;
        spec.fit_network_count();
    }
    if let Some(networks) = options.networks {
        spec.network_count = networks;
    }
    if let Some(tightness) = options.tightness {
        spec.constraint_tightness = tightness;
    }
    let generated = spec.generate().map_err(|e| CliError::new(e.to_string()))?;
    Ok(match format {
        Format::Toml => generated.scenario.to_toml_string(),
        Format::Json => generated.scenario.to_json_string(),
        Format::Text => {
            let backbones: Vec<&str> = generated
                .scenario
                .tasks
                .iter()
                .map(|t| t.backbone.name())
                .collect();
            format!(
                "generated scenario {}\n\
                 tasks: {} [{}]\n\
                 nominal layers: {} (requested {}..{})\n\
                 probe tier: {}\n\
                 feasibility: {}\n\
                 specs: latency {} cycles, energy {} nJ, area {} um^2",
                generated.scenario.name,
                generated.scenario.tasks.len(),
                backbones.join(", "),
                generated.total_layers,
                spec.layer_range.0,
                spec.layer_range.1,
                generated.probe_tier,
                generated.feasibility,
                generated.scenario.specs.latency_cycles,
                generated.scenario.specs.energy_nj,
                generated.scenario.specs.area_um2,
            )
        }
        Format::Csv => unreachable!("rejected by Format::parse"),
    })
}

/// The `profile` subcommand: run the scenario once with telemetry on and
/// report where the wall time went (accuracy proxy vs cost model vs
/// scheduler vs controller vs checkpointing).
fn cmd_profile(options: &Options) -> Result<String, CliError> {
    options.ensure_only(
        "profile",
        &[
            "--scenario",
            "--budget-episodes",
            "--seed",
            "--algorithm",
            "--format",
            "--output",
            "--min-coverage",
        ],
    )?;
    let scenario = options.scenario()?;
    let format = Format::parse(
        options.format.as_deref().unwrap_or("text"),
        &[Format::Text, Format::Json],
        "profile",
    )?;
    // Attribution needs a single-threaded engine: with parallel evaluation
    // the per-component spans overlap and would sum past the wall.
    let engine = scenario.engine_with_config(nasaic_core::engine::EngineConfig {
        threads: 1,
        ..nasaic_core::engine::EngineConfig::default()
    });
    let was_enabled = nasaic_telemetry::enabled();
    nasaic_telemetry::set_enabled(true);
    nasaic_telemetry::global().reset();
    let observer = nasaic_core::metrics::MetricsObserver::new();
    let started = std::time::Instant::now();
    let report = scenario.run_report_checkpointed(
        scenario.search.algorithm,
        &engine,
        &observer,
        None,
        &NullCheckpointSink,
    );
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let breakdown = nasaic_core::metrics::ProfileBreakdown::collect(wall_ms);
    nasaic_telemetry::set_enabled(was_enabled);
    if let Some(min) = options.min_coverage {
        if breakdown.coverage < min {
            return Err(CliError::new(format!(
                "profile coverage {:.1}% is below the required {:.1}% — instrumented spans \
                 miss too much of the wall",
                breakdown.coverage * 100.0,
                min * 100.0
            )));
        }
    }
    Ok(match format {
        Format::Text => format!(
            "profile: {} {} (seed {}, {} episode(s))\n{}",
            scenario.name,
            scenario.search.algorithm,
            scenario.seed,
            report.episodes,
            breakdown.render_text()
        ),
        Format::Json => {
            let mut root = breakdown.to_value();
            root.insert("scenario", ConfigValue::Str(scenario.name.clone()));
            root.insert(
                "algorithm",
                ConfigValue::Str(scenario.search.algorithm.name().to_string()),
            );
            root.insert("seed", ConfigValue::Integer(scenario.seed as i64));
            root.insert("episodes", ConfigValue::Integer(report.episodes as i64));
            value::to_json(&root)
        }
        _ => unreachable!("rejected by Format::parse"),
    })
}

fn cmd_serve(options: &Options) -> Result<String, CliError> {
    options.ensure_only(
        "serve",
        &[
            "--addr",
            "--addr-file",
            "--metrics-addr",
            "--metrics-addr-file",
            "--state-dir",
            "--queue-capacity",
            "--workers",
            "--job-threads",
            "--accuracy-capacity",
            "--hardware-capacity",
            "--checkpoint-every",
            "--output",
        ],
    )?;
    if options.metrics_addr_file.is_some() && options.metrics_addr.is_none() {
        return Err(CliError::new(
            "--metrics-addr-file needs `--metrics-addr <host:port>`",
        ));
    }
    let mut config = ServeConfig::default();
    if let Some(addr) = &options.addr {
        config.addr = addr.clone();
    }
    config.metrics_addr = options.metrics_addr.clone();
    config.state_dir = options.state_dir.as_ref().map(std::path::PathBuf::from);
    if let Some(capacity) = options.queue_capacity {
        config.queue_capacity = capacity;
    }
    if let Some(workers) = options.workers {
        config.workers = workers;
    }
    if let Some(threads) = options.job_threads {
        config.job_threads = threads;
    }
    if let Some(capacity) = options.accuracy_capacity {
        config.accuracy_capacity = capacity;
    }
    if let Some(capacity) = options.hardware_capacity {
        config.hardware_capacity = capacity;
    }
    if let Some(every) = options.checkpoint_every {
        config.checkpoint_every = every;
    }
    let handle = Daemon::start(config).map_err(|e| CliError::new(e.to_string()))?;
    let addr = handle.addr();
    // stderr, so scripts capturing stdout see only the final summary; the
    // addr file resolves ephemeral ports (`--addr 127.0.0.1:0`) for them.
    eprintln!("nasaic serve: listening on {addr}");
    if let Some(path) = &options.addr_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
    }
    if let Some(metrics_addr) = handle.metrics_addr() {
        eprintln!("nasaic serve: metrics on http://{metrics_addr}/metrics");
        if let Some(path) = &options.metrics_addr_file {
            std::fs::write(path, format!("{metrics_addr}\n"))
                .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
        }
    }
    handle.join().map_err(|e| CliError::new(e.to_string()))
}

fn cmd_client(options: &Options) -> Result<String, CliError> {
    options.ensure_only(
        "client",
        &[
            "--addr",
            "--request",
            "--job",
            "--watch",
            "--scenario",
            "--budget-episodes",
            "--seed",
            "--algorithm",
            "--output",
        ],
    )?;
    const REQUESTS: &str =
        "ping, submit, cancel, show-jobs, show-cache, show-incumbent, show-metrics, shutdown";
    let addr = options.addr.as_deref().unwrap_or("127.0.0.1:7764");
    let request_name = options
        .request
        .as_deref()
        .ok_or_else(|| CliError::new(format!("missing `--request <name>` ({REQUESTS})")))?;
    let job = || {
        options
            .job
            .ok_or_else(|| CliError::new(format!("`--request {request_name}` needs `--job <N>`")))
    };
    let mut client = Client::connect(addr).map_err(|e| CliError::new(e.to_string()))?;
    let response = match request_name {
        "ping" => client.request(&Request::Ping),
        "submit" => {
            let scenario = options.scenario()?;
            if options.watch {
                client.submit_watch(scenario.to_value(), |event| {
                    eprintln!("{}", value::to_json_compact(event));
                })
            } else {
                client.request(&Request::Submit {
                    scenario: scenario.to_value(),
                    watch: false,
                })
            }
        }
        "cancel" => client.request(&Request::Cancel { job: job()? }),
        "show-jobs" => client.request(&Request::ShowJobs),
        "show-cache" => client.request(&Request::ShowCache),
        "show-incumbent" => client.request(&Request::ShowIncumbent { job: job()? }),
        "show-metrics" => client.request(&Request::ShowMetrics),
        "shutdown" => client.request(&Request::Shutdown),
        other => {
            return Err(CliError::new(format!(
                "unknown request `{other}` ({REQUESTS})"
            )))
        }
    }
    .map_err(|e| CliError::new(e.to_string()))?;
    if response.get("ok").and_then(ConfigValue::as_bool) == Some(false) {
        let message = response
            .get("error")
            .and_then(ConfigValue::as_str)
            .unwrap_or("daemon reported an error");
        return Err(CliError::new(format!("daemon: {message}")));
    }
    Ok(value::to_json(&response))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        run_command(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn no_args_and_help_print_usage() {
        assert_eq!(run(&[]).unwrap(), usage());
        assert_eq!(run(&["help"]).unwrap(), usage());
        // The help text lists every registry entry.
        for name in registry::names() {
            assert!(usage().contains(name), "{name} missing from usage");
        }
    }

    #[test]
    fn unknown_commands_and_flags_error() {
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["run", "--wat"]).is_err());
        assert!(run(&["run"])
            .unwrap_err()
            .to_string()
            .contains("--scenario"));
        assert!(run(&["run", "--scenario"]).is_err());
        assert!(run(&["run", "--scenario", "w1", "--budget-episodes", "zero"]).is_err());
    }

    #[test]
    fn inapplicable_flags_error_instead_of_being_ignored() {
        // `--algorithm` on compare is almost certainly a typo for
        // `--algorithms`; dropping it silently would run all six
        // algorithms at full budget.
        let err = run(&["compare", "--scenario", "w3", "--algorithm", "monte-carlo"]).unwrap_err();
        assert!(err.to_string().contains("does not apply"), "{err}");
        assert!(err.to_string().contains("--algorithms"), "{err}");
        let err = run(&["list-scenarios", "--seed", "4"]).unwrap_err();
        assert!(err.to_string().contains("does not apply"), "{err}");
        let err = run(&["run", "--scenario", "w3", "--algorithms", "nasaic"]).unwrap_err();
        assert!(err.to_string().contains("does not apply"), "{err}");
    }

    #[test]
    fn seeds_beyond_i64_are_rejected_so_configs_round_trip() {
        let err = run(&["show", "--scenario", "w1", "--seed", "9223372036854775808"]).unwrap_err();
        assert!(err.to_string().contains("round-trip"), "{err}");
        // The boundary value itself is fine.
        let toml = run(&["show", "--scenario", "w1", "--seed", "9223372036854775807"]).unwrap();
        assert!(toml.contains("seed = 9223372036854775807"), "{toml}");
    }

    #[test]
    fn list_scenarios_mentions_every_builtin() {
        let text = run(&["list-scenarios"]).unwrap();
        for name in registry::names() {
            assert!(text.contains(name), "{name} missing from listing");
        }
        let json = run(&["list-scenarios", "--format", "json"]).unwrap();
        let parsed = value::parse_json(&json).unwrap();
        assert_eq!(
            parsed.get("scenarios").unwrap().as_array().unwrap().len(),
            registry::names().len()
        );
    }

    #[test]
    fn show_round_trips_through_the_parser() {
        let toml = run(&["show", "--scenario", "quad-mix"]).unwrap();
        let reparsed = Scenario::from_toml_str(&toml).unwrap();
        assert_eq!(reparsed, registry::get("quad-mix").unwrap());
        let json = run(&["show", "--scenario", "quad-mix", "--format", "json"]).unwrap();
        assert_eq!(Scenario::from_json_str(&json).unwrap(), reparsed);
    }

    #[test]
    fn run_overrides_budget_seed_and_algorithm() {
        let json = run(&[
            "run",
            "--scenario",
            "w3",
            "--budget-episodes",
            "3",
            "--seed",
            "5",
            "--algorithm",
            "monte-carlo",
            "--format",
            "json",
        ])
        .unwrap();
        let parsed = value::parse_json(&json).unwrap();
        // Monte-Carlo maps the 3-episode budget to 3 * (1 + phi) samples.
        assert_eq!(parsed.get("episodes").unwrap().as_integer(), Some(33));
        assert_eq!(parsed.get("seed").unwrap().as_integer(), Some(5));
        assert_eq!(
            parsed.get("algorithm").unwrap().as_str(),
            Some("monte-carlo")
        );
    }

    #[test]
    fn gen_emits_a_loadable_deterministic_scenario() {
        let toml = run(&["gen", "--seed", "7", "--layers", "39", "--subs", "2"]).unwrap();
        let scenario = Scenario::from_toml_str(&toml).unwrap();
        assert_eq!(scenario.seed, 7);
        assert_eq!(scenario.hardware.sub_accelerators, 2);
        assert_eq!(scenario.search.scheduler.name(), "auto");
        // Same flags, same output, bit for bit.
        let again = run(&["gen", "--seed", "7", "--layers", "39", "--subs", "2"]).unwrap();
        assert_eq!(toml, again);
        // JSON agrees with TOML.
        let json = run(&[
            "gen", "--seed", "7", "--layers", "39", "--subs", "2", "--format", "json",
        ])
        .unwrap();
        assert_eq!(Scenario::from_json_str(&json).unwrap(), scenario);
    }

    #[test]
    fn gen_text_summary_reports_tier_and_feasibility() {
        let text = run(&[
            "gen", "--seed", "3", "--layers", "20..25", "--format", "text",
        ])
        .unwrap();
        assert!(text.contains("probe tier: exact"), "{text}");
        assert!(text.contains("feasibility: feasible"), "{text}");
        // Over-tight specs are diagnosed, not a panic or an error.
        let text = run(&[
            "gen",
            "--seed",
            "3",
            "--layers",
            "20..25",
            "--tightness",
            "4.0",
            "--format",
            "text",
        ])
        .unwrap();
        assert!(text.contains("feasibility: infeasible"), "{text}");
    }

    #[test]
    fn gen_rejects_bad_and_inapplicable_flags() {
        let err = run(&["gen", "--layers", "ten"]).unwrap_err();
        assert!(err.to_string().contains("--layers"), "{err}");
        let err = run(&["gen", "--scenario", "w1"]).unwrap_err();
        assert!(err.to_string().contains("does not apply"), "{err}");
        let err = run(&["run", "--scenario", "w1", "--layers", "10"]).unwrap_err();
        assert!(err.to_string().contains("does not apply"), "{err}");
        // An impossible generator spec surfaces the structured reason.
        let err = run(&["gen", "--layers", "10..12", "--networks", "50"]).unwrap_err();
        assert!(err.to_string().contains("achievable"), "{err}");
    }

    #[test]
    fn output_flag_writes_the_file() {
        let dir = std::env::temp_dir().join("nasaic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("listing.json");
        let message = run(&[
            "list-scenarios",
            "--format",
            "json",
            "--output",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(message.contains("wrote"));
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(value::parse_json(written.trim()).is_ok());
    }
}
