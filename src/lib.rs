//! # NASAIC — Neural Architecture / ASIC Accelerator Co-Exploration
//!
//! This is the facade crate of the NASAIC reproduction (Yang et al.,
//! "Co-Exploration of Neural Architectures and Heterogeneous ASIC
//! Accelerator Designs Targeting Multiple Tasks", DAC 2020).  It re-exports
//! every subsystem crate under a stable set of module names so downstream
//! users can depend on a single crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `nasaic-tensor` | dense matrices, activations, optimizers |
//! | [`nn`] | `nasaic-nn` | architecture IR, ResNet-9 / U-Net backbones, search spaces |
//! | [`accel`] | `nasaic-accel` | dataflow templates, sub-accelerators, hardware design space |
//! | [`cost`] | `nasaic-cost` | MAESTRO-style analytical latency/energy/area model |
//! | [`accuracy`] | `nasaic-accuracy` | calibrated accuracy surrogates and proxy training |
//! | [`sched`] | `nasaic-sched` | layer-to-sub-accelerator mapping and HAP scheduling |
//! | [`rl`] | `nasaic-rl` | LSTM policy network and REINFORCE machinery |
//! | [`core`] | `nasaic-core` | the NASAIC framework, scenario registry, baselines and experiment harness |
//! | [`serve`] | `nasaic-serve` | the `nasaic serve` daemon: shared warm engines, job queue, wire protocol |
//! | [`cli`] | (this crate) | the `nasaic` binary's argument parsing and subcommands |
//!
//! # Quickstart
//!
//! ```
//! use nasaic::core::prelude::*;
//!
//! // Workload W3 from the paper: two CIFAR-10 classification tasks.
//! let workload = Workload::w3();
//! let specs = DesignSpecs::for_workload(WorkloadId::W3);
//! let config = NasaicConfig::fast_demo(7);
//! let outcome = Nasaic::new(workload, specs, config).run();
//! assert!(outcome.best.is_some());
//! # let best = outcome.best.unwrap();
//! # assert!(best.evaluation.meets_specs());
//! ```
//!
//! The same run, declaratively through the scenario layer (what the
//! `nasaic` CLI binary does — see `docs/scenarios.md`):
//!
//! ```
//! use nasaic::core::scenario::registry;
//!
//! let mut scenario = registry::get("w3").expect("built-in scenario");
//! scenario.seed = 7;
//! scenario.search.episodes = 40;
//! scenario.search.hardware_trials = 4;
//! scenario.search.bound_samples = 10;
//! let report = scenario.run_report();
//! assert!(report.best.is_some());
//! ```

#![deny(missing_docs)]

pub mod cli;

pub use nasaic_accel as accel;
pub use nasaic_accuracy as accuracy;
pub use nasaic_core as core;
pub use nasaic_cost as cost;
pub use nasaic_nn as nn;
pub use nasaic_rl as rl;
pub use nasaic_sched as sched;
pub use nasaic_serve as serve;
pub use nasaic_tensor as tensor;
