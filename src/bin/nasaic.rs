//! The `nasaic` binary: a thin wrapper over [`nasaic::cli`].

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match nasaic::cli::run_command(&args) {
        Ok(output) => {
            // A consumer like `head` may close the pipe early; that is not
            // an error worth panicking over.
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "{output}");
        }
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(2);
        }
    }
}
