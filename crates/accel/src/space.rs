//! The hardware allocation search space sampled by the NASAIC controller.
//!
//! Each sub-accelerator contributes one controller *segment* with three
//! decisions: the dataflow template, a PE allocation level and a bandwidth
//! allocation level.  The discrete option lists reuse the generic
//! [`SearchSpace`] machinery of `nasaic-nn`, so the controller treats
//! architecture and hardware segments uniformly (which is exactly the
//! paper's Fig. 5 controller layout).

use crate::budget::ResourceBudget;
use crate::dataflow::Dataflow;
use crate::subaccel::SubAccelerator;
use crate::Accelerator;
use nasaic_nn::space::{ChoicePoint, DecodeError, SearchSpace};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of PE allocation levels offered to the controller (0..=4096 in
/// steps of 256).
pub const PE_LEVELS: usize = 17;
/// Number of bandwidth allocation levels offered to the controller
/// (0..=64 GB/s in steps of 8).
pub const BW_LEVELS: usize = 9;

/// The hardware design space for `k` sub-accelerators under a resource
/// budget.
///
/// # Example
///
/// ```
/// use nasaic_accel::{HardwareSpace, ResourceBudget};
///
/// let space = HardwareSpace::paper_default(2);
/// let search_space = space.search_space();
/// assert_eq!(search_space.num_choices(), 6); // 3 decisions per sub-accelerator
/// let accelerator = space.decode(&search_space.smallest()).unwrap();
/// assert!(ResourceBudget::paper().admits(&accelerator));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpace {
    budget: ResourceBudget,
    num_sub_accelerators: usize,
    allowed_dataflows: Vec<Dataflow>,
}

impl HardwareSpace {
    /// Create a hardware space.
    ///
    /// # Panics
    ///
    /// Panics if `num_sub_accelerators` is zero or `allowed_dataflows` is
    /// empty.
    pub fn new(
        budget: ResourceBudget,
        num_sub_accelerators: usize,
        allowed_dataflows: Vec<Dataflow>,
    ) -> Self {
        assert!(
            num_sub_accelerators > 0,
            "need at least one sub-accelerator"
        );
        assert!(!allowed_dataflows.is_empty(), "need at least one dataflow");
        Self {
            budget,
            num_sub_accelerators,
            allowed_dataflows,
        }
    }

    /// The paper's configuration: the given number of sub-accelerators,
    /// all three dataflow templates, and the 4096-PE / 64-GB/s budget.
    pub fn paper_default(num_sub_accelerators: usize) -> Self {
        Self::new(
            ResourceBudget::paper(),
            num_sub_accelerators,
            Dataflow::all().to_vec(),
        )
    }

    /// Restrict the space to a single dataflow (used for the homogeneous /
    /// single-accelerator studies of Table II).
    pub fn with_dataflows(mut self, dataflows: Vec<Dataflow>) -> Self {
        assert!(!dataflows.is_empty(), "need at least one dataflow");
        self.allowed_dataflows = dataflows;
        self
    }

    /// Replace the resource budget.
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The resource budget of this space.
    pub fn budget(&self) -> &ResourceBudget {
        &self.budget
    }

    /// Number of sub-accelerators configured.
    pub fn num_sub_accelerators(&self) -> usize {
        self.num_sub_accelerators
    }

    /// The dataflows the controller may select.
    pub fn allowed_dataflows(&self) -> &[Dataflow] {
        &self.allowed_dataflows
    }

    /// PE count corresponding to a PE level index.
    pub fn pe_level_value(&self, level: usize) -> usize {
        let step = self.budget.max_pes / (PE_LEVELS - 1);
        (level * step).min(self.budget.max_pes)
    }

    /// Bandwidth corresponding to a bandwidth level index.
    pub fn bw_level_value(&self, level: usize) -> usize {
        let step = self.budget.max_bandwidth_gbps / (BW_LEVELS - 1);
        (level * step).min(self.budget.max_bandwidth_gbps)
    }

    /// The discrete search space presented to the controller: per
    /// sub-accelerator, a dataflow choice, a PE level and a bandwidth
    /// level.
    pub fn search_space(&self) -> SearchSpace {
        let mut choices = Vec::new();
        for i in 0..self.num_sub_accelerators {
            choices.push(ChoicePoint::new(
                &format!("aic{i}_df"),
                (0..self.allowed_dataflows.len()).collect(),
            ));
            choices.push(ChoicePoint::new(
                &format!("aic{i}_pe"),
                (0..PE_LEVELS).map(|l| self.pe_level_value(l)).collect(),
            ));
            choices.push(ChoicePoint::new(
                &format!("aic{i}_bw"),
                (0..BW_LEVELS).map(|l| self.bw_level_value(l)).collect(),
            ));
        }
        SearchSpace::new("hardware-allocation", choices)
    }

    /// Decode a controller index vector into an accelerator, applying the
    /// resource allocator so the result always respects the budget.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the index vector does not fit the search
    /// space.
    pub fn decode(&self, indices: &[usize]) -> Result<Accelerator, DecodeError> {
        let space = self.search_space();
        let values = space.decode(indices)?;
        let proposal: Vec<SubAccelerator> = values
            .chunks(3)
            .map(|chunk| {
                let dataflow = self.allowed_dataflows[chunk[0]];
                SubAccelerator::new(dataflow, chunk[1], chunk[2])
            })
            .collect();
        Ok(self.budget.fit(&proposal))
    }

    /// Encode an accelerator back into (approximate) controller indices —
    /// the nearest level at or below each resource amount.  Useful for
    /// seeding searches from a known design.
    pub fn encode(&self, accelerator: &Accelerator) -> Vec<usize> {
        let mut indices = Vec::new();
        for (i, sub) in accelerator.sub_accelerators().iter().enumerate() {
            if i >= self.num_sub_accelerators {
                break;
            }
            let df_index = self
                .allowed_dataflows
                .iter()
                .position(|&d| d == sub.dataflow)
                .unwrap_or(0);
            let pe_step = self.budget.max_pes / (PE_LEVELS - 1);
            let bw_step = self.budget.max_bandwidth_gbps / (BW_LEVELS - 1);
            indices.push(df_index);
            indices.push((sub.num_pes / pe_step.max(1)).min(PE_LEVELS - 1));
            indices.push((sub.bandwidth_gbps / bw_step.max(1)).min(BW_LEVELS - 1));
        }
        while indices.len() < 3 * self.num_sub_accelerators {
            indices.push(0);
        }
        indices
    }

    /// Sample a uniformly random accelerator design (used by the
    /// Monte-Carlo baseline).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Accelerator {
        let space = self.search_space();
        let indices = space.sample(rng);
        self.decode(&indices)
            .expect("sampled indices are always valid")
    }

    /// Sample a random *fully allocated* design: dataflows are random but
    /// the entire PE and bandwidth budget is split randomly across the
    /// sub-accelerators.  This matches how the paper's NAS→ASIC baseline
    /// explores hardware by brute force.
    pub fn sample_fully_allocated<R: Rng>(&self, rng: &mut R) -> Accelerator {
        let k = self.num_sub_accelerators;
        let mut pe_split = vec![0usize; k];
        let mut bw_split = vec![0usize; k];
        // Random split of the budget in quanta.
        let pe_quanta = self.budget.max_pes / crate::budget::PE_QUANTUM;
        let bw_quanta = self.budget.max_bandwidth_gbps / crate::budget::BW_QUANTUM;
        for _ in 0..pe_quanta {
            pe_split[rng.gen_range(0..k)] += crate::budget::PE_QUANTUM;
        }
        for _ in 0..bw_quanta {
            bw_split[rng.gen_range(0..k)] += crate::budget::BW_QUANTUM;
        }
        let subs: Vec<SubAccelerator> = (0..k)
            .map(|i| {
                let df = self.allowed_dataflows[rng.gen_range(0..self.allowed_dataflows.len())];
                SubAccelerator::new(df, pe_split[i], bw_split[i])
            })
            .collect();
        self.budget.fit(&subs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn search_space_has_three_choices_per_sub() {
        let space = HardwareSpace::paper_default(2);
        let ss = space.search_space();
        assert_eq!(ss.num_choices(), 6);
        assert_eq!(ss.cardinalities(), vec![3, 17, 9, 3, 17, 9]);
    }

    #[test]
    fn level_values_cover_the_budget() {
        let space = HardwareSpace::paper_default(2);
        assert_eq!(space.pe_level_value(0), 0);
        assert_eq!(space.pe_level_value(PE_LEVELS - 1), 4096);
        assert_eq!(space.bw_level_value(0), 0);
        assert_eq!(space.bw_level_value(BW_LEVELS - 1), 64);
    }

    #[test]
    fn decode_always_respects_budget() {
        let space = HardwareSpace::paper_default(2);
        let ss = space.search_space();
        let budget = ResourceBudget::paper();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let indices = ss.sample(&mut rng);
            let acc = space.decode(&indices).unwrap();
            assert!(budget.admits(&acc), "{}", acc);
        }
    }

    #[test]
    fn decode_maximal_allocation_is_scaled_to_fit() {
        let space = HardwareSpace::paper_default(2);
        let ss = space.search_space();
        let acc = space.decode(&ss.largest()).unwrap();
        assert!(ResourceBudget::paper().admits(&acc));
        assert!(acc.total_pes() > 0);
    }

    #[test]
    fn encode_decode_round_trip_is_close() {
        let space = HardwareSpace::paper_default(2);
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 1024, 16),
        ]);
        let decoded = space.decode(&space.encode(&acc)).unwrap();
        assert_eq!(decoded.sub_accelerators()[0].dataflow, Dataflow::Nvdla);
        assert_eq!(decoded.sub_accelerators()[0].num_pes, 2048);
        assert_eq!(decoded.sub_accelerators()[1].num_pes, 1024);
    }

    #[test]
    fn restricted_dataflow_space_only_uses_that_dataflow() {
        let space = HardwareSpace::paper_default(2).with_dataflows(vec![Dataflow::Nvdla]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let acc = space.sample(&mut rng);
            for sub in acc.active_subs() {
                assert_eq!(sub.dataflow, Dataflow::Nvdla);
            }
        }
    }

    #[test]
    fn fully_allocated_samples_use_whole_budget() {
        let space = HardwareSpace::paper_default(2);
        let mut rng = StdRng::seed_from_u64(3);
        let acc = space.sample_fully_allocated(&mut rng);
        assert!(ResourceBudget::paper().admits(&acc));
        // All quanta were distributed, so the totals equal the budget
        // unless a sub-accelerator was deactivated by quantisation.
        assert!(acc.total_pes() >= 4096 - 64);
    }

    #[test]
    fn scaled_budget_space_produces_smaller_designs() {
        let half = HardwareSpace::paper_default(1).with_budget(ResourceBudget::paper().scaled(0.5));
        let ss = half.search_space();
        let acc = half.decode(&ss.largest()).unwrap();
        assert!(acc.total_pes() <= 2048);
    }
}
