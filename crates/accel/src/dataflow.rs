//! The ASIC template set: dataflow styles of existing accelerator designs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A dataflow template, i.e. the loop order / spatial unrolling style of an
/// existing accelerator design.
///
/// The paper builds its template set from three published designs:
///
/// * **Shidiannao** — output-stationary style that unrolls the *output
///   feature map* spatially; it favours layers with high activation
///   resolution and few channels (early convolutions, U-Net levels).
/// * **NVDLA** — adder-tree style that unrolls *channels* spatially
///   (loads one pixel from each activation channel per step); it favours
///   layers with many channels and low resolution (late ResNet blocks).
/// * **Row-stationary** (Eyeriss) — balances reuse of weights, inputs and
///   partial sums along rows; a good all-rounder with higher buffer cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Shidiannao-style output-stationary dataflow.
    Shidiannao,
    /// NVDLA-style channel-parallel adder-tree dataflow.
    Nvdla,
    /// Eyeriss-style row-stationary dataflow.
    RowStationary,
}

impl Dataflow {
    /// All templates in the paper's template set, in a stable order.
    pub fn all() -> [Dataflow; 3] {
        [
            Dataflow::Shidiannao,
            Dataflow::Nvdla,
            Dataflow::RowStationary,
        ]
    }

    /// The abbreviation used in the paper's tables (`shi`, `dla`, `rs`).
    pub fn abbreviation(&self) -> &'static str {
        match self {
            Dataflow::Shidiannao => "shi",
            Dataflow::Nvdla => "dla",
            Dataflow::RowStationary => "rs",
        }
    }

    /// Stable index of the template inside [`Dataflow::all`] (used to
    /// encode dataflow choices as controller actions).
    pub fn index(&self) -> usize {
        match self {
            Dataflow::Shidiannao => 0,
            Dataflow::Nvdla => 1,
            Dataflow::RowStationary => 2,
        }
    }

    /// Inverse of [`Dataflow::index`].
    pub fn from_index(index: usize) -> Option<Dataflow> {
        Dataflow::all().get(index).copied()
    }

    /// Relative weight-buffer pressure of the dataflow (used by the area
    /// model): row-stationary keeps the most state per PE, Shidiannao the
    /// least.
    pub fn buffer_pressure(&self) -> f64 {
        match self {
            Dataflow::Shidiannao => 1.0,
            Dataflow::Nvdla => 1.25,
            Dataflow::RowStationary => 1.6,
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbreviation())
    }
}

/// Error returned when parsing an unknown dataflow abbreviation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDataflowError {
    /// The string that failed to parse.
    pub input: String,
}

impl fmt::Display for ParseDataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown dataflow '{}' (expected one of: shi, dla, rs, shidiannao, nvdla, row-stationary)",
            self.input
        )
    }
}

impl std::error::Error for ParseDataflowError {}

impl FromStr for Dataflow {
    type Err = ParseDataflowError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "shi" | "shidiannao" => Ok(Dataflow::Shidiannao),
            "dla" | "nvdla" => Ok(Dataflow::Nvdla),
            "rs" | "row-stationary" | "rowstationary" | "eyeriss" => Ok(Dataflow::RowStationary),
            _ => Err(ParseDataflowError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_three_templates() {
        assert_eq!(Dataflow::all().len(), 3);
    }

    #[test]
    fn abbreviations_match_paper_tables() {
        assert_eq!(Dataflow::Shidiannao.abbreviation(), "shi");
        assert_eq!(Dataflow::Nvdla.abbreviation(), "dla");
        assert_eq!(Dataflow::RowStationary.abbreviation(), "rs");
    }

    #[test]
    fn index_round_trip() {
        for df in Dataflow::all() {
            assert_eq!(Dataflow::from_index(df.index()), Some(df));
        }
        assert_eq!(Dataflow::from_index(3), None);
    }

    #[test]
    fn parsing_accepts_full_names_and_abbreviations() {
        assert_eq!("dla".parse::<Dataflow>().unwrap(), Dataflow::Nvdla);
        assert_eq!(
            "Shidiannao".parse::<Dataflow>().unwrap(),
            Dataflow::Shidiannao
        );
        assert_eq!(
            "eyeriss".parse::<Dataflow>().unwrap(),
            Dataflow::RowStationary
        );
        let err = "tpu".parse::<Dataflow>().unwrap_err();
        assert!(err.to_string().contains("tpu"));
    }

    #[test]
    fn buffer_pressure_ordering() {
        assert!(Dataflow::RowStationary.buffer_pressure() > Dataflow::Nvdla.buffer_pressure());
        assert!(Dataflow::Nvdla.buffer_pressure() > Dataflow::Shidiannao.buffer_pressure());
    }

    #[test]
    fn display_uses_abbreviation() {
        assert_eq!(Dataflow::Nvdla.to_string(), "dla");
    }
}
