//! A single sub-accelerator: one dataflow template instantiated with
//! hardware resources.

use crate::dataflow::Dataflow;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One sub-accelerator `aic_i = <df_i, pe_i, bw_i>` of the paper.
///
/// A sub-accelerator with zero PEs is *inactive*: the design degenerates to
/// fewer sub-accelerators (the paper uses this to express single-accelerator
/// designs inside the same framework).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubAccelerator {
    /// Dataflow template of this sub-accelerator.
    pub dataflow: Dataflow,
    /// Number of processing elements allocated.
    pub num_pes: usize,
    /// NoC bandwidth allocated, in GB/s.
    pub bandwidth_gbps: usize,
}

impl SubAccelerator {
    /// Create a sub-accelerator.
    pub fn new(dataflow: Dataflow, num_pes: usize, bandwidth_gbps: usize) -> Self {
        Self {
            dataflow,
            num_pes,
            bandwidth_gbps,
        }
    }

    /// An inactive sub-accelerator (zero PEs, zero bandwidth).
    pub fn inactive(dataflow: Dataflow) -> Self {
        Self::new(dataflow, 0, 0)
    }

    /// `true` when the sub-accelerator can execute work (has PEs and
    /// bandwidth).
    pub fn is_active(&self) -> bool {
        self.num_pes > 0 && self.bandwidth_gbps > 0
    }

    /// The paper's angle-bracket notation, e.g. `<dla, 576, 56>`.
    pub fn paper_notation(&self) -> String {
        format!(
            "<{}, {}, {}>",
            self.dataflow.abbreviation(),
            self.num_pes,
            self.bandwidth_gbps
        )
    }
}

impl fmt::Display for SubAccelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.paper_notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_notation_matches_table_format() {
        let s = SubAccelerator::new(Dataflow::Nvdla, 576, 56);
        assert_eq!(s.paper_notation(), "<dla, 576, 56>");
        assert_eq!(s.to_string(), "<dla, 576, 56>");
    }

    #[test]
    fn activity_requires_both_pes_and_bandwidth() {
        assert!(SubAccelerator::new(Dataflow::Shidiannao, 64, 8).is_active());
        assert!(!SubAccelerator::new(Dataflow::Shidiannao, 0, 8).is_active());
        assert!(!SubAccelerator::new(Dataflow::Shidiannao, 64, 0).is_active());
        assert!(!SubAccelerator::inactive(Dataflow::Nvdla).is_active());
    }
}
