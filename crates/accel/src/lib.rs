//! ASIC accelerator templates and the hardware design space for the NASAIC
//! reproduction.
//!
//! The paper's accelerator layer (Section III ➋) narrows the enormous ASIC
//! design space down to a **template set**: each template is one of the
//! dataflow styles of an existing, successful accelerator design
//! (Shidiannao, NVDLA, Eyeriss row-stationary).  A heterogeneous
//! accelerator is then a set of *sub-accelerators*, each one a template
//! instantiated with a PE count and a share of the NoC bandwidth, connected
//! through network interface controllers (NICs) to a global interconnect
//! and a shared global buffer.
//!
//! This crate provides:
//!
//! * [`dataflow`] — the [`Dataflow`] template set;
//! * [`subaccel`] — a single [`SubAccelerator`]
//!   (dataflow, PEs, bandwidth);
//! * [`accelerator`] — the heterogeneous
//!   [`Accelerator`] built from sub-accelerators;
//! * [`budget`] — the resource budget (max PEs, max bandwidth) and the
//!   proportional resource-allocator that fits a proposal to the budget;
//! * [`space`] — the hardware allocation search space the controller
//!   samples from.
//!
//! # Example
//!
//! ```
//! use nasaic_accel::{Accelerator, Dataflow, ResourceBudget, SubAccelerator};
//!
//! // The NASAIC W1 design from Table I: <dla, 576, 56> + <shi, 1792, 8>.
//! let accelerator = Accelerator::new(vec![
//!     SubAccelerator::new(Dataflow::Nvdla, 576, 56),
//!     SubAccelerator::new(Dataflow::Shidiannao, 1792, 8),
//! ]);
//! assert!(accelerator.is_within(&ResourceBudget::paper()));
//! assert!(accelerator.is_heterogeneous());
//! ```

#![deny(missing_docs)]

pub mod accelerator;
pub mod budget;
pub mod dataflow;
pub mod space;
pub mod subaccel;

pub use accelerator::Accelerator;
pub use budget::ResourceBudget;
pub use dataflow::Dataflow;
pub use space::HardwareSpace;
pub use subaccel::SubAccelerator;
