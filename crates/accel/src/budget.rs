//! Resource budgets and the proportional resource allocator.
//!
//! The synthesis layer of the paper (Section III ➌) allocates the global
//! PE and bandwidth budget across the sub-accelerators.  The controller
//! proposes raw per-sub-accelerator allocations; [`ResourceBudget::fit`]
//! is the "Resource Allocator" box of Fig. 2 that scales a proposal so the
//! hard constraints `sum(pe_i) <= NP` and `sum(bw_i) <= BW` always hold,
//! quantised to the granularity seen in the paper's tables (PE counts in
//! multiples of 32, bandwidth in multiples of 8 GB/s).

use crate::accelerator::Accelerator;
use crate::subaccel::SubAccelerator;
use serde::{Deserialize, Serialize};
use std::fmt;

/// PE allocation granularity used when fitting proposals to the budget.
pub const PE_QUANTUM: usize = 32;
/// Bandwidth allocation granularity (GB/s).
pub const BW_QUANTUM: usize = 8;

/// The global hardware resource budget shared by all sub-accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Maximum total number of PEs (`NP`).
    pub max_pes: usize,
    /// Maximum total NoC bandwidth in GB/s (`BW`).
    pub max_bandwidth_gbps: usize,
}

impl ResourceBudget {
    /// Create a budget.
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    pub fn new(max_pes: usize, max_bandwidth_gbps: usize) -> Self {
        assert!(max_pes > 0, "budget must allow at least one PE");
        assert!(max_bandwidth_gbps > 0, "budget must allow some bandwidth");
        Self {
            max_pes,
            max_bandwidth_gbps,
        }
    }

    /// The paper's budget: 4096 PEs and 64 GB/s (following HERALD \[22\]).
    pub fn paper() -> Self {
        Self::new(4096, 64)
    }

    /// A budget scaled by a factor (used by the single / homogeneous
    /// accelerator studies of Table II, which halve constraints).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        Self::new(
            ((self.max_pes as f64 * factor) as usize).max(PE_QUANTUM),
            ((self.max_bandwidth_gbps as f64 * factor) as usize).max(BW_QUANTUM),
        )
    }

    /// `true` when the accelerator respects both limits.
    pub fn admits(&self, accelerator: &Accelerator) -> bool {
        accelerator.total_pes() <= self.max_pes
            && accelerator.total_bandwidth_gbps() <= self.max_bandwidth_gbps
    }

    /// Fit a raw proposal to the budget (the paper's resource allocator).
    ///
    /// If the proposal already satisfies both constraints it is only
    /// quantised; otherwise each resource is scaled down proportionally so
    /// the totals land inside the budget, then quantised to
    /// [`PE_QUANTUM`] / [`BW_QUANTUM`].  Sub-accelerators that end up with
    /// zero PEs also lose their bandwidth (they are inactive).
    pub fn fit(&self, proposal: &[SubAccelerator]) -> Accelerator {
        let total_pes: usize = proposal.iter().map(|s| s.num_pes).sum();
        let total_bw: usize = proposal.iter().map(|s| s.bandwidth_gbps).sum();
        let pe_scale = if total_pes > self.max_pes {
            self.max_pes as f64 / total_pes as f64
        } else {
            1.0
        };
        let bw_scale = if total_bw > self.max_bandwidth_gbps {
            self.max_bandwidth_gbps as f64 / total_bw as f64
        } else {
            1.0
        };
        let subs: Vec<SubAccelerator> = proposal
            .iter()
            .map(|s| {
                let pes = quantize_down((s.num_pes as f64 * pe_scale) as usize, PE_QUANTUM);
                let mut bw =
                    quantize_down((s.bandwidth_gbps as f64 * bw_scale) as usize, BW_QUANTUM);
                if pes == 0 {
                    bw = 0;
                }
                SubAccelerator::new(s.dataflow, pes, bw)
            })
            .collect();
        Accelerator::new(subs)
    }
}

impl Default for ResourceBudget {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for ResourceBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget(max {} PEs, {} GB/s)",
            self.max_pes, self.max_bandwidth_gbps
        )
    }
}

fn quantize_down(value: usize, quantum: usize) -> usize {
    (value / quantum) * quantum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Dataflow;

    #[test]
    fn paper_budget_values() {
        let b = ResourceBudget::paper();
        assert_eq!(b.max_pes, 4096);
        assert_eq!(b.max_bandwidth_gbps, 64);
        assert_eq!(ResourceBudget::default(), b);
    }

    #[test]
    fn admits_checks_both_limits() {
        let b = ResourceBudget::paper();
        let ok = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2112, 48),
            SubAccelerator::new(Dataflow::Shidiannao, 1984, 16),
        ]);
        assert!(b.admits(&ok));
        let too_many_pes = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 4000, 8),
            SubAccelerator::new(Dataflow::Shidiannao, 1000, 8),
        ]);
        assert!(!b.admits(&too_many_pes));
        let too_much_bw = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 64, 60),
            SubAccelerator::new(Dataflow::Shidiannao, 64, 60),
        ]);
        assert!(!b.admits(&too_much_bw));
    }

    #[test]
    fn fit_preserves_feasible_proposals_up_to_quantisation() {
        let b = ResourceBudget::paper();
        let proposal = vec![
            SubAccelerator::new(Dataflow::Nvdla, 576, 56),
            SubAccelerator::new(Dataflow::Shidiannao, 1792, 8),
        ];
        let fitted = b.fit(&proposal);
        assert_eq!(fitted.sub_accelerators()[0].num_pes, 576);
        assert_eq!(fitted.sub_accelerators()[1].bandwidth_gbps, 8);
        assert!(b.admits(&fitted));
    }

    #[test]
    fn fit_scales_down_infeasible_proposals() {
        let b = ResourceBudget::paper();
        let proposal = vec![
            SubAccelerator::new(Dataflow::Nvdla, 4096, 64),
            SubAccelerator::new(Dataflow::Shidiannao, 4096, 64),
        ];
        let fitted = b.fit(&proposal);
        assert!(b.admits(&fitted));
        assert!(fitted.total_pes() <= 4096);
        assert!(fitted.total_bandwidth_gbps() <= 64);
        // The split stays roughly proportional (equal here).
        assert_eq!(
            fitted.sub_accelerators()[0].num_pes,
            fitted.sub_accelerators()[1].num_pes
        );
    }

    #[test]
    fn fit_quantises_to_table_granularity() {
        let b = ResourceBudget::paper();
        let fitted = b.fit(&[SubAccelerator::new(Dataflow::RowStationary, 1000, 13)]);
        assert_eq!(fitted.sub_accelerators()[0].num_pes % PE_QUANTUM, 0);
        assert_eq!(fitted.sub_accelerators()[0].bandwidth_gbps % BW_QUANTUM, 0);
    }

    #[test]
    fn fit_deactivates_zero_pe_subs() {
        let b = ResourceBudget::paper();
        let fitted = b.fit(&[
            SubAccelerator::new(Dataflow::Nvdla, 10, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 4096, 32),
        ]);
        assert_eq!(fitted.sub_accelerators()[0].num_pes, 0);
        assert_eq!(fitted.sub_accelerators()[0].bandwidth_gbps, 0);
        assert!(!fitted.sub_accelerators()[0].is_active());
    }

    #[test]
    fn scaled_budget_halves_limits() {
        let half = ResourceBudget::paper().scaled(0.5);
        assert_eq!(half.max_pes, 2048);
        assert_eq!(half.max_bandwidth_gbps, 32);
    }

    #[test]
    #[should_panic]
    fn zero_budget_rejected() {
        ResourceBudget::new(0, 64);
    }
}
