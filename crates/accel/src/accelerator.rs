//! The heterogeneous accelerator: a set of sub-accelerators connected
//! through NICs to a global interconnect and a shared global buffer.

use crate::dataflow::Dataflow;
use crate::subaccel::SubAccelerator;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A (possibly heterogeneous) ASIC accelerator `AIC = <aic_1, ..., aic_k>`.
///
/// The classification used by the paper's Table II:
///
/// * one active sub-accelerator → *single* accelerator;
/// * several active sub-accelerators with identical configuration →
///   *homogeneous*;
/// * several active sub-accelerators with differing dataflows or resources
///   → *heterogeneous*.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Accelerator {
    subs: Vec<SubAccelerator>,
}

impl Accelerator {
    /// Create an accelerator from its sub-accelerators.
    ///
    /// # Panics
    ///
    /// Panics if `subs` is empty.
    pub fn new(subs: Vec<SubAccelerator>) -> Self {
        assert!(
            !subs.is_empty(),
            "accelerator needs at least one sub-accelerator"
        );
        Self { subs }
    }

    /// A single-sub-accelerator design.
    pub fn single(sub: SubAccelerator) -> Self {
        Self::new(vec![sub])
    }

    /// A homogeneous design: `count` copies of the same sub-accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn homogeneous(sub: SubAccelerator, count: usize) -> Self {
        assert!(count > 0, "homogeneous accelerator needs at least one copy");
        Self::new(vec![sub; count])
    }

    /// All sub-accelerators (including inactive ones).
    pub fn sub_accelerators(&self) -> &[SubAccelerator] {
        &self.subs
    }

    /// Only the active sub-accelerators.
    pub fn active_subs(&self) -> Vec<&SubAccelerator> {
        self.subs.iter().filter(|s| s.is_active()).collect()
    }

    /// Number of active sub-accelerators.
    pub fn num_active(&self) -> usize {
        self.subs.iter().filter(|s| s.is_active()).count()
    }

    /// Total PEs over all sub-accelerators.
    pub fn total_pes(&self) -> usize {
        self.subs.iter().map(|s| s.num_pes).sum()
    }

    /// Total NoC bandwidth over all sub-accelerators (GB/s).
    pub fn total_bandwidth_gbps(&self) -> usize {
        self.subs.iter().map(|s| s.bandwidth_gbps).sum()
    }

    /// `true` when at least one sub-accelerator can execute work.
    pub fn has_capacity(&self) -> bool {
        self.num_active() > 0
    }

    /// `true` when the active sub-accelerators use more than one distinct
    /// configuration (dataflow or resources).
    pub fn is_heterogeneous(&self) -> bool {
        let active = self.active_subs();
        if active.len() < 2 {
            return false;
        }
        let first = active[0];
        active.iter().any(|s| *s != first)
    }

    /// `true` when at least two active sub-accelerators exist and all share
    /// the same configuration.
    pub fn is_homogeneous(&self) -> bool {
        let active = self.active_subs();
        active.len() >= 2 && !self.is_heterogeneous()
    }

    /// `true` when exactly one sub-accelerator is active.
    pub fn is_single(&self) -> bool {
        self.num_active() == 1
    }

    /// `true` when the accelerator fits inside a resource budget
    /// (convenience mirror of [`crate::ResourceBudget::admits`]).
    pub fn is_within(&self, budget: &crate::ResourceBudget) -> bool {
        budget.admits(self)
    }

    /// The distinct dataflows used by active sub-accelerators.
    pub fn dataflows_in_use(&self) -> Vec<Dataflow> {
        let mut seen = Vec::new();
        for s in self.active_subs() {
            if !seen.contains(&s.dataflow) {
                seen.push(s.dataflow);
            }
        }
        seen
    }

    /// The paper's notation: one `<df, pe, bw>` triple per active
    /// sub-accelerator, separated by ` + `.
    pub fn paper_notation(&self) -> String {
        let parts: Vec<String> = self
            .active_subs()
            .iter()
            .map(|s| s.paper_notation())
            .collect();
        if parts.is_empty() {
            "<empty>".to_string()
        } else {
            parts.join(" + ")
        }
    }
}

impl fmt::Display for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.paper_notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dla(pes: usize, bw: usize) -> SubAccelerator {
        SubAccelerator::new(Dataflow::Nvdla, pes, bw)
    }

    fn shi(pes: usize, bw: usize) -> SubAccelerator {
        SubAccelerator::new(Dataflow::Shidiannao, pes, bw)
    }

    #[test]
    fn totals_sum_over_subs() {
        let acc = Accelerator::new(vec![dla(2112, 48), shi(1984, 16)]);
        assert_eq!(acc.total_pes(), 4096);
        assert_eq!(acc.total_bandwidth_gbps(), 64);
        assert_eq!(acc.num_active(), 2);
    }

    #[test]
    fn heterogeneity_classification() {
        let hetero = Accelerator::new(vec![dla(1760, 56), shi(1152, 8)]);
        assert!(hetero.is_heterogeneous());
        assert!(!hetero.is_homogeneous());
        assert!(!hetero.is_single());

        let homo = Accelerator::homogeneous(dla(1408, 32), 2);
        assert!(homo.is_homogeneous());
        assert!(!homo.is_heterogeneous());

        let single = Accelerator::single(dla(3104, 24));
        assert!(single.is_single());
        assert!(!single.is_heterogeneous());
        assert!(!single.is_homogeneous());
    }

    #[test]
    fn same_dataflow_different_resources_is_heterogeneous() {
        let acc = Accelerator::new(vec![dla(2048, 32), dla(1024, 16)]);
        assert!(acc.is_heterogeneous());
        assert_eq!(acc.dataflows_in_use(), vec![Dataflow::Nvdla]);
    }

    #[test]
    fn inactive_subs_do_not_count() {
        let acc = Accelerator::new(vec![
            dla(2048, 32),
            SubAccelerator::inactive(Dataflow::Shidiannao),
        ]);
        assert!(acc.is_single());
        assert!(acc.has_capacity());
        assert_eq!(acc.active_subs().len(), 1);
    }

    #[test]
    fn all_inactive_means_no_capacity() {
        let acc = Accelerator::new(vec![
            SubAccelerator::inactive(Dataflow::Nvdla),
            SubAccelerator::inactive(Dataflow::Shidiannao),
        ]);
        assert!(!acc.has_capacity());
        assert_eq!(acc.paper_notation(), "<empty>");
    }

    #[test]
    fn paper_notation_joins_subs() {
        let acc = Accelerator::new(vec![dla(576, 56), shi(1792, 8)]);
        assert_eq!(acc.paper_notation(), "<dla, 576, 56> + <shi, 1792, 8>");
        assert_eq!(acc.to_string(), acc.paper_notation());
    }

    #[test]
    #[should_panic]
    fn empty_accelerator_rejected() {
        Accelerator::new(vec![]);
    }
}
