//! REINFORCE training glue: baseline, discounting and learning-rate
//! schedule.
//!
//! The paper updates the controller with the Monte-Carlo policy gradient of
//! Eq. 1: rewards are discounted by `gamma` per step, the baseline `b` is
//! the exponential moving average of past rewards, and the optimizer is
//! RMSProp with an initial learning rate of 0.99 decayed by 0.5 every 50
//! steps.

use crate::policy::{PolicyNetwork, UpdateConfig};
use nasaic_tensor::optim::StepDecay;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the REINFORCE trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReinforceConfig {
    /// Reward discount per step (`gamma` in Eq. 1).
    pub gamma: f64,
    /// Smoothing factor of the exponential-moving-average baseline.
    pub baseline_momentum: f64,
    /// Initial learning rate (the paper uses 0.99 — large because RMSProp
    /// normalises the gradient magnitude).
    pub initial_learning_rate: f64,
    /// Multiplicative decay applied to the learning rate every
    /// `decay_period` updates.
    pub learning_rate_decay: f64,
    /// Number of updates between learning-rate decays.
    pub decay_period: u64,
    /// Entropy-bonus coefficient.
    pub entropy_beta: f64,
    /// Mean per-step policy entropy (nats) below which the entropy bonus
    /// is scaled up.  RMSProp's normalised steps can drive the softmax
    /// heads to near-determinism within a handful of strongly penalised
    /// episodes — before the search has seen a single feasible design —
    /// after which every episode replays the same stuck trajectory.  When
    /// the replayed trajectory's mean entropy drops below this floor, the
    /// effective entropy coefficient grows as `beta * floor / entropy`,
    /// which reopens exploration instead of letting the policy collapse.
    /// Set to `0.0` to disable the guard (the literal paper behaviour).
    pub entropy_floor: f64,
    /// Element-wise gradient clip.
    pub gradient_clip: f64,
    /// Clip applied to the advantage `(R - b)` before the policy-gradient
    /// update.  Large spec violations produce rewards tens of units below
    /// the baseline; clipping keeps those episodes from destroying the
    /// policy while preserving the update's direction.
    pub advantage_clip: f64,
}

impl ReinforceConfig {
    /// The paper's controller-training configuration.
    pub fn paper() -> Self {
        Self {
            gamma: 0.99,
            baseline_momentum: 0.9,
            initial_learning_rate: 0.99,
            learning_rate_decay: 0.5,
            decay_period: 50,
            entropy_beta: 0.01,
            entropy_floor: 0.0,
            gradient_clip: 5.0,
            advantage_clip: 2.0,
        }
    }
}

impl ReinforceConfig {
    /// A numerically tamer configuration used as the library default.
    ///
    /// The paper quotes an initial RMSProp learning rate of 0.99, which in
    /// practice makes near-unit-size parameter steps and can oscillate on
    /// small policies; this configuration keeps the same structure (EMA
    /// baseline, step decay, entropy bonus) with a smaller step size, a
    /// stronger entropy bonus and the entropy-floor guard, and is what
    /// [`crate::ControllerConfig::default`] uses.  Without the guard, a
    /// run whose first episodes are all spec-infeasible can collapse to a
    /// deterministic penalised trajectory and stay there for the whole
    /// search.  The literal paper settings remain available through
    /// [`ReinforceConfig::paper`].
    pub fn stable() -> Self {
        Self {
            initial_learning_rate: 0.05,
            decay_period: 200,
            entropy_beta: 0.2,
            entropy_floor: 0.35,
            ..Self::paper()
        }
    }
}

impl Default for ReinforceConfig {
    fn default() -> Self {
        Self::stable()
    }
}

/// Stateful REINFORCE trainer wrapping a [`PolicyNetwork`].
#[derive(Debug, Clone)]
pub struct ReinforceTrainer {
    config: ReinforceConfig,
    schedule: StepDecay,
    baseline: Option<f64>,
    updates: u64,
    reward_history: Vec<f64>,
}

impl ReinforceTrainer {
    /// Create a trainer with an explicit configuration.
    pub fn new(config: ReinforceConfig) -> Self {
        let schedule = StepDecay::new(
            config.initial_learning_rate,
            config.learning_rate_decay,
            config.decay_period,
        );
        Self {
            config,
            schedule,
            baseline: None,
            updates: 0,
            reward_history: Vec::new(),
        }
    }

    /// Trainer with the paper's settings.
    pub fn paper() -> Self {
        Self::new(ReinforceConfig::paper())
    }

    /// Number of updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current baseline value (exponential moving average of rewards), or
    /// `None` before the first update.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// Rewards observed so far (for convergence diagnostics / plots).
    pub fn reward_history(&self) -> &[f64] {
        &self.reward_history
    }

    /// Discounted advantage for a reward observed now: the paper discounts
    /// by `gamma^(T - t)`; applied to the scalar terminal reward this is a
    /// constant factor `gamma^0 = 1` for the final step, so the discount
    /// effectively scales how strongly earlier decisions are reinforced.
    /// We apply the mean discount over the trajectory length.
    fn advantage(&self, reward: f64, trajectory_len: usize) -> f64 {
        let baseline = self.baseline.unwrap_or(reward);
        let mean_discount = if trajectory_len == 0 {
            1.0
        } else {
            (0..trajectory_len)
                .map(|t| self.config.gamma.powi((trajectory_len - 1 - t) as i32))
                .sum::<f64>()
                / trajectory_len as f64
        };
        (reward - baseline) * mean_discount
    }

    /// Restore baseline/counters from a snapshot (the schedule and config
    /// are reconstructed from [`ReinforceConfig`], not carried).
    pub(crate) fn restore_trainer_state(&mut self, state: &crate::state::TrainerState) {
        self.baseline = state.baseline;
        self.updates = state.updates;
        self.reward_history = state.reward_history.clone();
    }

    /// Apply one REINFORCE update for a sampled trajectory and its terminal
    /// reward.  Returns the advantage that was used.
    pub fn update(&mut self, policy: &mut PolicyNetwork, actions: &[usize], reward: f64) -> f64 {
        let advantage = self
            .advantage(reward, actions.len())
            .clamp(-self.config.advantage_clip, self.config.advantage_clip);
        let learning_rate = self.schedule.learning_rate_at(self.updates);
        let update_config = UpdateConfig {
            learning_rate,
            entropy_beta: self.config.entropy_beta,
            // Anti-collapse guard, applied by the policy inside its own
            // replay (see `PolicyNetwork::reinforce_update`).
            entropy_floor: self.config.entropy_floor,
            gradient_clip: self.config.gradient_clip,
        };
        policy.reinforce_update(actions, advantage, &update_config);
        // Update the baseline after computing the advantage (so the very
        // first sample gets a zero advantage rather than a huge one).
        self.baseline = Some(match self.baseline {
            None => reward,
            Some(b) => {
                self.config.baseline_momentum * b + (1.0 - self.config.baseline_momentum) * reward
            }
        });
        self.updates += 1;
        self.reward_history.push(reward);
        advantage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn baseline_tracks_reward_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = PolicyNetwork::new(&mut rng, vec![2, 2], 8);
        let mut trainer = ReinforceTrainer::paper();
        assert_eq!(trainer.baseline(), None);
        for _ in 0..50 {
            let sample = policy.sample_episode(&mut rng, 1.0);
            trainer.update(&mut policy, &sample.actions, 0.8);
        }
        let baseline = trainer.baseline().unwrap();
        assert!((baseline - 0.8).abs() < 0.05, "baseline {baseline}");
        assert_eq!(trainer.updates(), 50);
        assert_eq!(trainer.reward_history().len(), 50);
    }

    #[test]
    fn first_update_has_zero_advantage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = PolicyNetwork::new(&mut rng, vec![3], 8);
        let mut trainer = ReinforceTrainer::paper();
        let sample = policy.sample_episode(&mut rng, 1.0);
        let advantage = trainer.update(&mut policy, &sample.actions, 0.5);
        assert_eq!(advantage, 0.0);
    }

    #[test]
    fn better_than_baseline_rewards_give_positive_advantage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut policy = PolicyNetwork::new(&mut rng, vec![3, 3], 8);
        let mut trainer = ReinforceTrainer::paper();
        // Establish a baseline around 0.5.
        for _ in 0..20 {
            let s = policy.sample_episode(&mut rng, 1.0);
            trainer.update(&mut policy, &s.actions, 0.5);
        }
        let s = policy.sample_episode(&mut rng, 1.0);
        let advantage = trainer.update(&mut policy, &s.actions, 0.9);
        assert!(advantage > 0.0);
        let s = policy.sample_episode(&mut rng, 1.0);
        let advantage = trainer.update(&mut policy, &s.actions, 0.1);
        assert!(advantage < 0.0);
    }

    #[test]
    fn trainer_improves_expected_reward_on_a_bandit() {
        // Reward = 1 when the first action is option 2, else 0.2.
        let mut rng = StdRng::seed_from_u64(4);
        let mut policy = PolicyNetwork::new(&mut rng, vec![4, 3], 12);
        let mut trainer = ReinforceTrainer::new(ReinforceConfig {
            entropy_beta: 0.005,
            ..ReinforceConfig::paper()
        });
        let reward_of = |actions: &[usize]| if actions[0] == 2 { 1.0 } else { 0.2 };
        for _ in 0..300 {
            let s = policy.sample_episode(&mut rng, 1.0);
            let r = reward_of(&s.actions);
            trainer.update(&mut policy, &s.actions, r);
        }
        let greedy = policy.greedy_episode();
        assert_eq!(greedy[0], 2, "policy failed to find the rewarding arm");
        // The late reward history should be dominated by the good arm.
        let tail: Vec<f64> = trainer
            .reward_history()
            .iter()
            .rev()
            .take(50)
            .cloned()
            .collect();
        let mean_tail = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(mean_tail > 0.7, "late mean reward {mean_tail}");
    }

    #[test]
    fn learning_rate_decays_with_updates() {
        let config = ReinforceConfig::paper();
        let trainer = ReinforceTrainer::new(config);
        assert!((trainer.schedule.learning_rate_at(0) - 0.99).abs() < 1e-12);
        assert!((trainer.schedule.learning_rate_at(100) - 0.2475).abs() < 1e-12);
    }
}
