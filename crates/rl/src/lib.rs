//! Reinforcement-learning machinery for the NASAIC controller.
//!
//! The paper's co-exploration controller (Section IV ①, Fig. 5) is a
//! recurrent policy network with one *segment* per DNN and one per
//! sub-accelerator; each segment emits a sequence of discrete decisions
//! (hyperparameters or hardware allocation parameters).  The controller is
//! trained with the Monte-Carlo policy gradient (REINFORCE, Williams 1992)
//! of Eq. 1, with an exponential-moving-average baseline, reward
//! discounting and RMSProp updates.
//!
//! This crate implements that machinery from scratch on top of
//! `nasaic-tensor`:
//!
//! * [`rnn`] — a recurrent cell (Elman RNN with tanh non-linearity) with
//!   manual backpropagation-through-time;
//! * [`policy`] — the recurrent policy network: shared recurrent core plus
//!   one softmax head per decision step, with episode sampling and
//!   REINFORCE gradients (validated by finite-difference tests);
//! * [`reinforce`] — the training loop glue: advantage computation with an
//!   EMA baseline, reward discounting, learning-rate schedule;
//! * [`controller`] — the multi-segment NASAIC controller that maps
//!   decision segments (per-task architecture choices, per-sub-accelerator
//!   hardware choices) onto the flat policy network.
//!
//! # Example
//!
//! ```
//! use nasaic_rl::{Controller, ControllerConfig, Segment};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Two segments: a 3-decision architecture segment and a 2-decision
//! // hardware segment.
//! let segments = vec![
//!     Segment::new("dnn0", vec![4, 3, 4]),
//!     Segment::new("aic0", vec![3, 17]),
//! ];
//! let mut controller = Controller::new(segments, ControllerConfig::default(), 7);
//! let mut rng = StdRng::seed_from_u64(1);
//! let sample = controller.sample(&mut rng);
//! assert_eq!(sample.segments.len(), 2);
//! controller.feedback(&sample, 0.9);
//! ```

#![deny(missing_docs)]

pub mod controller;
pub mod policy;
pub mod reinforce;
pub mod rnn;
pub mod state;

pub use controller::{Controller, ControllerConfig, ControllerSample, Segment};
pub use policy::{EpisodeSample, PolicyNetwork};
pub use reinforce::ReinforceTrainer;
pub use rnn::RnnCell;
pub use state::{ControllerState, PolicyState, TrainerState};
