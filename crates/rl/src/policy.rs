//! The recurrent policy network: a shared recurrent core with one softmax
//! head per decision step, plus REINFORCE gradients computed by manual
//! backpropagation-through-time.

use crate::rnn::{RnnCell, RnnGradients, RnnStepCache};
use nasaic_tensor::activation::{entropy, softmax};
use nasaic_tensor::{init, Matrix, Optimizer, RmsProp};
use rand::Rng;

/// One sampled episode: the chosen action index for every decision step and
/// the log-probability of the whole trajectory under the sampling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeSample {
    /// Chosen option index per decision step.
    pub actions: Vec<usize>,
    /// `sum_t log pi(a_t | a_{t-1..1})`.
    pub log_prob: f64,
    /// Mean per-step entropy of the sampling distributions (exploration
    /// diagnostic).
    pub mean_entropy: f64,
}

/// Parameter gradients of the policy network.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyGradients {
    cell: RnnGradients,
    heads: Vec<(Matrix, Matrix)>,
}

/// Hyperparameters of one REINFORCE update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateConfig {
    /// Learning rate for this update.
    pub learning_rate: f64,
    /// Entropy-bonus coefficient (0 disables the bonus).
    pub entropy_beta: f64,
    /// Mean per-step entropy (nats) below which `entropy_beta` is scaled
    /// up by `floor / entropy` — the anti-collapse guard (0 disables it).
    pub entropy_floor: f64,
    /// Gradient clipping threshold (absolute value per element).
    pub gradient_clip: f64,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            entropy_beta: 0.01,
            entropy_floor: 0.0,
            gradient_clip: 5.0,
        }
    }
}

/// The recurrent policy network of the NASAIC controller.
///
/// The network emits `T` decisions; decision `t` has
/// `cardinalities[t]` options.  The input of step `t` is a one-hot encoding
/// of the previous step's chosen option (a dedicated start token for step
/// 0), exactly the autoregressive scheme of NAS controllers.
#[derive(Debug, Clone)]
pub struct PolicyNetwork {
    cell: RnnCell,
    heads: Vec<(Matrix, Matrix)>,
    cardinalities: Vec<usize>,
    input_size: usize,
    // Per-parameter RMSProp state (the paper trains the controller with
    // RMSProp).
    opt_w_x: RmsProp,
    opt_w_h: RmsProp,
    opt_b: RmsProp,
    opt_heads: Vec<(RmsProp, RmsProp)>,
}

impl PolicyNetwork {
    /// Create a policy network for the given per-step option counts.
    ///
    /// # Panics
    ///
    /// Panics if `cardinalities` is empty or contains a zero, or
    /// `hidden_size` is zero.
    pub fn new<R: Rng>(rng: &mut R, cardinalities: Vec<usize>, hidden_size: usize) -> Self {
        assert!(
            !cardinalities.is_empty(),
            "policy needs at least one decision"
        );
        assert!(
            cardinalities.iter().all(|&c| c > 0),
            "every decision needs at least one option"
        );
        assert!(hidden_size > 0, "hidden size must be positive");
        let max_card = *cardinalities.iter().max().expect("non-empty");
        let input_size = max_card + 1; // +1 for the start token
        let cell = RnnCell::new(rng, input_size, hidden_size);
        let heads = cardinalities
            .iter()
            .map(|&c| {
                (
                    init::xavier_uniform(rng, c, hidden_size),
                    Matrix::zeros(c, 1),
                )
            })
            .collect::<Vec<_>>();
        let opt_heads = cardinalities
            .iter()
            .map(|_| (RmsProp::new(0.05, 0.9), RmsProp::new(0.05, 0.9)))
            .collect();
        Self {
            cell,
            heads,
            cardinalities,
            input_size,
            opt_w_x: RmsProp::new(0.05, 0.9),
            opt_w_h: RmsProp::new(0.05, 0.9),
            opt_b: RmsProp::new(0.05, 0.9),
            opt_heads,
        }
    }

    /// Number of decision steps.
    pub fn num_steps(&self) -> usize {
        self.cardinalities.len()
    }

    /// Option count per decision step.
    pub fn cardinalities(&self) -> &[usize] {
        &self.cardinalities
    }

    fn input_for(&self, step: usize, previous_action: Option<usize>) -> Matrix {
        let mut x = Matrix::zeros(self.input_size, 1);
        match previous_action {
            None => x[(self.input_size - 1, 0)] = 1.0, // start token
            Some(a) => {
                debug_assert!(step > 0);
                x[(a.min(self.input_size - 2), 0)] = 1.0;
            }
        }
        x
    }

    /// Run the network forward for a fixed action trajectory, returning per
    /// step (probabilities, cache).
    fn replay(&self, actions: &[usize]) -> Vec<(Vec<f64>, RnnStepCache)> {
        assert_eq!(
            actions.len(),
            self.num_steps(),
            "trajectory length mismatch"
        );
        let mut out = Vec::with_capacity(actions.len());
        let mut h = self.cell.initial_state();
        let mut prev = None;
        for (t, &action) in actions.iter().enumerate() {
            let x = self.input_for(t, prev);
            let (h_new, cache) = self.cell.forward(&x, &h);
            let (u, c) = &self.heads[t];
            let logits = &u.matmul(&h_new) + c;
            let probabilities = softmax(logits.as_slice());
            out.push((probabilities, cache));
            h = h_new;
            prev = Some(action);
        }
        out
    }

    /// Sample an episode with a softmax temperature (1.0 = on-policy).
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not strictly positive.
    pub fn sample_episode<R: Rng>(&self, rng: &mut R, temperature: f64) -> EpisodeSample {
        assert!(temperature > 0.0, "temperature must be positive");
        let mut actions = Vec::with_capacity(self.num_steps());
        let mut log_prob = 0.0;
        let mut entropy_sum = 0.0;
        let mut h = self.cell.initial_state();
        let mut prev = None;
        for t in 0..self.num_steps() {
            let x = self.input_for(t, prev);
            let (h_new, _) = self.cell.forward(&x, &h);
            let (u, c) = &self.heads[t];
            let logits = &u.matmul(&h_new) + c;
            let scaled: Vec<f64> = logits.as_slice().iter().map(|v| v / temperature).collect();
            let probabilities = softmax(&scaled);
            let action = sample_categorical(rng, &probabilities);
            log_prob += probabilities[action].max(1e-300).ln();
            entropy_sum += entropy(&probabilities);
            actions.push(action);
            h = h_new;
            prev = Some(action);
        }
        EpisodeSample {
            actions,
            log_prob,
            mean_entropy: entropy_sum / self.num_steps() as f64,
        }
    }

    /// Greedy (argmax) trajectory of the current policy.
    pub fn greedy_episode(&self) -> Vec<usize> {
        let mut actions = Vec::with_capacity(self.num_steps());
        let mut h = self.cell.initial_state();
        let mut prev = None;
        for t in 0..self.num_steps() {
            let x = self.input_for(t, prev);
            let (h_new, _) = self.cell.forward(&x, &h);
            let (u, c) = &self.heads[t];
            let logits = &u.matmul(&h_new) + c;
            let action = logits
                .as_slice()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            actions.push(action);
            h = h_new;
            prev = Some(action);
        }
        actions
    }

    /// The REINFORCE objective for a trajectory:
    /// `advantage * sum_t log pi(a_t) + entropy_beta * sum_t H(pi_t)`.
    pub fn objective(&self, actions: &[usize], advantage: f64, entropy_beta: f64) -> f64 {
        let steps = self.replay(actions);
        let mut value = 0.0;
        for ((probabilities, _), &action) in steps.iter().zip(actions) {
            value += advantage * probabilities[action].max(1e-300).ln();
            value += entropy_beta * entropy(probabilities);
        }
        value
    }

    /// Gradients of the REINFORCE objective (for *ascent*).
    pub fn compute_gradients(
        &self,
        actions: &[usize],
        advantage: f64,
        entropy_beta: f64,
    ) -> PolicyGradients {
        let steps = self.replay(actions);
        self.gradients_from_steps(&steps, actions, advantage, entropy_beta)
    }

    /// Backward sweep over an already-replayed trajectory (shared by
    /// [`compute_gradients`](Self::compute_gradients) and
    /// [`reinforce_update`](Self::reinforce_update), which also needs the
    /// replayed probabilities for the entropy-floor guard).
    fn gradients_from_steps(
        &self,
        steps: &[(Vec<f64>, RnnStepCache)],
        actions: &[usize],
        advantage: f64,
        entropy_beta: f64,
    ) -> PolicyGradients {
        let mut cell_grads = self.cell.zero_gradients();
        let mut head_grads: Vec<(Matrix, Matrix)> = self
            .heads
            .iter()
            .map(|(u, c)| {
                (
                    Matrix::zeros(u.rows(), u.cols()),
                    Matrix::zeros(c.rows(), c.cols()),
                )
            })
            .collect();

        // Backward sweep over time.
        let mut dh_next = Matrix::zeros(self.cell.hidden_size(), 1);
        for t in (0..actions.len()).rev() {
            let (probabilities, cache) = &steps[t];
            let action = actions[t];
            let step_entropy = entropy(probabilities);
            // d(objective)/dlogits for ascent:
            //   advantage * (onehot - p)  - entropy_beta * p * (ln p + H)
            let dlogits_data: Vec<f64> = probabilities
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let onehot = if i == action { 1.0 } else { 0.0 };
                    let policy_term = advantage * (onehot - p);
                    let entropy_term = -entropy_beta * p * (p.max(1e-300).ln() + step_entropy);
                    policy_term + entropy_term
                })
                .collect();
            let dlogits = Matrix::col_vector(&dlogits_data);
            let (u, _) = &self.heads[t];
            // Rank-1 head gradient and fused-transpose hidden gradient,
            // bit-identical to the transpose-then-matmul composition.
            head_grads[t].0.add_outer(&dlogits_data, cache.h.as_slice());
            head_grads[t].1 += &dlogits;
            let dh = &u.matmul_tn(&dlogits) + &dh_next;
            dh_next = self.cell.backward(cache, &dh, &mut cell_grads);
        }

        PolicyGradients {
            cell: cell_grads,
            heads: head_grads,
        }
    }

    /// Apply one REINFORCE update for a trajectory and its advantage.
    ///
    /// Gradients are clipped element-wise and applied with RMSProp (gradient
    /// *ascent* on the objective, implemented by negating before the
    /// optimizer step).
    pub fn reinforce_update(&mut self, actions: &[usize], advantage: f64, config: &UpdateConfig) {
        let steps = self.replay(actions);
        // Anti-collapse guard: when the replayed trajectory's mean entropy
        // sits below the floor, scale the entropy bonus up in proportion.
        // The scaled coefficient is a constant within this update, so the
        // gradient is the exact gradient of the (rescaled) objective.
        let mut entropy_beta = config.entropy_beta;
        if config.entropy_floor > 0.0 {
            let mean_entropy = (steps
                .iter()
                .map(|(probabilities, _)| entropy(probabilities))
                .sum::<f64>()
                / steps.len().max(1) as f64)
                .max(1e-3);
            if mean_entropy < config.entropy_floor {
                entropy_beta *= config.entropy_floor / mean_entropy;
            }
        }
        let mut grads = self.gradients_from_steps(&steps, actions, advantage, entropy_beta);
        // Clip and negate (optimizers minimise).
        let clip = config.gradient_clip;
        for g in [&mut grads.cell.w_x, &mut grads.cell.w_h, &mut grads.cell.b] {
            g.clip_inplace(clip);
            g.map_inplace(|v| -v);
        }
        for (gu, gc) in &mut grads.heads {
            gu.clip_inplace(clip);
            gu.map_inplace(|v| -v);
            gc.clip_inplace(clip);
            gc.map_inplace(|v| -v);
        }
        self.opt_w_x.set_learning_rate(config.learning_rate);
        self.opt_w_h.set_learning_rate(config.learning_rate);
        self.opt_b.set_learning_rate(config.learning_rate);
        self.opt_w_x.step(&mut self.cell.w_x, &grads.cell.w_x);
        self.opt_w_h.step(&mut self.cell.w_h, &grads.cell.w_h);
        self.opt_b.step(&mut self.cell.b, &grads.cell.b);
        for (((u, c), (gu, gc)), (opt_u, opt_c)) in self
            .heads
            .iter_mut()
            .zip(grads.heads.iter())
            .zip(self.opt_heads.iter_mut())
        {
            opt_u.set_learning_rate(config.learning_rate);
            opt_c.set_learning_rate(config.learning_rate);
            opt_u.step(u, gu);
            opt_c.step(c, gc);
        }
    }

    /// Snapshot weights + optimizer accumulators (see
    /// [`crate::state::PolicyState`]).
    pub(crate) fn state_snapshot(&self) -> crate::state::PolicyState {
        crate::state::PolicyState {
            w_x: self.cell.w_x.clone(),
            w_h: self.cell.w_h.clone(),
            b: self.cell.b.clone(),
            heads: self.heads.clone(),
            opt_cell: [
                self.opt_w_x.cache().cloned(),
                self.opt_w_h.cache().cloned(),
                self.opt_b.cache().cloned(),
            ],
            opt_heads: self
                .opt_heads
                .iter()
                .map(|(u, c)| (u.cache().cloned(), c.cache().cloned()))
                .collect(),
        }
    }

    /// Restore a snapshot taken by
    /// [`state_snapshot`](Self::state_snapshot); panics on any shape
    /// mismatch.
    pub(crate) fn state_restore(&mut self, state: &crate::state::PolicyState) {
        assert_eq!(
            state.heads.len(),
            self.heads.len(),
            "policy snapshot has {} heads, network has {}",
            state.heads.len(),
            self.heads.len()
        );
        assert_eq!(state.w_x.shape(), self.cell.w_x.shape(), "w_x shape");
        assert_eq!(state.w_h.shape(), self.cell.w_h.shape(), "w_h shape");
        assert_eq!(state.b.shape(), self.cell.b.shape(), "b shape");
        for ((u, c), (su, sc)) in self.heads.iter().zip(&state.heads) {
            assert_eq!(su.shape(), u.shape(), "head weight shape");
            assert_eq!(sc.shape(), c.shape(), "head bias shape");
        }
        self.cell.w_x = state.w_x.clone();
        self.cell.w_h = state.w_h.clone();
        self.cell.b = state.b.clone();
        self.heads = state.heads.clone();
        self.opt_w_x.set_cache(state.opt_cell[0].clone());
        self.opt_w_h.set_cache(state.opt_cell[1].clone());
        self.opt_b.set_cache(state.opt_cell[2].clone());
        assert_eq!(
            state.opt_heads.len(),
            self.opt_heads.len(),
            "optimizer snapshot head count"
        );
        for ((opt_u, opt_c), (su, sc)) in self.opt_heads.iter_mut().zip(&state.opt_heads) {
            opt_u.set_cache(su.clone());
            opt_c.set_cache(sc.clone());
        }
    }

    /// Direct access to a head's weight matrix (used by gradient-check
    /// tests).
    #[doc(hidden)]
    pub fn head_weights_mut(&mut self, step: usize) -> &mut Matrix {
        &mut self.heads[step].0
    }

    /// Direct access to the recurrent cell (used by gradient-check tests).
    #[doc(hidden)]
    pub fn cell_mut(&mut self) -> &mut RnnCell {
        &mut self.cell
    }

    /// Gradient accessors used by tests.
    #[doc(hidden)]
    pub fn gradients_parts(grads: &PolicyGradients) -> (&RnnGradients, &[(Matrix, Matrix)]) {
        (&grads.cell, &grads.heads)
    }
}

fn sample_categorical<R: Rng>(rng: &mut R, probabilities: &[f64]) -> usize {
    let mut threshold: f64 = rng.gen_range(0.0..1.0);
    for (i, &p) in probabilities.iter().enumerate() {
        if threshold < p {
            return i;
        }
        threshold -= p;
    }
    probabilities.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network(seed: u64) -> PolicyNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        PolicyNetwork::new(&mut rng, vec![4, 3, 17, 9], 16)
    }

    #[test]
    fn sampled_actions_respect_cardinalities() {
        let net = network(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let sample = net.sample_episode(&mut rng, 1.0);
            assert_eq!(sample.actions.len(), 4);
            for (a, &card) in sample.actions.iter().zip(net.cardinalities()) {
                assert!(*a < card);
            }
            assert!(sample.log_prob <= 0.0);
            assert!(sample.mean_entropy >= 0.0);
        }
    }

    #[test]
    fn greedy_episode_is_deterministic_and_valid() {
        let net = network(3);
        let a = net.greedy_episode();
        let b = net.greedy_episode();
        assert_eq!(a, b);
        for (x, &card) in a.iter().zip(net.cardinalities()) {
            assert!(*x < card);
        }
    }

    #[test]
    fn head_gradient_matches_finite_difference() {
        let net = network(4);
        let actions = vec![1, 2, 10, 5];
        let grads = net.compute_gradients(&actions, 1.0, 0.0);
        let (_, head_grads) = PolicyNetwork::gradients_parts(&grads);
        // Finite-difference the objective w.r.t. head 2's weights.
        let mut probe = net.clone();
        let param = probe.head_weights_mut(2).clone();
        let report =
            nasaic_tensor::gradcheck::check_gradient(&param, &head_grads[2].0, 1e-5, |w| {
                let mut trial = net.clone();
                *trial.head_weights_mut(2) = w.clone();
                trial.objective(&actions, 1.0, 0.0)
            });
        assert!(report.passes(1e-4), "{report:?}");
    }

    #[test]
    fn recurrent_gradient_matches_finite_difference() {
        let net = network(5);
        let actions = vec![0, 1, 3, 8];
        let grads = net.compute_gradients(&actions, 0.7, 0.0);
        let (cell_grads, _) = PolicyNetwork::gradients_parts(&grads);
        let param = net.clone().cell_mut().w_h.clone();
        let report = nasaic_tensor::gradcheck::check_gradient(&param, &cell_grads.w_h, 1e-5, |w| {
            let mut trial = net.clone();
            trial.cell_mut().w_h = w.clone();
            trial.objective(&actions, 0.7, 0.0)
        });
        assert!(report.passes(1e-4), "{report:?}");
    }

    #[test]
    fn entropy_gradient_matches_finite_difference() {
        let net = network(6);
        let actions = vec![2, 0, 5, 1];
        let grads = net.compute_gradients(&actions, 0.0, 0.5);
        let (_, head_grads) = PolicyNetwork::gradients_parts(&grads);
        let param = net.heads[0].0.clone();
        let report =
            nasaic_tensor::gradcheck::check_gradient(&param, &head_grads[0].0, 1e-5, |w| {
                let mut trial = net.clone();
                *trial.head_weights_mut(0) = w.clone();
                trial.objective(&actions, 0.0, 0.5)
            });
        assert!(report.passes(1e-4), "{report:?}");
    }

    #[test]
    fn positive_advantage_increases_trajectory_probability() {
        let mut net = network(7);
        let actions = vec![3, 2, 11, 4];
        let before = net.objective(&actions, 1.0, 0.0);
        for _ in 0..20 {
            net.reinforce_update(&actions, 1.0, &UpdateConfig::default());
        }
        let after = net.objective(&actions, 1.0, 0.0);
        assert!(
            after > before,
            "log-prob did not increase: {before} -> {after}"
        );
    }

    #[test]
    fn negative_advantage_decreases_trajectory_probability() {
        let mut net = network(8);
        let actions = vec![0, 0, 0, 0];
        let before = net.objective(&actions, 1.0, 0.0);
        for _ in 0..20 {
            net.reinforce_update(&actions, -1.0, &UpdateConfig::default());
        }
        let after = net.objective(&actions, 1.0, 0.0);
        assert!(
            after < before,
            "log-prob did not decrease: {before} -> {after}"
        );
    }

    #[test]
    fn reinforced_policy_converges_to_target_actions() {
        // A tiny bandit-style check: reward 1 for one specific trajectory,
        // 0 otherwise.  After training, greedy decoding should recover it.
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = PolicyNetwork::new(&mut rng, vec![3, 3, 3], 12);
        let target = vec![2, 0, 1];
        let config = UpdateConfig {
            learning_rate: 0.05,
            entropy_beta: 0.0,
            ..UpdateConfig::default()
        };
        let mut baseline = 0.0;
        for _ in 0..400 {
            let sample = net.sample_episode(&mut rng, 1.0);
            let reward = if sample.actions == target { 1.0 } else { 0.0 };
            baseline = 0.9 * baseline + 0.1 * reward;
            net.reinforce_update(&sample.actions, reward - baseline, &config);
        }
        assert_eq!(net.greedy_episode(), target);
    }

    #[test]
    #[should_panic]
    fn zero_cardinality_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        PolicyNetwork::new(&mut rng, vec![3, 0], 8);
    }
}
