//! A minimal recurrent cell with manual backpropagation.
//!
//! The controller uses an Elman-style recurrent core
//! `h_t = tanh(W_x x_t + W_h h_{t-1} + b)`.  Keeping the cell simple makes
//! hand-written backpropagation-through-time tractable and verifiable with
//! finite differences (see the tests in [`crate::policy`]).

use nasaic_tensor::{init, Matrix};
use rand::Rng;

/// Parameters of the recurrent cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RnnCell {
    /// Input-to-hidden weights (`hidden x input`).
    pub w_x: Matrix,
    /// Hidden-to-hidden weights (`hidden x hidden`).
    pub w_h: Matrix,
    /// Hidden bias (`hidden x 1`).
    pub b: Matrix,
}

/// Cached activations of one forward step, needed for backpropagation.
#[derive(Debug, Clone, PartialEq)]
pub struct RnnStepCache {
    /// Input vector of the step.
    pub x: Matrix,
    /// Previous hidden state.
    pub h_prev: Matrix,
    /// New hidden state (`tanh` output).
    pub h: Matrix,
}

/// Accumulated parameter gradients for the cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RnnGradients {
    /// Gradient of `w_x`.
    pub w_x: Matrix,
    /// Gradient of `w_h`.
    pub w_h: Matrix,
    /// Gradient of `b`.
    pub b: Matrix,
}

impl RnnCell {
    /// Create a cell with Xavier-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new<R: Rng>(rng: &mut R, input_size: usize, hidden_size: usize) -> Self {
        assert!(
            input_size > 0 && hidden_size > 0,
            "cell sizes must be positive"
        );
        Self {
            w_x: init::xavier_uniform(rng, hidden_size, input_size),
            w_h: init::xavier_uniform(rng, hidden_size, hidden_size),
            b: Matrix::zeros(hidden_size, 1),
        }
    }

    /// Hidden state dimensionality.
    pub fn hidden_size(&self) -> usize {
        self.w_h.rows()
    }

    /// Input dimensionality.
    pub fn input_size(&self) -> usize {
        self.w_x.cols()
    }

    /// The all-zero initial hidden state.
    pub fn initial_state(&self) -> Matrix {
        Matrix::zeros(self.hidden_size(), 1)
    }

    /// One forward step; returns the new hidden state and the cache needed
    /// for the backward pass.
    pub fn forward(&self, x: &Matrix, h_prev: &Matrix) -> (Matrix, RnnStepCache) {
        let z = &(&self.w_x.matmul(x) + &self.w_h.matmul(h_prev)) + &self.b;
        let h = z.map(f64::tanh);
        let cache = RnnStepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            h: h.clone(),
        };
        (h, cache)
    }

    /// One backward step.
    ///
    /// `dh` is the gradient flowing into the step's hidden state (from the
    /// output head and from the next time step).  Gradients for the cell
    /// parameters are accumulated into `grads`; the gradient with respect to
    /// the previous hidden state is returned so the caller can continue the
    /// backward sweep.
    pub fn backward(&self, cache: &RnnStepCache, dh: &Matrix, grads: &mut RnnGradients) -> Matrix {
        // dz = dh * (1 - h^2)   (tanh derivative)
        let dz_data: Vec<f64> = dh
            .as_slice()
            .iter()
            .zip(cache.h.as_slice())
            .map(|(&g, &h)| g * (1.0 - h * h))
            .collect();
        let dz = Matrix::from_vec(dh.rows(), 1, dz_data);
        // Rank-1 weight gradients and the fused-transpose product avoid
        // materialising `x^T`, `h_prev^T` and `w_h^T`; both are
        // bit-identical to the transpose-then-matmul composition (see the
        // `nasaic-tensor` kernel identity suite).
        grads.w_x.add_outer(dz.as_slice(), cache.x.as_slice());
        grads.w_h.add_outer(dz.as_slice(), cache.h_prev.as_slice());
        grads.b += &dz;
        self.w_h.matmul_tn(&dz)
    }

    /// Zero-valued gradient buffers matching this cell's shapes.
    pub fn zero_gradients(&self) -> RnnGradients {
        RnnGradients {
            w_x: Matrix::zeros(self.w_x.rows(), self.w_x.cols()),
            w_h: Matrix::zeros(self.w_h.rows(), self.w_h.cols()),
            b: Matrix::zeros(self.b.rows(), self.b.cols()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_produces_bounded_activations() {
        let mut rng = StdRng::seed_from_u64(1);
        let cell = RnnCell::new(&mut rng, 4, 8);
        let x = Matrix::col_vector(&[1.0, -2.0, 0.5, 3.0]);
        let (h, cache) = cell.forward(&x, &cell.initial_state());
        assert_eq!(h.shape(), (8, 1));
        assert!(h.as_slice().iter().all(|v| v.abs() <= 1.0));
        assert_eq!(cache.h, h);
    }

    #[test]
    fn hidden_state_carries_information_across_steps() {
        let mut rng = StdRng::seed_from_u64(2);
        let cell = RnnCell::new(&mut rng, 3, 6);
        let x1 = Matrix::col_vector(&[1.0, 0.0, 0.0]);
        let x2 = Matrix::col_vector(&[0.0, 1.0, 0.0]);
        let (h1, _) = cell.forward(&x1, &cell.initial_state());
        let (h_after_1_then_2, _) = cell.forward(&x2, &h1);
        let (h_only_2, _) = cell.forward(&x2, &cell.initial_state());
        assert_ne!(h_after_1_then_2, h_only_2);
    }

    #[test]
    fn backward_gradient_matches_finite_difference_for_wx() {
        // Loss = sum(h) after a single step; check dLoss/dW_x numerically.
        let mut rng = StdRng::seed_from_u64(3);
        let cell = RnnCell::new(&mut rng, 3, 4);
        let x = Matrix::col_vector(&[0.3, -0.7, 0.2]);
        let h0 = cell.initial_state();

        let (h, cache) = cell.forward(&x, &h0);
        let mut grads = cell.zero_gradients();
        let dh = Matrix::filled(h.rows(), 1, 1.0); // dLoss/dh = 1
        cell.backward(&cache, &dh, &mut grads);

        let loss = |w: &Matrix| -> f64 {
            let mut trial = cell.clone();
            trial.w_x = w.clone();
            let (h, _) = trial.forward(&x, &h0);
            h.sum()
        };
        let report = nasaic_tensor::gradcheck::check_gradient(&cell.w_x, &grads.w_x, 1e-5, loss);
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn backward_gradient_matches_finite_difference_for_wh_over_two_steps() {
        // Two chained steps, loss = sum(h2): checks the recurrent path.
        let mut rng = StdRng::seed_from_u64(4);
        let cell = RnnCell::new(&mut rng, 2, 3);
        let x1 = Matrix::col_vector(&[0.5, -0.1]);
        let x2 = Matrix::col_vector(&[-0.3, 0.8]);

        let run = |c: &RnnCell| {
            let (h1, c1) = c.forward(&x1, &c.initial_state());
            let (h2, c2) = c.forward(&x2, &h1);
            (h1, h2, c1, c2)
        };
        let (_h1, h2, c1, c2) = run(&cell);
        let mut grads = cell.zero_gradients();
        let dh2 = Matrix::filled(h2.rows(), 1, 1.0);
        let dh1 = cell.backward(&c2, &dh2, &mut grads);
        cell.backward(&c1, &dh1, &mut grads);

        let loss = |w: &Matrix| -> f64 {
            let mut trial = cell.clone();
            trial.w_h = w.clone();
            let (_, h2, _, _) = run(&trial);
            h2.sum()
        };
        let report = nasaic_tensor::gradcheck::check_gradient(&cell.w_h, &grads.w_h, 1e-5, loss);
        assert!(report.passes(1e-4), "{report:?}");
    }

    #[test]
    #[should_panic]
    fn zero_sized_cell_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        RnnCell::new(&mut rng, 0, 4);
    }
}
