//! The multi-segment NASAIC controller.
//!
//! Fig. 5 of the paper: the controller consists of `N = m + k` segments —
//! one per DNN in the workload and one per sub-accelerator — emitted by a
//! single recurrent policy.  A DNN segment predicts that network's
//! hyperparameters (`nas(D_i)`); a sub-accelerator segment predicts the
//! dataflow, PE and bandwidth allocation (`alloc(aic_k)`).
//!
//! [`Controller`] owns the flat [`PolicyNetwork`] plus the bookkeeping that
//! splits the flat action vector back into per-segment slices.

use crate::policy::PolicyNetwork;
use crate::reinforce::{ReinforceConfig, ReinforceTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One controller segment: a named group of consecutive decisions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment name (e.g. `"dnn0"` or `"aic1"`).
    pub name: String,
    /// Option count of every decision in the segment.
    pub cardinalities: Vec<usize>,
}

impl Segment {
    /// Create a segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment has no decisions.
    pub fn new(name: &str, cardinalities: Vec<usize>) -> Self {
        assert!(!cardinalities.is_empty(), "segment {name} has no decisions");
        Self {
            name: name.to_string(),
            cardinalities,
        }
    }

    /// Number of decisions in this segment.
    pub fn len(&self) -> usize {
        self.cardinalities.len()
    }

    /// `true` when the segment has no decisions (never true for segments
    /// built through [`Segment::new`]).
    pub fn is_empty(&self) -> bool {
        self.cardinalities.is_empty()
    }
}

/// Controller hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Hidden size of the recurrent policy.
    pub hidden_size: usize,
    /// Softmax sampling temperature (1.0 = on-policy sampling).
    pub temperature: f64,
    /// REINFORCE settings.
    pub reinforce: ReinforceConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            hidden_size: 32,
            temperature: 1.0,
            reinforce: ReinforceConfig::stable(),
        }
    }
}

/// One controller prediction: the flat trajectory plus its per-segment
/// split.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSample {
    /// Flat action vector over all segments.
    pub actions: Vec<usize>,
    /// Actions split per segment, in segment order.
    pub segments: Vec<Vec<usize>>,
    /// Mean per-step entropy of the sampling distributions.
    pub mean_entropy: f64,
}

/// The NASAIC multi-task co-exploration controller.
#[derive(Debug, Clone)]
pub struct Controller {
    segments: Vec<Segment>,
    policy: PolicyNetwork,
    trainer: ReinforceTrainer,
    temperature: f64,
}

impl Controller {
    /// Create a controller for the given segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty.
    pub fn new(segments: Vec<Segment>, config: ControllerConfig, seed: u64) -> Self {
        assert!(
            !segments.is_empty(),
            "controller needs at least one segment"
        );
        let cardinalities: Vec<usize> = segments
            .iter()
            .flat_map(|s| s.cardinalities.iter().copied())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = PolicyNetwork::new(&mut rng, cardinalities, config.hidden_size);
        Self {
            segments,
            policy,
            trainer: ReinforceTrainer::new(config.reinforce),
            temperature: config.temperature,
        }
    }

    /// The controller's segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total number of decisions across all segments.
    pub fn num_decisions(&self) -> usize {
        self.policy.num_steps()
    }

    /// Number of policy updates applied so far.
    pub fn updates(&self) -> u64 {
        self.trainer.updates()
    }

    /// Reward history (one entry per feedback call).
    pub fn reward_history(&self) -> &[f64] {
        self.trainer.reward_history()
    }

    /// The trainer's current REINFORCE baseline (exponential moving
    /// average of rewards), or `None` before the first feedback — exposed
    /// as search telemetry for the episode event stream.
    pub fn baseline(&self) -> Option<f64> {
        self.trainer.baseline()
    }

    pub(crate) fn policy_ref(&self) -> &PolicyNetwork {
        &self.policy
    }

    pub(crate) fn policy_mut(&mut self) -> &mut PolicyNetwork {
        &mut self.policy
    }

    pub(crate) fn trainer_ref(&self) -> &ReinforceTrainer {
        &self.trainer
    }

    pub(crate) fn trainer_mut(&mut self) -> &mut ReinforceTrainer {
        &mut self.trainer
    }

    fn split(&self, actions: &[usize]) -> Vec<Vec<usize>> {
        let mut out = Vec::with_capacity(self.segments.len());
        let mut offset = 0;
        for segment in &self.segments {
            out.push(actions[offset..offset + segment.len()].to_vec());
            offset += segment.len();
        }
        out
    }

    /// Sample one candidate (architectures + hardware allocation).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> ControllerSample {
        let episode = self.policy.sample_episode(rng, self.temperature);
        ControllerSample {
            segments: self.split(&episode.actions),
            actions: episode.actions,
            mean_entropy: episode.mean_entropy,
        }
    }

    /// The current greedy (most likely) candidate.
    pub fn greedy(&self) -> ControllerSample {
        let actions = self.policy.greedy_episode();
        ControllerSample {
            segments: self.split(&actions),
            actions,
            mean_entropy: 0.0,
        }
    }

    /// Feed the reward of a previously sampled candidate back into the
    /// controller (one REINFORCE update).  Returns the advantage used.
    pub fn feedback(&mut self, sample: &ControllerSample, reward: f64) -> f64 {
        self.trainer
            .update(&mut self.policy, &sample.actions, reward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nasaic_like_segments() -> Vec<Segment> {
        vec![
            // Two DNN segments (CIFAR-10 ResNet + Nuclei U-Net shapes).
            Segment::new("dnn0", vec![4, 4, 3, 4, 3, 4, 3]),
            Segment::new("dnn1", vec![5, 3, 3, 3, 3, 3]),
            // Two sub-accelerator segments: dataflow, PE level, BW level.
            Segment::new("aic0", vec![3, 17, 9]),
            Segment::new("aic1", vec![3, 17, 9]),
        ]
    }

    #[test]
    fn sample_splits_actions_by_segment() {
        let controller = Controller::new(nasaic_like_segments(), ControllerConfig::default(), 1);
        let mut rng = StdRng::seed_from_u64(10);
        let sample = controller.sample(&mut rng);
        assert_eq!(sample.segments.len(), 4);
        assert_eq!(sample.segments[0].len(), 7);
        assert_eq!(sample.segments[1].len(), 6);
        assert_eq!(sample.segments[2].len(), 3);
        assert_eq!(sample.segments[3].len(), 3);
        assert_eq!(
            sample.actions.len(),
            sample.segments.iter().map(Vec::len).sum::<usize>()
        );
        assert_eq!(controller.num_decisions(), 19);
    }

    #[test]
    fn sampled_actions_stay_in_range() {
        let controller = Controller::new(nasaic_like_segments(), ControllerConfig::default(), 2);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let sample = controller.sample(&mut rng);
            for (segment, spec) in sample.segments.iter().zip(controller.segments()) {
                for (a, &card) in segment.iter().zip(&spec.cardinalities) {
                    assert!(*a < card);
                }
            }
        }
    }

    #[test]
    fn feedback_shifts_policy_toward_rewarded_candidates() {
        // Reward candidates whose first decision is the largest option.
        let segments = vec![
            Segment::new("dnn0", vec![4, 3]),
            Segment::new("aic0", vec![3]),
        ];
        let mut controller = Controller::new(segments, ControllerConfig::default(), 3);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..300 {
            let sample = controller.sample(&mut rng);
            let reward = if sample.actions[0] == 3 { 1.0 } else { 0.1 };
            controller.feedback(&sample, reward);
        }
        assert_eq!(controller.greedy().actions[0], 3);
        assert_eq!(controller.updates(), 300);
    }

    #[test]
    fn greedy_sample_has_valid_segments() {
        let controller = Controller::new(nasaic_like_segments(), ControllerConfig::default(), 4);
        let greedy = controller.greedy();
        assert_eq!(greedy.segments.len(), 4);
        assert_eq!(greedy.mean_entropy, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_segment_list_rejected() {
        Controller::new(vec![], ControllerConfig::default(), 0);
    }

    #[test]
    #[should_panic]
    fn empty_segment_rejected() {
        Segment::new("empty", vec![]);
    }
}
