//! Plain-data snapshots of the controller's mutable training state.
//!
//! A search checkpoint has to carry the controller across process
//! boundaries: the policy weights, the per-parameter RMSProp accumulators
//! and the trainer's baseline/step counters.  This module exposes that
//! state as plain `Matrix`/`f64`/`u64` structs so the core crate can
//! serialize it with its own codec without `nasaic-rl` depending on it.
//!
//! Everything *not* in these structs is either reconstructed from the
//! controller's configuration (segment layout, schedule, temperature) or
//! transient within a single update (gradients, the RNN hidden state,
//! which is re-initialised per episode).

use crate::controller::Controller;
use crate::policy::PolicyNetwork;
use crate::reinforce::ReinforceTrainer;
use nasaic_tensor::Matrix;

/// Mutable state of a [`PolicyNetwork`]: every weight matrix plus the
/// RMSProp squared-gradient accumulators (in the network's parameter
/// order: recurrent cell, then one `(weights, bias)` pair per head).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyState {
    /// Input-to-hidden weights of the recurrent cell.
    pub w_x: Matrix,
    /// Hidden-to-hidden weights of the recurrent cell.
    pub w_h: Matrix,
    /// Hidden bias of the recurrent cell.
    pub b: Matrix,
    /// Per-head `(weights, bias)` pairs, one per decision step.
    pub heads: Vec<(Matrix, Matrix)>,
    /// RMSProp accumulators of `w_x`/`w_h`/`b` (`None` before the first
    /// update).
    pub opt_cell: [Option<Matrix>; 3],
    /// RMSProp accumulators of each head's `(weights, bias)`.
    pub opt_heads: Vec<(Option<Matrix>, Option<Matrix>)>,
}

/// Mutable state of a [`ReinforceTrainer`]: the EMA baseline, the update
/// counter driving the learning-rate schedule, and the reward history
/// surfaced in search outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// EMA reward baseline (`None` before the first update).
    pub baseline: Option<f64>,
    /// Number of updates applied so far.
    pub updates: u64,
    /// Rewards observed so far.
    pub reward_history: Vec<f64>,
}

/// Mutable state of a whole [`Controller`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerState {
    /// Policy weights + optimizer accumulators.
    pub policy: PolicyState,
    /// Trainer baseline/counters.
    pub trainer: TrainerState,
}

impl PolicyNetwork {
    /// Snapshot the network's mutable state (weights + optimizer
    /// accumulators).
    pub fn export_state(&self) -> PolicyState {
        self.state_snapshot()
    }

    /// Restore a previously exported snapshot.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's shapes do not match this network (the
    /// checkpoint belongs to a different controller layout).
    pub fn restore_state(&mut self, state: &PolicyState) {
        self.state_restore(state);
    }
}

impl ReinforceTrainer {
    /// Snapshot the trainer's mutable state.
    pub fn export_state(&self) -> TrainerState {
        TrainerState {
            baseline: self.baseline(),
            updates: self.updates(),
            reward_history: self.reward_history().to_vec(),
        }
    }
}

impl Controller {
    /// Snapshot the controller's mutable state (policy weights, optimizer
    /// accumulators, trainer baseline/counters).  Restoring the snapshot
    /// into a freshly constructed controller with the same segments and
    /// configuration reproduces the original bit-for-bit: subsequent
    /// `sample`/`feedback` calls yield identical results.
    pub fn export_state(&self) -> ControllerState {
        ControllerState {
            policy: self.policy_ref().export_state(),
            trainer: self.trainer_ref().export_state(),
        }
    }

    /// Restore a previously exported snapshot.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's policy shapes do not match this
    /// controller's segment layout.
    pub fn restore_state(&mut self, state: &ControllerState) {
        self.policy_mut().restore_state(&state.policy);
        self.trainer_mut().restore_trainer_state(&state.trainer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ControllerConfig, Segment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn segments() -> Vec<Segment> {
        vec![
            Segment::new("dnn0", vec![4, 4, 3]),
            Segment::new("aic0", vec![3, 17, 9]),
        ]
    }

    #[test]
    fn controller_state_round_trip_is_bit_identical() {
        // Train a controller for a while, snapshot, keep training both the
        // original and a restored clone in lockstep: samples, feedback
        // advantages and reward history must agree exactly.
        let mut original = Controller::new(segments(), ControllerConfig::default(), 42);
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..25 {
            let sample = original.sample(&mut rng);
            original.feedback(&sample, 0.1 * (i % 7) as f64);
        }
        let state = original.export_state();
        let rng_state = rng.state();

        let mut restored = Controller::new(segments(), ControllerConfig::default(), 999);
        restored.restore_state(&state);
        let mut restored_rng = StdRng::from_state(rng_state);

        assert_eq!(original.baseline(), restored.baseline());
        assert_eq!(original.updates(), restored.updates());
        assert_eq!(original.reward_history(), restored.reward_history());
        for i in 0..25 {
            let a = original.sample(&mut rng);
            let b = restored.sample(&mut restored_rng);
            assert_eq!(a, b, "sample diverged at step {i}");
            let reward = 0.05 * (i % 5) as f64;
            let adv_a = original.feedback(&a, reward);
            let adv_b = restored.feedback(&b, reward);
            assert_eq!(adv_a, adv_b, "advantage diverged at step {i}");
        }
        assert_eq!(original.greedy(), restored.greedy());
    }

    #[test]
    fn fresh_controller_state_round_trips_before_any_update() {
        let original = Controller::new(segments(), ControllerConfig::default(), 3);
        let state = original.export_state();
        assert!(state.trainer.baseline.is_none());
        assert_eq!(state.trainer.updates, 0);
        assert!(state.policy.opt_cell.iter().all(Option::is_none));
        let mut restored = Controller::new(segments(), ControllerConfig::default(), 3);
        restored.restore_state(&state);
        assert_eq!(original.greedy(), restored.greedy());
    }

    #[test]
    #[should_panic]
    fn mismatched_layout_is_rejected() {
        let original = Controller::new(segments(), ControllerConfig::default(), 1);
        let state = original.export_state();
        let mut other = Controller::new(
            vec![Segment::new("dnn0", vec![2, 2])],
            ControllerConfig::default(),
            1,
        );
        other.restore_state(&state);
    }
}
