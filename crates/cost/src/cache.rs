//! Memoised layer-cost lookups over a fixed cost model.
//!
//! The hardware side of every candidate evaluation starts by building a
//! [`WorkloadCosts`] table: one [`CostModel::layer_cost`] analysis per
//! (layer, sub-accelerator) cell.  Both factors live in small discrete
//! spaces — layer shapes come from a backbone's search space, and
//! sub-accelerators are quantised by the resource allocator — so across a
//! search run the same cells are analysed over and over.
//! [`LayerCostCache`] memoises them: each distinct (shape, sub) pair is
//! analysed exactly once per cache lifetime, and
//! [`LayerCostCache::workload_costs`] assembles tables from lookups.
//!
//! The cache is keyed by the layer's *geometry* ([`LayerShape`] minus its
//! name — two layers named differently but shaped identically cost the
//! same) and is valid only for the [`CostModel`] it was filled against;
//! owners that swap cost models must start a fresh cache.  The analysis
//! is a pure function of (shape, sub), so serving the memoised
//! [`LayerCost`] (a `Copy` struct) is bit-identical to recomputing —
//! [`WorkloadCosts::build`] is retained as the uncached reference and the
//! `eval_baseline` gate compares full tables against it.

use crate::model::{CostModel, LayerCost};
use crate::table::{LayerCostRow, NetworkCosts, WorkloadCosts};
use nasaic_accel::{Accelerator, SubAccelerator};
use nasaic_nn::layer::{Architecture, LayerKind, LayerShape};
use std::collections::HashMap;
use std::sync::RwLock;

/// A layer's geometry — every [`LayerShape`] field except the name, which
/// does not influence its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ShapeKey {
    kind: LayerKind,
    input_channels: usize,
    output_channels: usize,
    kernel: usize,
    input_size: usize,
    stride: usize,
}

impl ShapeKey {
    fn of(layer: &LayerShape) -> Self {
        Self {
            kind: layer.kind,
            input_channels: layer.input_channels,
            output_channels: layer.output_channels,
            kernel: layer.kernel,
            input_size: layer.input_size,
            stride: layer.stride,
        }
    }
}

/// Thread-safe memo of [`CostModel::layer_cost`] results.
///
/// See the module docs for the contract; in short: one cache per cost
/// model, keyed by layer geometry, bit-identical to direct evaluation.
#[derive(Debug, Default)]
pub struct LayerCostCache {
    entries: RwLock<HashMap<(ShapeKey, SubAccelerator), LayerCost>>,
}

impl LayerCostCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoised (shape, sub-accelerator) cells.
    pub fn len(&self) -> usize {
        self.entries.read().expect("cost cache poisoned").len()
    }

    /// `true` when nothing has been memoised yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cost of a layer on a sub-accelerator, memoised.
    ///
    /// Equivalent to `model.layer_cost(layer, sub)` — the analysis runs
    /// at most once per distinct (geometry, sub) pair.
    pub fn layer_cost(
        &self,
        model: &CostModel,
        layer: &LayerShape,
        sub: &SubAccelerator,
    ) -> LayerCost {
        let key = (ShapeKey::of(layer), *sub);
        if let Some(cost) = self.entries.read().expect("cost cache poisoned").get(&key) {
            return *cost;
        }
        // Analyse outside the lock; a racing thread computing the same
        // cell derives the identical pure-function result.
        let cost = model.layer_cost(layer, sub);
        self.entries
            .write()
            .expect("cost cache poisoned")
            .insert(key, cost);
        cost
    }

    /// Build a workload cost table from memoised lookups.
    ///
    /// Produces exactly the table [`WorkloadCosts::build`] would (same
    /// ordering, same values bit for bit), paying the mapping analysis
    /// only for cells not yet cached.
    pub fn workload_costs(
        &self,
        model: &CostModel,
        architectures: &[Architecture],
        accelerator: &Accelerator,
    ) -> WorkloadCosts {
        let subs = accelerator.sub_accelerators();
        let networks = architectures
            .iter()
            .map(|arch| NetworkCosts {
                name: arch.name.clone(),
                layers: arch
                    .layers
                    .iter()
                    .map(|layer| LayerCostRow {
                        layer_name: layer.name.clone(),
                        macs: layer.macs(),
                        per_sub: subs
                            .iter()
                            .map(|sub| self.layer_cost(model, layer, sub))
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        WorkloadCosts {
            networks,
            num_subs: subs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_accel::Dataflow;
    use nasaic_nn::backbone::Backbone;

    fn accelerator() -> Accelerator {
        Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 1024, 16),
        ])
    }

    fn workload() -> Vec<Architecture> {
        vec![
            Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]),
            Backbone::UNetNuclei.materialize_values(&[3, 16, 32, 64, 128, 256]),
        ]
    }

    #[test]
    fn cached_table_matches_uncached_build_bit_for_bit() {
        let model = CostModel::paper_calibrated();
        let cache = LayerCostCache::new();
        let archs = workload();
        let acc = accelerator();
        let reference = WorkloadCosts::build(&model, &archs, &acc);
        // Twice: cold (filling) and warm (serving) must both match.
        for _ in 0..2 {
            let cached = cache.workload_costs(&model, &archs, &acc);
            assert_eq!(cached, reference);
        }
        assert!(!cache.is_empty());
    }

    #[test]
    fn cache_deduplicates_identically_shaped_layers() {
        let model = CostModel::paper_calibrated();
        let cache = LayerCostCache::new();
        let sub = SubAccelerator::new(Dataflow::Nvdla, 1024, 32);
        let a = LayerShape::conv2d("one_name", 64, 128, 3, 16, 1);
        let b = LayerShape::conv2d("another_name", 64, 128, 3, 16, 1);
        let cost_a = cache.layer_cost(&model, &a, &sub);
        let cost_b = cache.layer_cost(&model, &b, &sub);
        assert_eq!(cost_a, cost_b);
        assert_eq!(cache.len(), 1, "same geometry must share one entry");
    }

    #[test]
    fn distinct_subs_get_distinct_entries() {
        let model = CostModel::paper_calibrated();
        let cache = LayerCostCache::new();
        let layer = LayerShape::conv2d("conv", 64, 128, 3, 16, 1);
        let fast = SubAccelerator::new(Dataflow::Nvdla, 2048, 32);
        let slow = SubAccelerator::new(Dataflow::Nvdla, 256, 8);
        let cost_fast = cache.layer_cost(&model, &layer, &fast);
        let cost_slow = cache.layer_cost(&model, &layer, &slow);
        assert_eq!(cache.len(), 2);
        assert!(cost_fast.latency_cycles < cost_slow.latency_cycles);
    }
}
