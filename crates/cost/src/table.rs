//! Pre-computed cost tables over (layer, sub-accelerator) pairs.
//!
//! The paper's mapper/scheduler consumes, for every network layer `l_i` and
//! every sub-accelerator `aic_j`, the latency `l_{i,j}` and energy
//! `e_{i,j}` reported by the cost model.  [`WorkloadCosts`] materialises
//! exactly that table for a multi-DNN workload, preserving per-network
//! layer order (the dependency chains the scheduler must respect).

use crate::model::{CostModel, LayerCost};
use nasaic_accel::Accelerator;
use nasaic_nn::layer::Architecture;
use serde::{Deserialize, Serialize};

/// Cost of one layer on every sub-accelerator of the evaluated design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCostRow {
    /// Layer name (unique within its network).
    pub layer_name: String,
    /// MAC count of the layer (used by load-balancing heuristics).
    pub macs: u64,
    /// Cost per sub-accelerator, indexed like
    /// [`Accelerator::sub_accelerators`].
    pub per_sub: Vec<LayerCost>,
}

impl LayerCostRow {
    /// Index of the sub-accelerator with the lowest latency for this layer.
    ///
    /// Returns `None` if no sub-accelerator can execute the layer.
    pub fn fastest_sub(&self) -> Option<usize> {
        self.per_sub
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_feasible())
            .min_by(|a, b| a.1.latency_cycles.total_cmp(&b.1.latency_cycles))
            .map(|(i, _)| i)
    }

    /// Index of the sub-accelerator with the lowest energy for this layer.
    pub fn cheapest_sub(&self) -> Option<usize> {
        self.per_sub
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_feasible())
            .min_by(|a, b| a.1.energy_nj.total_cmp(&b.1.energy_nj))
            .map(|(i, _)| i)
    }

    /// Lowest feasible latency of this layer over all sub-accelerators —
    /// the per-layer term of every admissible latency lower bound used by
    /// the branch-and-bound mapper.
    pub fn min_feasible_latency(&self) -> Option<f64> {
        self.fastest_sub().map(|i| self.per_sub[i].latency_cycles)
    }

    /// Lowest feasible energy of this layer over all sub-accelerators —
    /// the per-layer term of the admissible remaining-energy lower bound.
    pub fn min_feasible_energy(&self) -> Option<f64> {
        self.cheapest_sub().map(|i| self.per_sub[i].energy_nj)
    }
}

/// Costs of every layer of one network, in execution (dependency) order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkCosts {
    /// Network name.
    pub name: String,
    /// Per-layer cost rows in execution order.
    pub layers: Vec<LayerCostRow>,
}

impl NetworkCosts {
    /// Sum of the best-case (fastest mapping) latencies — a lower bound on
    /// the network's serial latency.
    pub fn serial_latency_lower_bound(&self) -> f64 {
        self.layers
            .iter()
            .filter_map(LayerCostRow::min_feasible_latency)
            .sum()
    }

    /// Sum of the best-case (cheapest mapping) energies — a lower bound on
    /// the network's energy.
    pub fn energy_lower_bound(&self) -> f64 {
        self.layers
            .iter()
            .filter_map(LayerCostRow::min_feasible_energy)
            .sum()
    }
}

/// The full cost table of a multi-DNN workload on one accelerator design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCosts {
    /// One entry per DNN, in workload order.
    pub networks: Vec<NetworkCosts>,
    /// Number of sub-accelerators in the evaluated design (columns of every
    /// cost row).
    pub num_subs: usize,
}

impl WorkloadCosts {
    /// Build the cost table for a set of architectures on an accelerator.
    pub fn build(
        model: &CostModel,
        architectures: &[Architecture],
        accelerator: &Accelerator,
    ) -> Self {
        let subs = accelerator.sub_accelerators();
        let networks = architectures
            .iter()
            .map(|arch| NetworkCosts {
                name: arch.name.clone(),
                layers: arch
                    .layers
                    .iter()
                    .map(|layer| LayerCostRow {
                        layer_name: layer.name.clone(),
                        macs: layer.macs(),
                        per_sub: subs
                            .iter()
                            .map(|sub| model.layer_cost(layer, sub))
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        Self {
            networks,
            num_subs: subs.len(),
        }
    }

    /// Total number of layers across all networks.
    pub fn total_layers(&self) -> usize {
        self.networks.iter().map(|n| n.layers.len()).sum()
    }

    /// `true` when every layer has at least one feasible mapping.
    pub fn is_schedulable(&self) -> bool {
        self.networks.iter().all(|n| {
            n.layers
                .iter()
                .all(|row| row.per_sub.iter().any(LayerCost::is_feasible))
        })
    }

    /// Sum of every layer's cheapest feasible energy — an admissible lower
    /// bound on the energy of any complete assignment.
    pub fn energy_lower_bound(&self) -> f64 {
        self.networks
            .iter()
            .map(NetworkCosts::energy_lower_bound)
            .sum()
    }

    /// The slowest network chain at best-case per-layer latencies — an
    /// admissible lower bound on any schedule's makespan (contention and
    /// switch penalties only increase it).
    pub fn makespan_lower_bound(&self) -> f64 {
        self.networks
            .iter()
            .map(NetworkCosts::serial_latency_lower_bound)
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_accel::{Dataflow, SubAccelerator};
    use nasaic_nn::backbone::Backbone;

    fn two_sub_accelerator() -> Accelerator {
        Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ])
    }

    fn workload() -> Vec<Architecture> {
        vec![
            Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]),
            Backbone::UNetNuclei.materialize_values(&[3, 16, 32, 64, 128, 256]),
        ]
    }

    #[test]
    fn table_has_one_row_per_layer_and_one_column_per_sub() {
        let model = CostModel::paper_calibrated();
        let archs = workload();
        let costs = WorkloadCosts::build(&model, &archs, &two_sub_accelerator());
        assert_eq!(costs.networks.len(), 2);
        assert_eq!(costs.num_subs, 2);
        assert_eq!(
            costs.total_layers(),
            archs[0].num_layers() + archs[1].num_layers()
        );
        for network in &costs.networks {
            for row in &network.layers {
                assert_eq!(row.per_sub.len(), 2);
            }
        }
        assert!(costs.is_schedulable());
    }

    #[test]
    fn resnet_late_layers_prefer_nvdla_and_unet_layers_prefer_shidiannao() {
        let model = CostModel::paper_calibrated();
        let archs = workload();
        let costs = WorkloadCosts::build(&model, &archs, &two_sub_accelerator());
        // Column 0 is NVDLA, column 1 is Shidiannao.
        let resnet = &costs.networks[0];
        let late_row = resnet
            .layers
            .iter()
            .find(|r| r.layer_name == "block3_res0")
            .unwrap();
        assert_eq!(
            late_row.fastest_sub(),
            Some(0),
            "late ResNet layer should prefer NVDLA"
        );
        let unet = &costs.networks[1];
        let early_row = unet
            .layers
            .iter()
            .find(|r| r.layer_name == "enc0_conv1")
            .unwrap();
        assert_eq!(
            early_row.fastest_sub(),
            Some(1),
            "early U-Net layer should prefer Shidiannao"
        );
    }

    #[test]
    fn lower_bounds_are_positive_and_consistent() {
        let model = CostModel::paper_calibrated();
        let archs = workload();
        let costs = WorkloadCosts::build(&model, &archs, &two_sub_accelerator());
        for network in &costs.networks {
            let lat = network.serial_latency_lower_bound();
            let energy = network.energy_lower_bound();
            assert!(lat > 0.0 && lat.is_finite());
            assert!(energy > 0.0 && energy.is_finite());
        }
    }

    #[test]
    fn inactive_sub_makes_column_infeasible_but_table_schedulable() {
        let model = CostModel::paper_calibrated();
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 4096, 64),
            SubAccelerator::inactive(Dataflow::Shidiannao),
        ]);
        let costs = WorkloadCosts::build(&model, &workload(), &acc);
        assert!(costs.is_schedulable());
        for network in &costs.networks {
            for row in &network.layers {
                assert!(!row.per_sub[1].is_feasible());
                assert_eq!(row.fastest_sub(), Some(0));
            }
        }
    }

    #[test]
    fn all_inactive_accelerator_is_not_schedulable() {
        let model = CostModel::paper_calibrated();
        let acc = Accelerator::new(vec![SubAccelerator::inactive(Dataflow::Nvdla)]);
        let costs = WorkloadCosts::build(&model, &workload(), &acc);
        assert!(!costs.is_schedulable());
    }
}
