//! Calibration constants of the analytical cost model.

use serde::{Deserialize, Serialize};

/// Technology and energy constants used by the cost model.
///
/// The default ([`CostConfig::paper_calibrated`]) is tuned so that the
/// paper's workloads land in the same order of magnitude as the MAESTRO
/// numbers reported in the paper (latency `1e5`–`1e6` cycles, energy
/// `1e9`–`4e9` nJ, area `1e9`–`5e9` µm²).  Only relative behaviour matters
/// for reproducing the paper's conclusions; the constants are exposed so
/// users can re-calibrate against their own technology library.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConfig {
    /// Bytes per tensor element (int8 inference → 1).
    pub bytes_per_element: f64,
    /// Energy of one MAC operation (nJ).
    pub mac_energy_nj: f64,
    /// Energy of the local-buffer traffic associated with one MAC (nJ),
    /// before the dataflow's buffer-pressure multiplier.
    pub buffer_energy_nj: f64,
    /// Energy per byte moved to/from DRAM (nJ).
    pub dram_energy_per_byte_nj: f64,
    /// Energy per byte moved across the NoC (nJ).
    pub noc_energy_per_byte_nj: f64,
    /// Silicon area of one PE including its local scratchpad (µm²), before
    /// the dataflow's buffer-pressure multiplier.
    pub pe_area_um2: f64,
    /// Area coefficient of the intra-sub-accelerator interconnect; applied
    /// to `num_pes^1.5` to model the super-linear wiring cost of larger
    /// arrays (µm²).
    pub intra_noc_area_um2: f64,
    /// Area per GB/s of NoC/NIC bandwidth (µm²).
    pub nic_area_per_gbps_um2: f64,
    /// Area of the shared global buffer and DRAM interface (µm²), paid once
    /// per accelerator.
    pub global_buffer_area_um2: f64,
    /// Local buffer capacity per PE (bytes); determines whether weights must
    /// be re-fetched from DRAM for every output tile.
    pub per_pe_buffer_bytes: f64,
    /// Fixed pipeline-fill overhead added to every layer (cycles).
    pub layer_overhead_cycles: f64,
    /// NoC bytes transferred per cycle per GB/s of allocated bandwidth
    /// (1.0 corresponds to a 1 GHz clock).
    pub bytes_per_cycle_per_gbps: f64,
}

impl CostConfig {
    /// The calibration used throughout the reproduction.
    pub fn paper_calibrated() -> Self {
        Self {
            bytes_per_element: 1.0,
            mac_energy_nj: 1.6,
            buffer_energy_nj: 1.0,
            dram_energy_per_byte_nj: 12.0,
            noc_energy_per_byte_nj: 1.0,
            pe_area_um2: 6.0e5,
            intra_noc_area_um2: 1.0e4,
            nic_area_per_gbps_um2: 4.0e6,
            global_buffer_area_um2: 1.0e8,
            per_pe_buffer_bytes: 512.0,
            layer_overhead_cycles: 64.0,
            bytes_per_cycle_per_gbps: 1.0,
        }
    }
}

impl Default for CostConfig {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_calibrated() {
        assert_eq!(CostConfig::default(), CostConfig::paper_calibrated());
    }

    #[test]
    fn constants_are_positive() {
        let c = CostConfig::paper_calibrated();
        assert!(c.mac_energy_nj > 0.0);
        assert!(c.dram_energy_per_byte_nj > c.noc_energy_per_byte_nj);
        assert!(c.pe_area_um2 > 0.0);
        assert!(c.per_pe_buffer_bytes > 0.0);
    }
}
