//! Area model of a heterogeneous accelerator.
//!
//! The paper obtains area directly from MAESTRO for a given set of
//! sub-accelerators (before mapping).  This model does the same: area only
//! depends on the hardware configuration, not on the networks mapped onto
//! it.

use crate::config::CostConfig;
use nasaic_accel::{Accelerator, SubAccelerator};

/// Area of one sub-accelerator in µm².
///
/// The model has three components:
///
/// * PE array (PEs times a per-PE area scaled by the dataflow's buffer
///   pressure — row-stationary PEs keep more state than Shidiannao PEs);
/// * intra-array interconnect, growing super-linearly (`pes^1.5`) with the
///   array size to reflect wiring cost;
/// * NIC / NoC interface area proportional to the allocated bandwidth.
pub fn sub_accelerator_area_um2(sub: &SubAccelerator, config: &CostConfig) -> f64 {
    if !sub.is_active() {
        return 0.0;
    }
    let pes = sub.num_pes as f64;
    let pe_array = pes * config.pe_area_um2 * sub.dataflow.buffer_pressure();
    let interconnect = pes.powf(1.5) * config.intra_noc_area_um2;
    let nic = sub.bandwidth_gbps as f64 * config.nic_area_per_gbps_um2;
    pe_array + interconnect + nic
}

/// Total accelerator area in µm²: the sum of the active sub-accelerators
/// plus the shared global buffer / DRAM interface.
pub fn accelerator_area_um2(accelerator: &Accelerator, config: &CostConfig) -> f64 {
    let subs: f64 = accelerator
        .sub_accelerators()
        .iter()
        .map(|s| sub_accelerator_area_um2(s, config))
        .sum();
    if accelerator.has_capacity() {
        subs + config.global_buffer_area_um2
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_accel::Dataflow;

    fn config() -> CostConfig {
        CostConfig::paper_calibrated()
    }

    #[test]
    fn inactive_sub_has_zero_area() {
        assert_eq!(
            sub_accelerator_area_um2(&SubAccelerator::inactive(Dataflow::Nvdla), &config()),
            0.0
        );
    }

    #[test]
    fn area_grows_with_pes_and_bandwidth() {
        let small = SubAccelerator::new(Dataflow::Nvdla, 512, 16);
        let more_pes = SubAccelerator::new(Dataflow::Nvdla, 1024, 16);
        let more_bw = SubAccelerator::new(Dataflow::Nvdla, 512, 32);
        let c = config();
        assert!(sub_accelerator_area_um2(&more_pes, &c) > sub_accelerator_area_um2(&small, &c));
        assert!(sub_accelerator_area_um2(&more_bw, &c) > sub_accelerator_area_um2(&small, &c));
    }

    #[test]
    fn row_stationary_pes_are_larger_than_shidiannao_pes() {
        let c = config();
        let rs = SubAccelerator::new(Dataflow::RowStationary, 1024, 16);
        let shi = SubAccelerator::new(Dataflow::Shidiannao, 1024, 16);
        assert!(sub_accelerator_area_um2(&rs, &c) > sub_accelerator_area_um2(&shi, &c));
    }

    #[test]
    fn full_budget_accelerator_lands_in_paper_magnitude() {
        // The paper's NAS->ASIC W1 design <dla,2112,48> + <shi,1984,16>
        // reports 4.71e9 um^2; we only require the same order of magnitude.
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2112, 48),
            SubAccelerator::new(Dataflow::Shidiannao, 1984, 16),
        ]);
        let area = accelerator_area_um2(&acc, &config());
        assert!(area > 1.0e9 && area < 1.0e10, "area {area}");
    }

    #[test]
    fn smaller_design_has_proportionally_smaller_area() {
        // NASAIC's W1 design <dla,576,56> + <shi,1792,8> reports 2.03e9,
        // roughly 2.3x smaller than the NAS->ASIC design; check the ordering
        // and a ratio greater than 1.4x.
        let big = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2112, 48),
            SubAccelerator::new(Dataflow::Shidiannao, 1984, 16),
        ]);
        let small = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 576, 56),
            SubAccelerator::new(Dataflow::Shidiannao, 1792, 8),
        ]);
        let c = config();
        let ratio = accelerator_area_um2(&big, &c) / accelerator_area_um2(&small, &c);
        assert!(ratio > 1.4, "ratio {ratio}");
    }

    #[test]
    fn area_of_empty_accelerator_is_zero() {
        let acc = Accelerator::new(vec![SubAccelerator::inactive(Dataflow::Nvdla)]);
        assert_eq!(accelerator_area_um2(&acc, &config()), 0.0);
    }
}
