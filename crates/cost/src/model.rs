//! The cost-model facade: per-layer latency/energy and per-accelerator
//! area.

use crate::area::accelerator_area_um2;
use crate::config::CostConfig;
use crate::mapping::MappingAnalysis;
use nasaic_accel::{Accelerator, SubAccelerator};
use nasaic_nn::layer::LayerShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Latency and energy of one layer on one sub-accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Latency in cycles.
    pub latency_cycles: f64,
    /// Energy in nanojoules.
    pub energy_nj: f64,
}

impl LayerCost {
    /// A cost marking an infeasible mapping (inactive sub-accelerator).
    pub fn infeasible() -> Self {
        Self {
            latency_cycles: f64::INFINITY,
            energy_nj: f64::INFINITY,
        }
    }

    /// `true` when the mapping is usable.
    pub fn is_feasible(&self) -> bool {
        self.latency_cycles.is_finite() && self.energy_nj.is_finite()
    }
}

/// Aggregate hardware metrics of a complete solution, matching the axes of
/// the paper's figures: latency (cycles), energy (nJ), area (µm²).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareMetrics {
    /// End-to-end workload latency (makespan) in cycles.
    pub latency_cycles: f64,
    /// Total energy in nJ.
    pub energy_nj: f64,
    /// Accelerator area in µm².
    pub area_um2: f64,
}

impl HardwareMetrics {
    /// Construct metrics.
    pub fn new(latency_cycles: f64, energy_nj: f64, area_um2: f64) -> Self {
        Self {
            latency_cycles,
            energy_nj,
            area_um2,
        }
    }

    /// Metrics of an infeasible solution.
    pub fn infeasible() -> Self {
        Self::new(f64::INFINITY, f64::INFINITY, f64::INFINITY)
    }

    /// `true` when all three metrics are finite.
    pub fn is_feasible(&self) -> bool {
        self.latency_cycles.is_finite() && self.energy_nj.is_finite() && self.area_um2.is_finite()
    }
}

impl fmt::Display for HardwareMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L={:.3e} cycles, E={:.3e} nJ, A={:.3e} um^2",
            self.latency_cycles, self.energy_nj, self.area_um2
        )
    }
}

/// The analytical cost model (MAESTRO substitute).
///
/// # Example
///
/// ```
/// use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
/// use nasaic_cost::CostModel;
///
/// let model = CostModel::paper_calibrated();
/// let acc = Accelerator::new(vec![SubAccelerator::new(Dataflow::Nvdla, 2048, 32)]);
/// assert!(model.area_um2(&acc) > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    config: CostConfig,
}

impl CostModel {
    /// Create a cost model with an explicit configuration.
    pub fn new(config: CostConfig) -> Self {
        Self { config }
    }

    /// The calibration used throughout the reproduction.
    pub fn paper_calibrated() -> Self {
        Self::new(CostConfig::paper_calibrated())
    }

    /// The configuration in use.
    pub fn config(&self) -> &CostConfig {
        &self.config
    }

    /// Mapping analysis of a layer on a sub-accelerator.
    pub fn mapping(&self, layer: &LayerShape, sub: &SubAccelerator) -> MappingAnalysis {
        MappingAnalysis::analyze(layer, sub, &self.config)
    }

    /// Latency and energy of one layer on one sub-accelerator.
    pub fn layer_cost(&self, layer: &LayerShape, sub: &SubAccelerator) -> LayerCost {
        if !sub.is_active() {
            return LayerCost::infeasible();
        }
        let mapping = self.mapping(layer, sub);
        let macs = layer.macs() as f64;
        let compute_energy = macs
            * (self.config.mac_energy_nj
                + self.config.buffer_energy_nj * sub.dataflow.buffer_pressure());
        let dram_energy = mapping.dram_traffic_bytes * self.config.dram_energy_per_byte_nj;
        let noc_energy = mapping.dram_traffic_bytes * self.config.noc_energy_per_byte_nj;
        LayerCost {
            latency_cycles: mapping.latency_cycles(),
            energy_nj: compute_energy + dram_energy + noc_energy,
        }
    }

    /// Area of an accelerator (independent of the mapped networks, as in
    /// MAESTRO).
    pub fn area_um2(&self, accelerator: &Accelerator) -> f64 {
        accelerator_area_um2(accelerator, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_accel::Dataflow;
    use nasaic_nn::backbone::Backbone;

    fn model() -> CostModel {
        CostModel::paper_calibrated()
    }

    #[test]
    fn layer_cost_is_finite_for_active_subs() {
        let layer = LayerShape::conv2d("c", 64, 64, 3, 16, 1);
        let cost = model().layer_cost(&layer, &SubAccelerator::new(Dataflow::Nvdla, 1024, 32));
        assert!(cost.is_feasible());
        assert!(cost.latency_cycles > 0.0);
        assert!(cost.energy_nj > 0.0);
    }

    #[test]
    fn inactive_sub_gives_infeasible_cost() {
        let layer = LayerShape::conv2d("c", 64, 64, 3, 16, 1);
        let cost = model().layer_cost(&layer, &SubAccelerator::inactive(Dataflow::Nvdla));
        assert!(!cost.is_feasible());
    }

    #[test]
    fn bigger_layers_cost_more_energy() {
        let m = model();
        let sub = SubAccelerator::new(Dataflow::Nvdla, 1024, 32);
        let small = m.layer_cost(&LayerShape::conv2d("s", 32, 32, 3, 16, 1), &sub);
        let big = m.layer_cost(&LayerShape::conv2d("b", 128, 128, 3, 16, 1), &sub);
        assert!(big.energy_nj > small.energy_nj);
        assert!(big.latency_cycles > small.latency_cycles);
    }

    #[test]
    fn energy_depends_on_dataflow_buffer_pressure() {
        let m = model();
        let layer = LayerShape::conv2d("c", 128, 128, 3, 16, 1);
        // Same resources, fully compute-bound utilisation difference aside,
        // row-stationary pays more buffer energy per MAC.
        let rs = m.layer_cost(
            &layer,
            &SubAccelerator::new(Dataflow::RowStationary, 4096, 64),
        );
        let shi = m.layer_cost(&layer, &SubAccelerator::new(Dataflow::Shidiannao, 4096, 64));
        assert!(rs.energy_nj > shi.energy_nj);
    }

    #[test]
    fn whole_resnet_latency_lands_in_paper_range() {
        // A mid-sized CIFAR-10 ResNet-9 on a 2048-PE NVDLA-style accelerator
        // should take on the order of 1e5..1e6 cycles, the range of the
        // paper's design specs.
        let m = model();
        let arch = Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]);
        let sub = SubAccelerator::new(Dataflow::Nvdla, 2048, 32);
        let total: f64 = arch
            .layers
            .iter()
            .map(|l| m.layer_cost(l, &sub).latency_cycles)
            .sum();
        assert!(total > 5.0e4 && total < 5.0e6, "total latency {total}");
    }

    #[test]
    fn whole_resnet_energy_lands_in_paper_range() {
        let m = model();
        let arch = Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]);
        let sub = SubAccelerator::new(Dataflow::Nvdla, 2048, 32);
        let total: f64 = arch
            .layers
            .iter()
            .map(|l| m.layer_cost(l, &sub).energy_nj)
            .sum();
        assert!(total > 1.0e8 && total < 1.0e10, "total energy {total}");
    }

    #[test]
    fn hardware_metrics_feasibility() {
        assert!(!HardwareMetrics::infeasible().is_feasible());
        assert!(HardwareMetrics::new(1.0, 1.0, 1.0).is_feasible());
        let s = HardwareMetrics::new(7.77e5, 1.43e9, 2.03e9).to_string();
        assert!(s.contains("cycles") && s.contains("nJ"));
    }
}
