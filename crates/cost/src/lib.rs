//! Analytical dataflow cost model — the MAESTRO substitute of the NASAIC
//! reproduction.
//!
//! The paper evaluates hardware cost (latency, energy, area) of a
//! (layer, sub-accelerator) pair with the MAESTRO cost model [Kwon 2019].
//! MAESTRO is not available as a Rust library, so this crate implements a
//! data-centric analytical model from scratch that preserves the
//! *behavioural properties* the co-exploration relies on:
//!
//! * each dataflow template exploits a different spatial dimension, so
//!   **NVDLA-style** designs are efficient on channel-heavy / low-resolution
//!   layers (late ResNet blocks) while **Shidiannao-style** designs are
//!   efficient on high-resolution / channel-light layers (U-Net levels,
//!   early convolutions), with **row-stationary** in between — exactly the
//!   affinity the paper uses to motivate heterogeneity;
//! * latency falls with allocated PEs until the layer's parallelism or the
//!   NoC bandwidth saturates; energy and area grow with allocated
//!   resources;
//! * absolute magnitudes are calibrated to land in the paper's reported
//!   ranges (latency around `1e5`–`1e6` cycles, energy around `1e9` nJ,
//!   area around `1e9`–`5e9` µm²) so the design-spec constants of the
//!   paper are directly usable.
//!
//! # Example
//!
//! ```
//! use nasaic_accel::{Dataflow, SubAccelerator};
//! use nasaic_cost::CostModel;
//! use nasaic_nn::layer::LayerShape;
//!
//! let model = CostModel::paper_calibrated();
//! let layer = LayerShape::conv2d("conv", 128, 256, 3, 8, 1);
//! let dla = SubAccelerator::new(Dataflow::Nvdla, 1024, 32);
//! let shi = SubAccelerator::new(Dataflow::Shidiannao, 1024, 32);
//! // A channel-heavy, low-resolution layer prefers the NVDLA template.
//! assert!(model.layer_cost(&layer, &dla).latency_cycles
//!     < model.layer_cost(&layer, &shi).latency_cycles);
//! ```

#![deny(missing_docs)]

pub mod area;
pub mod cache;
pub mod config;
pub mod mapping;
pub mod model;
pub mod table;

pub use cache::LayerCostCache;
pub use config::CostConfig;
pub use mapping::MappingAnalysis;
pub use model::{CostModel, HardwareMetrics, LayerCost};
pub use table::{LayerCostRow, NetworkCosts, WorkloadCosts};
