//! Accuracy models for the NASAIC reproduction.
//!
//! The paper trains every sampled DNN from scratch on its dataset
//! (CIFAR-10, STL-10 or Nuclei) and reads the validation accuracy/IOU.
//! Training real CNNs is outside the scope of a pure-Rust reproduction
//! (the calibration band flags exactly this gate), so this crate provides
//! two substitutes:
//!
//! 1. [`surrogate`] — a **calibrated analytical surrogate** per dataset.
//!    Accuracy follows a diminishing-returns curve in the network's
//!    capacity (log-MACs/parameters), whose endpoints are pinned to the
//!    numbers reported in the paper (e.g. CIFAR-10: 78.93 % for the
//!    smallest ResNet-9 and ~94.2 % for the largest), plus a deterministic
//!    architecture-specific residual so the search landscape is not
//!    perfectly smooth.  This is the default accuracy oracle of the
//!    framework; it preserves the *ordering* information the co-search
//!    needs at a tiny fraction of the cost.
//! 2. [`proxy`] — a real train/validate pipeline on synthetic data: a small
//!    MLP (built on `nasaic-tensor`) whose width scales with the sampled
//!    architecture, trained on a generated Gaussian-cluster classification
//!    task.  It exercises the full "train from scratch, hold out a
//!    validation split, report accuracy" code path for tests, examples and
//!    users who want an end-to-end demonstration.
//!
//! [`weighted`] implements Eq. 2 of the paper (the weighted multi-task
//! accuracy used in the reward).
//!
//! # Example
//!
//! ```
//! use nasaic_accuracy::{AccuracyModel, SurrogateModel};
//! use nasaic_nn::backbone::Backbone;
//!
//! let model = SurrogateModel::paper_calibrated();
//! let small = Backbone::ResNet9Cifar10.smallest_architecture();
//! let large = Backbone::ResNet9Cifar10.largest_architecture();
//! let acc_small = model.evaluate(Backbone::ResNet9Cifar10, &small);
//! let acc_large = model.evaluate(Backbone::ResNet9Cifar10, &large);
//! assert!(acc_large > acc_small);
//! assert!((acc_small - 0.7893).abs() < 0.01);
//! ```

#![deny(missing_docs)]

pub mod calibration;
pub mod proxy;
pub mod surrogate;
pub mod weighted;

pub use calibration::CalibrationCurve;
pub use surrogate::{AccuracyModel, SurrogateModel};
pub use weighted::AccuracyCombiner;
