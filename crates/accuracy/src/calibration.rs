//! Calibration curves pinning the surrogate to the paper's reported
//! accuracy numbers.

use nasaic_nn::backbone::Backbone;
use nasaic_nn::stats::NetworkStats;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A diminishing-returns accuracy curve in network capacity.
///
/// The curve is
///
/// ```text
/// quality(f) = q_max - (q_max - q_base) * exp(-alpha * (f - f_min))
/// ```
///
/// where `f = log10(total MACs)` is the capacity feature, `f_min` is the
/// capacity of the smallest architecture in the backbone's search space,
/// `q_base` is the paper's lower-bound accuracy (reached by the smallest
/// architecture) and `q_max` is the asymptotic ceiling.  `alpha` controls
/// how quickly accuracy saturates; it is chosen so the largest architecture
/// lands on the paper's best reported accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationCurve {
    /// Accuracy (or IOU) of the smallest architecture.
    pub q_base: f64,
    /// Asymptotic accuracy ceiling.
    pub q_max: f64,
    /// Capacity feature (`log10` MACs) of the smallest architecture.
    pub f_min: f64,
    /// Saturation rate.
    pub alpha: f64,
    /// Amplitude of the deterministic per-architecture residual.
    pub noise_amplitude: f64,
}

impl CalibrationCurve {
    /// Evaluate the curve at a capacity feature value.
    pub fn quality_at(&self, capacity_feature: f64) -> f64 {
        let delta = (capacity_feature - self.f_min).max(0.0);
        self.q_max - (self.q_max - self.q_base) * (-self.alpha * delta).exp()
    }

    /// Capacity feature of an architecture (`log10` of its MAC count).
    pub fn capacity_feature(stats: &NetworkStats) -> f64 {
        (stats.total_macs.max(1) as f64).log10()
    }

    /// Fit `alpha` so that the curve passes through
    /// `(f_target, q_target)`.
    ///
    /// # Panics
    ///
    /// Panics if `f_target <= f_min`, `q_target <= q_base` or
    /// `q_target >= q_max`.
    pub fn fitted(
        q_base: f64,
        q_max: f64,
        f_min: f64,
        f_target: f64,
        q_target: f64,
        noise_amplitude: f64,
    ) -> Self {
        assert!(f_target > f_min, "target capacity must exceed minimum");
        assert!(
            q_target > q_base && q_target < q_max,
            "target quality must lie strictly between q_base and q_max"
        );
        let alpha = -((q_max - q_target) / (q_max - q_base)).ln() / (f_target - f_min);
        Self {
            q_base,
            q_max,
            f_min,
            alpha,
            noise_amplitude,
        }
    }
}

/// Fit the calibration curve of one backbone from its search-space
/// endpoints.  This materialises the smallest and largest architectures
/// and walks their layer tables — the expensive step the process-wide
/// [`curve_table`] amortises to exactly once per backbone.
fn fit_curve(backbone: Backbone) -> CalibrationCurve {
    let small = NetworkStats::of(&backbone.smallest_architecture());
    let large = NetworkStats::of(&backbone.largest_architecture());
    let f_min = CalibrationCurve::capacity_feature(&small);
    let f_max = CalibrationCurve::capacity_feature(&large);
    match backbone {
        // CIFAR-10 ResNet-9: 78.93 % for the smallest network (Fig. 6),
        // 94.17 % for the architecture NAS finds with unlimited resources
        // (Table I/II).
        Backbone::ResNet9Cifar10 => {
            CalibrationCurve::fitted(0.7893, 0.9550, f_min, f_max, 0.9425, 0.004)
        }
        // STL-10 ResNet-9: 71.57 % lower bound, 76.5 % for the best NAS
        // architecture (Table I).
        Backbone::ResNet9Stl10 => {
            CalibrationCurve::fitted(0.7157, 0.7760, f_min, f_max, 0.7680, 0.004)
        }
        // Nuclei U-Net: IOU 0.642 lower bound (the paper reports 0.6462 in
        // the text and 0.642 in the figure; we use the figure value),
        // 0.8394 for the best NAS architecture (Table I).
        Backbone::UNetNuclei => {
            CalibrationCurve::fitted(0.642, 0.8460, f_min, f_max, 0.8400, 0.003)
        }
    }
}

/// Index of a backbone in the fitted-curve table.
fn curve_index(backbone: Backbone) -> usize {
    match backbone {
        Backbone::ResNet9Cifar10 => 0,
        Backbone::ResNet9Stl10 => 1,
        Backbone::UNetNuclei => 2,
    }
}

/// The process-wide table of fitted curves, built on first use.
///
/// Fitting a curve re-materialises both search-space endpoint
/// architectures; before this table existed the surrogate paid that cost
/// on **every** `evaluate` call.  The fit is deterministic, so serving
/// the memoised [`CalibrationCurve`] (a `Copy` struct) is bit-identical
/// to refitting.
fn curve_table() -> &'static [CalibrationCurve; 3] {
    static CURVES: OnceLock<[CalibrationCurve; 3]> = OnceLock::new();
    CURVES.get_or_init(|| {
        [
            fit_curve(Backbone::ResNet9Cifar10),
            fit_curve(Backbone::ResNet9Stl10),
            fit_curve(Backbone::UNetNuclei),
        ]
    })
}

/// The CIFAR-10 ResNet-9 calibration (memoised; see [`curve_for`]).
pub fn cifar10_curve() -> CalibrationCurve {
    curve_for(Backbone::ResNet9Cifar10)
}

/// The STL-10 ResNet-9 calibration (memoised; see [`curve_for`]).
pub fn stl10_curve() -> CalibrationCurve {
    curve_for(Backbone::ResNet9Stl10)
}

/// The Nuclei U-Net calibration (memoised; see [`curve_for`]).
pub fn nuclei_curve() -> CalibrationCurve {
    curve_for(Backbone::UNetNuclei)
}

/// The calibration curve for a backbone — a table lookup after the first
/// call per process.
pub fn curve_for(backbone: Backbone) -> CalibrationCurve {
    curve_table()[curve_index(backbone)]
}

/// Fit a backbone's curve from scratch, bypassing the memo table.
///
/// Retained as the reference for the `eval_baseline` identity gate and
/// for tests asserting the table serves exactly what a fresh fit
/// produces.  Not a hot-path API.
pub fn curve_for_reference(backbone: Backbone) -> CalibrationCurve {
    fit_curve(backbone)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_in_capacity() {
        let c = cifar10_curve();
        let mut prev = 0.0;
        for step in 0..20 {
            let f = c.f_min + step as f64 * 0.2;
            let q = c.quality_at(f);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn curve_endpoints_match_paper_numbers() {
        let c = cifar10_curve();
        assert!((c.quality_at(c.f_min) - 0.7893).abs() < 1e-9);
        let large = NetworkStats::of(&Backbone::ResNet9Cifar10.largest_architecture());
        let q_large = c.quality_at(CalibrationCurve::capacity_feature(&large));
        assert!((q_large - 0.9425).abs() < 1e-9);
    }

    #[test]
    fn curve_never_exceeds_ceiling() {
        let c = nuclei_curve();
        assert!(c.quality_at(100.0) <= c.q_max);
        assert!(c.quality_at(c.f_min - 5.0) >= c.q_base - 1e-12);
    }

    #[test]
    fn all_backbone_curves_are_well_formed() {
        for backbone in Backbone::all() {
            let c = curve_for(backbone);
            assert!(c.alpha > 0.0);
            assert!(c.q_max > c.q_base);
            assert!(c.noise_amplitude < 0.01);
        }
    }

    #[test]
    fn stl10_curve_is_flatter_than_cifar() {
        // STL-10 accuracy range (71.6 - 77.6) is narrower than CIFAR-10's
        // (78.9 - 94.6); the curve amplitudes reflect that.
        let cifar = cifar10_curve();
        let stl = stl10_curve();
        assert!(cifar.q_max - cifar.q_base > stl.q_max - stl.q_base);
    }

    #[test]
    #[should_panic]
    fn fitted_rejects_target_below_base() {
        CalibrationCurve::fitted(0.8, 0.9, 1.0, 2.0, 0.7, 0.0);
    }

    #[test]
    fn memoised_curves_are_bit_identical_to_fresh_fits() {
        for backbone in Backbone::all() {
            let cached = curve_for(backbone);
            let fresh = curve_for_reference(backbone);
            assert_eq!(cached.q_base.to_bits(), fresh.q_base.to_bits());
            assert_eq!(cached.q_max.to_bits(), fresh.q_max.to_bits());
            assert_eq!(cached.f_min.to_bits(), fresh.f_min.to_bits());
            assert_eq!(cached.alpha.to_bits(), fresh.alpha.to_bits());
            assert_eq!(
                cached.noise_amplitude.to_bits(),
                fresh.noise_amplitude.to_bits()
            );
        }
    }
}
