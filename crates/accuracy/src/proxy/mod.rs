//! Proxy training path: a real train/validate pipeline on synthetic data.
//!
//! The paper's evaluator trains every sampled DNN from scratch and reports
//! validation accuracy.  This module reproduces that *code path* — dataset
//! split, mini-batch gradient descent, held-out validation — with a small
//! MLP on a synthetic Gaussian-cluster classification task, sized according
//! to the sampled architecture.  It is deliberately cheap enough to run in
//! unit tests while exercising the full `nasaic-tensor` training stack.

pub mod data;
pub mod mlp;
pub mod train;

pub use data::SyntheticDataset;
pub use mlp::{Mlp, MlpScratch};
pub use train::{ProxyAccuracyModel, ProxyTrainer, TrainReport};
