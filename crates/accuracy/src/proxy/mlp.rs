//! A small multi-layer perceptron with manual backpropagation, built on
//! `nasaic-tensor`.

use nasaic_tensor::activation::{relu, relu_derivative, softmax};
use nasaic_tensor::{init, Adam, Matrix, Optimizer};
use rand::Rng;

/// A two-hidden-layer MLP classifier trained with cross-entropy loss.
#[derive(Debug, Clone)]
pub struct Mlp {
    w1: Matrix,
    b1: Matrix,
    w2: Matrix,
    b2: Matrix,
    opt_w1: Adam,
    opt_b1: Adam,
    opt_w2: Adam,
    opt_b2: Adam,
}

impl Mlp {
    /// Create an MLP with the given layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero or the learning rate is non-positive.
    pub fn new<R: Rng>(
        rng: &mut R,
        num_features: usize,
        hidden: usize,
        num_classes: usize,
        learning_rate: f64,
    ) -> Self {
        assert!(num_features > 0 && hidden > 0 && num_classes > 0);
        Self {
            w1: init::he_uniform(rng, hidden, num_features),
            b1: Matrix::zeros(hidden, 1),
            w2: init::xavier_uniform(rng, num_classes, hidden),
            b2: Matrix::zeros(num_classes, 1),
            opt_w1: Adam::new(learning_rate),
            opt_b1: Adam::new(learning_rate),
            opt_w2: Adam::new(learning_rate),
            opt_b2: Adam::new(learning_rate),
        }
    }

    /// Hidden-layer width.
    pub fn hidden_size(&self) -> usize {
        self.w1.rows()
    }

    fn forward(&self, features: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let x = Matrix::col_vector(features);
        let pre_hidden = &self.w1.matmul(&x) + &self.b1;
        let hidden: Vec<f64> = pre_hidden.as_slice().iter().map(|&v| relu(v)).collect();
        let h = Matrix::col_vector(&hidden);
        let logits_m = &self.w2.matmul(&h) + &self.b2;
        let logits = logits_m.as_slice().to_vec();
        (pre_hidden.into_vec(), hidden, logits)
    }

    /// Class probabilities for one example.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let (_, _, logits) = self.forward(features);
        softmax(&logits)
    }

    /// Most likely class for one example.
    pub fn predict(&self, features: &[f64]) -> usize {
        let probabilities = self.predict_proba(features);
        probabilities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// One stochastic-gradient step on a single example; returns the
    /// cross-entropy loss before the update.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range for the output layer.
    pub fn train_step(&mut self, features: &[f64], label: usize) -> f64 {
        assert!(label < self.w2.rows(), "label out of range");
        let (pre_hidden, hidden, logits) = self.forward(features);
        let probabilities = softmax(&logits);
        let loss = -(probabilities[label].max(1e-300)).ln();

        // dL/dlogits = p - onehot(label)
        let mut dlogits = probabilities;
        dlogits[label] -= 1.0;
        let dlogits_m = Matrix::col_vector(&dlogits);
        let hidden_m = Matrix::col_vector(&hidden);

        let dw2 = dlogits_m.matmul(&hidden_m.transpose());
        let db2 = dlogits_m.clone();

        // Backprop into the hidden layer.
        let dhidden = self.w2.transpose().matmul(&dlogits_m);
        let dpre: Vec<f64> = dhidden
            .as_slice()
            .iter()
            .zip(pre_hidden.iter())
            .map(|(&g, &z)| g * relu_derivative(z))
            .collect();
        let dpre_m = Matrix::col_vector(&dpre);
        let x = Matrix::col_vector(features);
        let dw1 = dpre_m.matmul(&x.transpose());
        let db1 = dpre_m;

        self.opt_w2.step(&mut self.w2, &dw2);
        self.opt_b2.step(&mut self.b2, &db2);
        self.opt_w1.step(&mut self.w1, &dw1);
        self.opt_b1.step(&mut self.b1, &db1);
        loss
    }

    /// Classification accuracy over a labelled set.
    ///
    /// Returns 0 for an empty set.
    pub fn accuracy(&self, features: &[Vec<f64>], labels: &[usize]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        let correct = features
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / features.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::data::SyntheticDataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn predictions_are_valid_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut rng, 4, 8, 3, 0.01);
        let p = mlp.predict_proba(&[0.1, -0.5, 0.3, 0.9]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(mlp.predict(&[0.1, -0.5, 0.3, 0.9]) < 3);
    }

    #[test]
    fn training_reduces_loss_on_a_fixed_example() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&mut rng, 4, 16, 2, 0.02);
        let x = [1.0, -1.0, 0.5, 0.2];
        let first = mlp.train_step(&x, 1);
        let mut last = first;
        for _ in 0..100 {
            last = mlp.train_step(&x, 1);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn mlp_learns_separable_clusters() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = SyntheticDataset::gaussian_clusters(&mut rng, 3, 6, 60, 0.15);
        let mut mlp = Mlp::new(&mut rng, 6, 24, 3, 0.01);
        for _ in 0..8 {
            for (x, &y) in ds.train_features.iter().zip(&ds.train_labels) {
                mlp.train_step(x, y);
            }
        }
        let acc = mlp.accuracy(&ds.val_features, &ds.val_labels);
        assert!(acc > 0.9, "validation accuracy {acc}");
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(&mut rng, 2, 4, 2, 0.01);
        assert_eq!(mlp.accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(&mut rng, 2, 4, 2, 0.01);
        mlp.train_step(&[0.0, 0.0], 5);
    }
}
