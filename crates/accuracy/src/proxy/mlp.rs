//! A small multi-layer perceptron with manual backpropagation, built on
//! `nasaic-tensor`.
//!
//! The forward and backward passes run entirely on caller-provided
//! [`MlpScratch`] buffers (see the "Evaluator hot path" section of
//! `docs/performance.md` for the ownership rules): once the buffers have
//! grown to the topology's sizes, a full train step performs zero heap
//! allocations.  The convenience methods without a scratch parameter
//! allocate a fresh scratch per call and exist for tests and one-off use.

use nasaic_tensor::activation::{relu, relu_derivative, softmax_into};
use nasaic_tensor::{init, Adam, Matrix, Optimizer};
use rand::Rng;

/// Reusable buffers for [`Mlp`] forward/backward passes.
///
/// Every intermediate activation, probability vector and parameter
/// gradient of a pass lives here instead of being allocated per call.
/// Ownership rules:
///
/// * the caller owns the scratch and may reuse one instance across
///   examples, epochs and even across different [`Mlp`] instances — each
///   pass overwrites everything it reads;
/// * buffer contents between calls are unspecified (borrow results such
///   as [`Mlp::predict_proba_with`]'s slice before the next pass);
/// * an empty (`default`) scratch is always valid — buffers grow on
///   first use and then stay at the high-water mark.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    pre_hidden: Vec<f64>,
    hidden: Vec<f64>,
    logits: Vec<f64>,
    probs: Vec<f64>,
    dhidden: Vec<f64>,
    dpre: Vec<f64>,
    dw1: Matrix,
    db1: Matrix,
    dw2: Matrix,
    db2: Matrix,
}

impl MlpScratch {
    /// Create an empty scratch; buffers grow to the topology's sizes on
    /// first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A two-hidden-layer MLP classifier trained with cross-entropy loss.
#[derive(Debug, Clone)]
pub struct Mlp {
    w1: Matrix,
    b1: Matrix,
    w2: Matrix,
    b2: Matrix,
    opt_w1: Adam,
    opt_b1: Adam,
    opt_w2: Adam,
    opt_b2: Adam,
}

impl Mlp {
    /// Create an MLP with the given layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero or the learning rate is non-positive.
    pub fn new<R: Rng>(
        rng: &mut R,
        num_features: usize,
        hidden: usize,
        num_classes: usize,
        learning_rate: f64,
    ) -> Self {
        assert!(num_features > 0 && hidden > 0 && num_classes > 0);
        Self {
            w1: init::he_uniform(rng, hidden, num_features),
            b1: Matrix::zeros(hidden, 1),
            w2: init::xavier_uniform(rng, num_classes, hidden),
            b2: Matrix::zeros(num_classes, 1),
            opt_w1: Adam::new(learning_rate),
            opt_b1: Adam::new(learning_rate),
            opt_w2: Adam::new(learning_rate),
            opt_b2: Adam::new(learning_rate),
        }
    }

    /// Hidden-layer width.
    pub fn hidden_size(&self) -> usize {
        self.w1.rows()
    }

    /// Forward pass into the scratch's activation buffers.
    fn forward_into(&self, features: &[f64], scratch: &mut MlpScratch) {
        self.w1.matvec_into(features, &mut scratch.pre_hidden);
        for (v, b) in scratch.pre_hidden.iter_mut().zip(self.b1.as_slice()) {
            *v += b;
        }
        scratch.hidden.clear();
        scratch
            .hidden
            .extend(scratch.pre_hidden.iter().map(|&v| relu(v)));
        self.w2.matvec_into(&scratch.hidden, &mut scratch.logits);
        for (v, b) in scratch.logits.iter_mut().zip(self.b2.as_slice()) {
            *v += b;
        }
    }

    /// Class probabilities for one example, using caller-provided scratch.
    ///
    /// The returned slice borrows the scratch and is valid until the next
    /// pass through it.
    pub fn predict_proba_with<'a>(
        &self,
        features: &[f64],
        scratch: &'a mut MlpScratch,
    ) -> &'a [f64] {
        self.forward_into(features, scratch);
        softmax_into(&scratch.logits, &mut scratch.probs);
        &scratch.probs
    }

    /// Class probabilities for one example (allocating convenience form).
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let mut scratch = MlpScratch::new();
        self.predict_proba_with(features, &mut scratch).to_vec()
    }

    /// Most likely class for one example, using caller-provided scratch.
    pub fn predict_with(&self, features: &[f64], scratch: &mut MlpScratch) -> usize {
        self.predict_proba_with(features, scratch)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Most likely class for one example (allocating convenience form).
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut scratch = MlpScratch::new();
        self.predict_with(features, &mut scratch)
    }

    /// One stochastic-gradient step on a single example, using
    /// caller-provided scratch; returns the cross-entropy loss before the
    /// update.  Zero heap allocations once the scratch is warm.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range for the output layer.
    pub fn train_step_with(
        &mut self,
        features: &[f64],
        label: usize,
        scratch: &mut MlpScratch,
    ) -> f64 {
        assert!(label < self.w2.rows(), "label out of range");
        self.forward_into(features, scratch);
        softmax_into(&scratch.logits, &mut scratch.probs);
        let loss = -(scratch.probs[label].max(1e-300)).ln();

        // dL/dlogits = p - onehot(label); reuses the probability buffer.
        scratch.probs[label] -= 1.0;
        scratch.dw2.set_outer(&scratch.probs, &scratch.hidden);
        scratch.db2.set_col_vector(&scratch.probs);

        // Backprop into the hidden layer.
        self.w2.matvec_tn_into(&scratch.probs, &mut scratch.dhidden);
        scratch.dpre.clear();
        scratch.dpre.extend(
            scratch
                .dhidden
                .iter()
                .zip(&scratch.pre_hidden)
                .map(|(&g, &z)| g * relu_derivative(z)),
        );
        scratch.dw1.set_outer(&scratch.dpre, features);
        scratch.db1.set_col_vector(&scratch.dpre);

        self.opt_w2.step(&mut self.w2, &scratch.dw2);
        self.opt_b2.step(&mut self.b2, &scratch.db2);
        self.opt_w1.step(&mut self.w1, &scratch.dw1);
        self.opt_b1.step(&mut self.b1, &scratch.db1);
        loss
    }

    /// One stochastic-gradient step (allocating convenience form).
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range for the output layer.
    pub fn train_step(&mut self, features: &[f64], label: usize) -> f64 {
        let mut scratch = MlpScratch::new();
        self.train_step_with(features, label, &mut scratch)
    }

    /// Classification accuracy over a labelled set, using caller-provided
    /// scratch.
    ///
    /// Returns 0 for an empty set.
    pub fn accuracy_with(
        &self,
        features: &[Vec<f64>],
        labels: &[usize],
        scratch: &mut MlpScratch,
    ) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        let correct = features
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict_with(x, scratch) == y)
            .count();
        correct as f64 / features.len() as f64
    }

    /// Classification accuracy over a labelled set (allocating
    /// convenience form).
    ///
    /// Returns 0 for an empty set.
    pub fn accuracy(&self, features: &[Vec<f64>], labels: &[usize]) -> f64 {
        let mut scratch = MlpScratch::new();
        self.accuracy_with(features, labels, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::data::SyntheticDataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn predictions_are_valid_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut rng, 4, 8, 3, 0.01);
        let p = mlp.predict_proba(&[0.1, -0.5, 0.3, 0.9]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(mlp.predict(&[0.1, -0.5, 0.3, 0.9]) < 3);
    }

    #[test]
    fn training_reduces_loss_on_a_fixed_example() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&mut rng, 4, 16, 2, 0.02);
        let x = [1.0, -1.0, 0.5, 0.2];
        let first = mlp.train_step(&x, 1);
        let mut last = first;
        for _ in 0..100 {
            last = mlp.train_step(&x, 1);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn mlp_learns_separable_clusters() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = SyntheticDataset::gaussian_clusters(&mut rng, 3, 6, 60, 0.15);
        let mut mlp = Mlp::new(&mut rng, 6, 24, 3, 0.01);
        for _ in 0..8 {
            for (x, &y) in ds.train_features.iter().zip(&ds.train_labels) {
                mlp.train_step(x, y);
            }
        }
        let acc = mlp.accuracy(&ds.val_features, &ds.val_labels);
        assert!(acc > 0.9, "validation accuracy {acc}");
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(&mut rng, 2, 4, 2, 0.01);
        assert_eq!(mlp.accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(&mut rng, 2, 4, 2, 0.01);
        mlp.train_step(&[0.0, 0.0], 5);
    }

    /// The pre-scratch train step, kept verbatim as the oracle for the
    /// zero-alloc rewrite: every Matrix op here allocates.
    fn reference_train_step(mlp: &mut Mlp, features: &[f64], label: usize) -> f64 {
        use nasaic_tensor::activation::softmax;
        let x = Matrix::col_vector(features);
        let pre_hidden = &mlp.w1.matmul(&x) + &mlp.b1;
        let hidden: Vec<f64> = pre_hidden.as_slice().iter().map(|&v| relu(v)).collect();
        let h = Matrix::col_vector(&hidden);
        let logits_m = &mlp.w2.matmul(&h) + &mlp.b2;
        let probabilities = softmax(logits_m.as_slice());
        let loss = -(probabilities[label].max(1e-300)).ln();

        let mut dlogits = probabilities;
        dlogits[label] -= 1.0;
        let dlogits_m = Matrix::col_vector(&dlogits);
        let hidden_m = Matrix::col_vector(&hidden);
        let dw2 = dlogits_m.matmul(&hidden_m.transpose());
        let db2 = dlogits_m.clone();
        let dhidden = mlp.w2.transpose().matmul(&dlogits_m);
        let dpre: Vec<f64> = dhidden
            .as_slice()
            .iter()
            .zip(pre_hidden.as_slice())
            .map(|(&g, &z)| g * relu_derivative(z))
            .collect();
        let dpre_m = Matrix::col_vector(&dpre);
        let dw1 = dpre_m.matmul(&x.transpose());
        let db1 = dpre_m;

        mlp.opt_w2.step(&mut mlp.w2, &dw2);
        mlp.opt_b2.step(&mut mlp.b2, &db2);
        mlp.opt_w1.step(&mut mlp.w1, &dw1);
        mlp.opt_b1.step(&mut mlp.b1, &db1);
        loss
    }

    fn assert_matrix_bits_equal(a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "parameter mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn scratch_train_step_is_bit_identical_to_matmul_composition() {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = SyntheticDataset::gaussian_clusters(&mut rng, 3, 5, 20, 0.2);
        // 9 hidden units: not a multiple of the kernel unroll width.
        let mut fast = Mlp::new(&mut rng, 5, 9, 3, 0.015);
        let mut reference = fast.clone();
        let mut scratch = MlpScratch::new();
        for (x, &y) in ds.train_features.iter().zip(&ds.train_labels) {
            let loss_fast = fast.train_step_with(x, y, &mut scratch);
            let loss_reference = reference_train_step(&mut reference, x, y);
            assert_eq!(loss_fast.to_bits(), loss_reference.to_bits());
        }
        assert_matrix_bits_equal(&fast.w1, &reference.w1);
        assert_matrix_bits_equal(&fast.b1, &reference.b1);
        assert_matrix_bits_equal(&fast.w2, &reference.w2);
        assert_matrix_bits_equal(&fast.b2, &reference.b2);
        // Inference paths agree too, through the same shared scratch.
        for x in &ds.val_features {
            let p_fast = fast.predict_proba_with(x, &mut scratch).to_vec();
            let p_reference = reference.predict_proba(x);
            for (a, b) in p_fast.iter().zip(&p_reference) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
