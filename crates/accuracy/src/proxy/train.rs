//! The proxy trainer: turn a sampled architecture into a trained MLP and a
//! held-out validation accuracy.

use crate::proxy::data::SyntheticDataset;
use crate::proxy::mlp::{Mlp, MlpScratch};
use crate::surrogate::AccuracyModel;
use nasaic_nn::backbone::Backbone;
use nasaic_nn::layer::Architecture;
use nasaic_nn::stats::NetworkStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the proxy training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProxyTrainer {
    /// Number of classes of the synthetic task.
    pub num_classes: usize,
    /// Feature dimensionality of the synthetic task.
    pub num_features: usize,
    /// Samples generated per class.
    pub samples_per_class: usize,
    /// Cluster spread (larger = harder task).
    pub spread: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate of the Adam optimizer.
    pub learning_rate: f64,
    /// RNG seed for dataset generation and weight initialisation.
    pub seed: u64,
}

impl ProxyTrainer {
    /// A configuration small enough for unit tests (a few milliseconds).
    pub fn fast() -> Self {
        Self {
            num_classes: 6,
            num_features: 6,
            samples_per_class: 40,
            spread: 0.75,
            epochs: 3,
            learning_rate: 0.01,
            seed: 42,
        }
    }

    /// Hidden width derived from the architecture's capacity: larger
    /// sampled networks get proportionally wider proxies (between 4 and 64
    /// hidden units), so the proxy preserves the capacity ordering.
    pub fn hidden_size_for(&self, architecture: &Architecture) -> usize {
        let stats = NetworkStats::of(architecture);
        let capacity = (stats.total_macs.max(1) as f64).log10();
        // Map capacity roughly in [6.5, 10] to [4, 64].
        let scaled = ((capacity - 6.5) / 3.5).clamp(0.0, 1.0);
        (4.0 + scaled * 60.0).round() as usize
    }

    /// Train a proxy for an architecture and return the detailed report.
    pub fn train(&self, architecture: &Architecture) -> TrainReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dataset = SyntheticDataset::gaussian_clusters(
            &mut rng,
            self.num_classes,
            self.num_features,
            self.samples_per_class,
            self.spread,
        );
        let hidden = self.hidden_size_for(architecture);
        let mut mlp = Mlp::new(
            &mut rng,
            self.num_features,
            hidden,
            self.num_classes,
            self.learning_rate,
        );
        // One scratch for the whole run: every step and every validation
        // pass reuses the same buffers, so after the first example the
        // training loop allocates nothing.
        let mut scratch = MlpScratch::new();
        let mut final_train_loss = f64::INFINITY;
        for _ in 0..self.epochs {
            let mut epoch_loss = 0.0;
            for (x, &y) in dataset.train_features.iter().zip(&dataset.train_labels) {
                epoch_loss += mlp.train_step_with(x, y, &mut scratch);
            }
            final_train_loss = epoch_loss / dataset.train_len() as f64;
        }
        TrainReport {
            hidden_size: hidden,
            train_loss: final_train_loss,
            train_accuracy: mlp.accuracy_with(
                &dataset.train_features,
                &dataset.train_labels,
                &mut scratch,
            ),
            validation_accuracy: mlp.accuracy_with(
                &dataset.val_features,
                &dataset.val_labels,
                &mut scratch,
            ),
        }
    }
}

impl Default for ProxyTrainer {
    fn default() -> Self {
        Self::fast()
    }
}

/// Outcome of one proxy training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Hidden width used for the proxy MLP.
    pub hidden_size: usize,
    /// Final average training loss.
    pub train_loss: f64,
    /// Accuracy on the training split.
    pub train_accuracy: f64,
    /// Accuracy on the held-out validation split (the number reported to
    /// the reward).
    pub validation_accuracy: f64,
}

/// [`AccuracyModel`] adapter around the proxy trainer, so the NASAIC
/// evaluator can swap the surrogate for actual training.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ProxyAccuracyModel {
    /// Training configuration.
    pub trainer: ProxyTrainer,
}

impl AccuracyModel for ProxyAccuracyModel {
    fn evaluate(&self, _backbone: Backbone, architecture: &Architecture) -> f64 {
        self.trainer.train(architecture).validation_accuracy
    }

    fn name(&self) -> &str {
        "proxy-trainer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_training_produces_sensible_accuracy() {
        let trainer = ProxyTrainer::fast();
        let arch = Backbone::ResNet9Cifar10.materialize_values(&[16, 64, 1, 128, 1, 128, 1]);
        let report = trainer.train(&arch);
        assert!(
            report.validation_accuracy > 0.5,
            "accuracy {}",
            report.validation_accuracy
        );
        assert!(report.train_accuracy >= report.validation_accuracy - 0.2);
        assert!(report.train_loss.is_finite());
    }

    #[test]
    fn hidden_size_scales_with_architecture_capacity() {
        let trainer = ProxyTrainer::fast();
        let small = Backbone::ResNet9Cifar10.smallest_architecture();
        let large = Backbone::ResNet9Cifar10.largest_architecture();
        assert!(trainer.hidden_size_for(&large) > trainer.hidden_size_for(&small));
        assert!(trainer.hidden_size_for(&small) >= 4);
        assert!(trainer.hidden_size_for(&large) <= 64);
    }

    #[test]
    fn proxy_training_is_deterministic_for_a_seed() {
        let trainer = ProxyTrainer::fast();
        let arch = Backbone::UNetNuclei.materialize_values(&[2, 8, 16, 16, 32, 64]);
        let a = trainer.train(&arch);
        let b = trainer.train(&arch);
        assert_eq!(a, b);
    }

    #[test]
    fn accuracy_model_adapter_reports_name() {
        let model = ProxyAccuracyModel::default();
        assert_eq!(model.name(), "proxy-trainer");
        let arch = Backbone::ResNet9Cifar10.smallest_architecture();
        let acc = model.evaluate(Backbone::ResNet9Cifar10, &arch);
        assert!((0.0..=1.0).contains(&acc));
    }
}
