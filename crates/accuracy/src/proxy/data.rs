//! Synthetic classification datasets for the proxy trainer.

use rand::Rng;

/// A labelled, in-memory classification dataset split into training and
/// validation halves.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticDataset {
    /// Feature dimensionality.
    pub num_features: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training features, one row per example.
    pub train_features: Vec<Vec<f64>>,
    /// Training labels.
    pub train_labels: Vec<usize>,
    /// Validation features.
    pub val_features: Vec<Vec<f64>>,
    /// Validation labels.
    pub val_labels: Vec<usize>,
}

impl SyntheticDataset {
    /// Generate a Gaussian-cluster classification task.
    ///
    /// Each class gets a random centroid on a hypersphere; examples are the
    /// centroid plus isotropic noise of standard deviation `spread`.  An
    /// 80/20 train/validation split is applied per class so both splits are
    /// balanced.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero or `spread` is negative.
    pub fn gaussian_clusters<R: Rng>(
        rng: &mut R,
        num_classes: usize,
        num_features: usize,
        samples_per_class: usize,
        spread: f64,
    ) -> Self {
        assert!(num_classes > 1, "need at least two classes");
        assert!(num_features > 0, "need at least one feature");
        assert!(
            samples_per_class >= 5,
            "need at least five samples per class"
        );
        assert!(spread >= 0.0, "spread must be non-negative");

        let mut centroids = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            let raw: Vec<f64> = (0..num_features)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let norm = raw.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-9);
            centroids.push(
                raw.into_iter()
                    .map(|v| 2.0 * v / norm)
                    .collect::<Vec<f64>>(),
            );
        }

        let mut train_features = Vec::new();
        let mut train_labels = Vec::new();
        let mut val_features = Vec::new();
        let mut val_labels = Vec::new();
        let val_per_class = (samples_per_class / 5).max(1);

        for (label, centroid) in centroids.iter().enumerate() {
            for i in 0..samples_per_class {
                let example: Vec<f64> = centroid
                    .iter()
                    .map(|&c| {
                        let noise: f64 =
                            (0..4).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 2.0;
                        c + noise * spread
                    })
                    .collect();
                if i < val_per_class {
                    val_features.push(example);
                    val_labels.push(label);
                } else {
                    train_features.push(example);
                    train_labels.push(label);
                }
            }
        }

        Self {
            num_features,
            num_classes,
            train_features,
            train_labels,
            val_features,
            val_labels,
        }
    }

    /// Number of training examples.
    pub fn train_len(&self) -> usize {
        self.train_features.len()
    }

    /// Number of validation examples.
    pub fn val_len(&self) -> usize {
        self.val_features.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dataset_has_balanced_splits() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = SyntheticDataset::gaussian_clusters(&mut rng, 4, 8, 50, 0.2);
        assert_eq!(ds.num_classes, 4);
        assert_eq!(ds.train_len(), 4 * 40);
        assert_eq!(ds.val_len(), 4 * 10);
        assert_eq!(ds.train_features[0].len(), 8);
        // Every class appears in validation.
        for class in 0..4 {
            assert!(ds.val_labels.contains(&class));
        }
    }

    #[test]
    fn zero_spread_collapses_examples_onto_centroids() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = SyntheticDataset::gaussian_clusters(&mut rng, 2, 3, 10, 0.0);
        // All examples of a class are identical.
        let first_label = ds.train_labels[0];
        let reference = &ds.train_features[0];
        for (features, &label) in ds.train_features.iter().zip(&ds.train_labels) {
            if label == first_label {
                assert_eq!(features, reference);
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = SyntheticDataset::gaussian_clusters(&mut StdRng::seed_from_u64(7), 3, 4, 20, 0.3);
        let b = SyntheticDataset::gaussian_clusters(&mut StdRng::seed_from_u64(7), 3, 4, 20, 0.3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn single_class_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        SyntheticDataset::gaussian_clusters(&mut rng, 1, 4, 20, 0.3);
    }
}
