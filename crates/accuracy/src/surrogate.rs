//! The calibrated accuracy surrogate — the default accuracy oracle of the
//! reproduction.

use crate::calibration::{curve_for, CalibrationCurve};
use nasaic_nn::backbone::Backbone;
use nasaic_nn::layer::Architecture;
use nasaic_nn::stats::NetworkStats;
use serde::{Deserialize, Serialize};

/// An accuracy oracle: maps a concrete architecture (for a given backbone /
/// dataset) to a quality score in `[0, 1]` — classification accuracy or
/// segmentation IOU, matching the paper's metrics.
pub trait AccuracyModel {
    /// Evaluate the architecture's quality on the backbone's dataset.
    fn evaluate(&self, backbone: Backbone, architecture: &Architecture) -> f64;

    /// Human-readable name of the oracle (for experiment logs).
    fn name(&self) -> &str {
        "accuracy-model"
    }
}

/// The calibrated analytical surrogate (see crate-level documentation).
///
/// Quality is a diminishing-returns function of the architecture's capacity
/// plus a deterministic, architecture-specific residual and a small reward
/// for depth (extra residual/encoder levels), making the landscape rugged
/// enough that search is non-trivial while preserving the paper's reported
/// endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogateModel {
    /// Scale applied to the deterministic residual (1.0 = calibrated
    /// default; 0.0 disables the residual entirely).
    pub noise_scale: f64,
    /// Seed mixed into the deterministic residual so independent
    /// experiments can decorrelate their landscapes.
    pub seed: u64,
}

impl SurrogateModel {
    /// The calibration used throughout the reproduction.
    pub fn paper_calibrated() -> Self {
        Self {
            noise_scale: 1.0,
            seed: 0x5a5a_1234,
        }
    }

    /// A perfectly smooth surrogate (no residual); useful for tests that
    /// need exact monotonicity in capacity.
    pub fn smooth() -> Self {
        Self {
            noise_scale: 0.0,
            seed: 0,
        }
    }

    /// Replace the residual seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn residual(
        &self,
        backbone: Backbone,
        architecture: &Architecture,
        curve: &CalibrationCurve,
    ) -> f64 {
        if self.noise_scale == 0.0 {
            return 0.0;
        }
        // Deterministic hash of the hyperparameter vector.
        let mut h: u64 = self.seed ^ (backbone as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &v in &architecture.hyperparameters {
            h ^= (v as u64)
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(h << 6)
                .wrapping_add(h >> 2);
        }
        // Map to [-1, 1).
        let unit = ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        unit * curve.noise_amplitude * self.noise_scale
    }
}

impl Default for SurrogateModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

impl AccuracyModel for SurrogateModel {
    fn evaluate(&self, backbone: Backbone, architecture: &Architecture) -> f64 {
        let curve = curve_for(backbone);
        let stats = NetworkStats::of(architecture);
        let capacity = CalibrationCurve::capacity_feature(&stats);
        let base = curve.quality_at(capacity);
        // Depth reward: at equal MAC count, deeper networks generalise a
        // little better (up to +0.3%).
        let depth_bonus = 0.003 * (stats.depth() as f64 / 20.0).min(1.0);
        let residual = self.residual(backbone, architecture, &curve);
        (base + depth_bonus + residual).clamp(0.0, curve.q_max)
    }

    fn name(&self) -> &str {
        "calibrated-surrogate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_architectures_match_paper_lower_bounds() {
        let model = SurrogateModel::paper_calibrated();
        let cases = [
            (Backbone::ResNet9Cifar10, 0.7893),
            (Backbone::ResNet9Stl10, 0.7157),
            (Backbone::UNetNuclei, 0.642),
        ];
        for (backbone, expected) in cases {
            let acc = model.evaluate(backbone, &backbone.smallest_architecture());
            assert!(
                (acc - expected).abs() < 0.012,
                "{backbone}: {acc} vs expected {expected}"
            );
        }
    }

    #[test]
    fn largest_cifar_architecture_reaches_nas_accuracy() {
        let model = SurrogateModel::paper_calibrated();
        let acc = model.evaluate(
            Backbone::ResNet9Cifar10,
            &Backbone::ResNet9Cifar10.largest_architecture(),
        );
        assert!(acc > 0.935 && acc <= 0.95, "accuracy {acc}");
    }

    #[test]
    fn paper_best_w3_architecture_scores_about_94_percent() {
        let model = SurrogateModel::paper_calibrated();
        let arch = Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]);
        let acc = model.evaluate(Backbone::ResNet9Cifar10, &arch);
        assert!(acc > 0.925 && acc < 0.95, "accuracy {acc}");
    }

    #[test]
    fn capacity_ordering_is_respected_by_smooth_model() {
        let model = SurrogateModel::smooth();
        let tiny = Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0]);
        let mid = Backbone::ResNet9Cifar10.materialize_values(&[16, 64, 1, 128, 1, 128, 1]);
        let big = Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]);
        let a = model.evaluate(Backbone::ResNet9Cifar10, &tiny);
        let b = model.evaluate(Backbone::ResNet9Cifar10, &mid);
        let c = model.evaluate(Backbone::ResNet9Cifar10, &big);
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let model = SurrogateModel::paper_calibrated();
        let arch = Backbone::UNetNuclei.materialize_values(&[3, 8, 16, 32, 64, 128]);
        let a = model.evaluate(Backbone::UNetNuclei, &arch);
        let b = model.evaluate(Backbone::UNetNuclei, &arch);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_decorrelate_residuals() {
        let arch = Backbone::ResNet9Cifar10.materialize_values(&[16, 64, 1, 128, 1, 128, 1]);
        let a = SurrogateModel::paper_calibrated()
            .with_seed(1)
            .evaluate(Backbone::ResNet9Cifar10, &arch);
        let b = SurrogateModel::paper_calibrated()
            .with_seed(2)
            .evaluate(Backbone::ResNet9Cifar10, &arch);
        assert_ne!(a, b);
        assert!((a - b).abs() < 0.01);
    }

    #[test]
    fn noise_never_breaks_global_ordering() {
        // The residual amplitude (0.4%) is far smaller than the accuracy
        // gap between the smallest and largest networks (~15%).
        let model = SurrogateModel::paper_calibrated();
        let small = model.evaluate(
            Backbone::ResNet9Cifar10,
            &Backbone::ResNet9Cifar10.smallest_architecture(),
        );
        let large = model.evaluate(
            Backbone::ResNet9Cifar10,
            &Backbone::ResNet9Cifar10.largest_architecture(),
        );
        assert!(large - small > 0.10);
    }

    #[test]
    fn nuclei_iou_range_matches_paper() {
        let model = SurrogateModel::paper_calibrated();
        let best = model.evaluate(
            Backbone::UNetNuclei,
            &Backbone::UNetNuclei.largest_architecture(),
        );
        assert!(best > 0.82 && best < 0.85, "IOU {best}");
    }

    #[test]
    fn model_reports_its_name() {
        assert_eq!(SurrogateModel::default().name(), "calibrated-surrogate");
    }
}
