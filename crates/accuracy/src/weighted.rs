//! Multi-task accuracy combination (Eq. 2 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How per-task accuracies are combined into the scalar the reward
/// maximises.
///
/// The paper's `weighted(D) = sum_i alpha_i * acc_i` with
/// `sum_i alpha_i = 1`; it also mentions `avg` and `min` as possible
/// choices of the weighting function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum AccuracyCombiner {
    /// Explicit weights, one per task; must sum to 1.
    Weighted(Vec<f64>),
    /// Plain average (equal weights).
    #[default]
    Average,
    /// The minimum across tasks (maximise the worst task).
    Minimum,
}

impl AccuracyCombiner {
    /// The paper's experimental setting: `alpha_1 = alpha_2 = 0.5`.
    pub fn paper_equal_weights() -> Self {
        AccuracyCombiner::Weighted(vec![0.5, 0.5])
    }

    /// Combine per-task accuracies into one scalar.
    ///
    /// # Panics
    ///
    /// Panics if `accuracies` is empty, or if explicit weights have a
    /// different length than `accuracies` or do not sum to 1 (within
    /// `1e-6`).
    pub fn combine(&self, accuracies: &[f64]) -> f64 {
        assert!(!accuracies.is_empty(), "no accuracies to combine");
        match self {
            AccuracyCombiner::Weighted(weights) => {
                assert_eq!(
                    weights.len(),
                    accuracies.len(),
                    "weight count does not match task count"
                );
                let sum: f64 = weights.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "weights must sum to 1, got {sum}");
                weights.iter().zip(accuracies).map(|(w, a)| w * a).sum()
            }
            AccuracyCombiner::Average => accuracies.iter().sum::<f64>() / accuracies.len() as f64,
            AccuracyCombiner::Minimum => accuracies.iter().cloned().fold(f64::INFINITY, f64::min),
        }
    }
}

impl fmt::Display for AccuracyCombiner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccuracyCombiner::Weighted(w) => write!(f, "weighted({w:?})"),
            AccuracyCombiner::Average => f.write_str("average"),
            AccuracyCombiner::Minimum => f.write_str("minimum"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_match_average() {
        let acc = [0.9285, 0.8374];
        let weighted = AccuracyCombiner::paper_equal_weights().combine(&acc);
        let average = AccuracyCombiner::Average.combine(&acc);
        assert!((weighted - average).abs() < 1e-12);
        assert!((weighted - 0.88295).abs() < 1e-9);
    }

    #[test]
    fn minimum_picks_worst_task() {
        assert_eq!(AccuracyCombiner::Minimum.combine(&[0.93, 0.75, 0.80]), 0.75);
    }

    #[test]
    fn asymmetric_weights_shift_the_result() {
        let combiner = AccuracyCombiner::Weighted(vec![0.8, 0.2]);
        let v = combiner.combine(&[1.0, 0.0]);
        assert!((v - 0.8).abs() < 1e-12);
    }

    #[test]
    fn single_task_workload_is_identity() {
        assert_eq!(AccuracyCombiner::Average.combine(&[0.77]), 0.77);
        assert_eq!(AccuracyCombiner::Minimum.combine(&[0.77]), 0.77);
    }

    #[test]
    #[should_panic]
    fn weights_not_summing_to_one_rejected() {
        AccuracyCombiner::Weighted(vec![0.7, 0.7]).combine(&[0.5, 0.5]);
    }

    #[test]
    #[should_panic]
    fn wrong_weight_count_rejected() {
        AccuracyCombiner::Weighted(vec![1.0]).combine(&[0.5, 0.5]);
    }

    #[test]
    #[should_panic]
    fn empty_accuracies_rejected() {
        AccuracyCombiner::Average.combine(&[]);
    }

    #[test]
    fn display_names() {
        assert_eq!(AccuracyCombiner::Average.to_string(), "average");
        assert_eq!(AccuracyCombiner::Minimum.to_string(), "minimum");
        assert!(AccuracyCombiner::paper_equal_weights()
            .to_string()
            .starts_with("weighted"));
    }
}
