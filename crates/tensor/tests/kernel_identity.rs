//! Property tests pinning the blocked/unrolled kernels to the retained
//! naive reference, bit for bit.
//!
//! The identity bound is exact (`f64::to_bits` equality, not an ULP
//! tolerance): every optimized kernel accumulates each output element's
//! products in the same ascending-`k` order as
//! [`Matrix::matmul_reference`], so IEEE-754 rounding is applied in the
//! same sequence and the results cannot differ.  Shapes are drawn to
//! cover the edges the blocking logic has to get right: `0xN`, `Nx0`,
//! `1xN`, and inner dimensions around and beyond the kernel block size.

use nasaic_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random matrix whose entries include exact `0.0` and `-0.0` with
/// non-trivial probability, so the suite also witnesses that dropping the
/// old data-dependent zero-skip changed no bit.
fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            if rng.gen_bool(0.15) {
                0.0
            } else if rng.gen_bool(0.05) {
                -0.0
            } else {
                rng.gen_range(-2.0..2.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn assert_bits_equal(actual: &Matrix, expected: &Matrix) {
    assert_eq!(actual.shape(), expected.shape());
    for (a, e) in actual.as_slice().iter().zip(expected.as_slice()) {
        assert_eq!(
            a.to_bits(),
            e.to_bits(),
            "bit mismatch: {a} vs {e} (shape {:?})",
            actual.shape()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Blocked dense matmul is bit-identical to the naive triple loop,
    /// including inner dimensions that are not multiples of the block
    /// size and degenerate 0/1-sized shapes.
    #[test]
    fn blocked_matmul_matches_reference(
        seed in any::<u64>(),
        m in 0usize..6,
        p in 0usize..70,
        n in 0usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, m, p);
        let b = random_matrix(&mut rng, p, n);
        let expected = a.matmul_reference(&b);
        assert_bits_equal(&a.matmul(&b), &expected);
        // The scratch-buffer form must agree even when the output buffer
        // holds stale content of a different shape.
        let mut out = random_matrix(&mut rng, 3, 3);
        a.matmul_into(&b, &mut out);
        assert_bits_equal(&out, &expected);
    }

    /// The fused-transpose products match the transpose-then-reference
    /// composition bit for bit.
    #[test]
    fn fused_transpose_kernels_match_reference(
        seed in any::<u64>(),
        m in 0usize..6,
        p in 0usize..40,
        n in 0usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // tn: lhs is p x m, result is (lhs^T) * rhs.
        let lhs_tn = random_matrix(&mut rng, p, m);
        let rhs = random_matrix(&mut rng, p, n);
        assert_bits_equal(
            &lhs_tn.matmul_tn(&rhs),
            &lhs_tn.transpose().matmul_reference(&rhs),
        );
        // nt: rhs is n x p, result is lhs * (rhs^T).
        let lhs = random_matrix(&mut rng, m, p);
        let rhs_nt = random_matrix(&mut rng, n, p);
        assert_bits_equal(
            &lhs.matmul_nt(&rhs_nt),
            &lhs.matmul_reference(&rhs_nt.transpose()),
        );
    }

    /// Matrix-vector products (plain and transposed) match the
    /// column-vector matmul composition bit for bit.
    #[test]
    fn matvec_kernels_match_reference(
        seed in any::<u64>(),
        rows in 0usize..48,
        cols in 0usize..48,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_matrix(&mut rng, rows, cols);
        let x = random_matrix(&mut rng, cols, 1);
        let mut y = vec![7.0; 3]; // stale scratch
        m.matvec_into(x.as_slice(), &mut y);
        assert_bits_equal(
            &Matrix::col_vector(&y),
            &m.matmul_reference(&x),
        );
        let xt = random_matrix(&mut rng, rows, 1);
        let mut yt = Vec::new();
        m.matvec_tn_into(xt.as_slice(), &mut yt);
        assert_bits_equal(
            &Matrix::col_vector(&yt),
            &m.transpose().matmul_reference(&xt),
        );
    }

    /// Outer-product helpers match the rank-1 matmul composition bit for
    /// bit, both the overwriting and the accumulating form.
    #[test]
    fn outer_product_kernels_match_reference(
        seed in any::<u64>(),
        rows in 0usize..16,
        cols in 0usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let col = random_matrix(&mut rng, rows, 1);
        let row = random_matrix(&mut rng, 1, cols);
        let rank1 = col.matmul_reference(&row);
        let mut m = random_matrix(&mut rng, 2, 5);
        m.set_outer(col.as_slice(), row.as_slice());
        assert_bits_equal(&m, &rank1);
        let base = random_matrix(&mut rng, rows, cols);
        let mut accumulated = base.clone();
        accumulated.add_outer(col.as_slice(), row.as_slice());
        let mut expected = base;
        expected += &rank1;
        assert_bits_equal(&accumulated, &expected);
    }
}

/// The old dense kernel skipped `lhs` entries that compared equal to
/// zero.  On finite inputs the skip changed no bit: every skipped term is
/// `0.0 * x = ±0.0`, and an accumulator that starts at `+0.0` stays
/// `+0.0` under round-to-nearest addition of a signed zero, which is also
/// what skipping leaves behind.  The only observable difference is
/// non-finite operands: the skip suppressed `0.0 * inf = NaN`.  This test
/// pins both facts, so the zero-skip removal is an audited decision
/// rather than a silent change.
#[test]
fn zero_skip_semantics() {
    fn matmul_with_zero_skip(lhs: &Matrix, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(lhs.rows(), rhs.cols());
        for i in 0..lhs.rows() {
            for k in 0..lhs.cols() {
                let a = lhs[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols() {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    // Non-finite corner: the skip never evaluates 0.0 * inf, so it hides
    // the NaN the IEEE semantics (and the branch-free kernel) produce.
    let lhs = Matrix::row_vector(&[0.0]);
    let rhs = Matrix::col_vector(&[f64::INFINITY]);
    let skipped = matmul_with_zero_skip(&lhs, &rhs);
    let dense = lhs.matmul(&rhs);
    assert_eq!(skipped[(0, 0)].to_bits(), 0.0_f64.to_bits());
    assert!(dense[(0, 0)].is_nan());
    // The branch-free kernel agrees with the retained reference even
    // here; the skip kernel is the odd one out.
    assert!(lhs.matmul_reference(&rhs)[(0, 0)].is_nan());

    // On finite inputs — including exact and negative zeros — the two
    // kernels agree bit for bit, so no search outcome could observe the
    // removal.
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..64 {
        let m = rng.gen_range(1usize..5);
        let p = rng.gen_range(1usize..40);
        let n = rng.gen_range(1usize..5);
        let a = random_matrix(&mut rng, m, p);
        let b = random_matrix(&mut rng, p, n);
        assert_bits_equal(&matmul_with_zero_skip(&a, &b), &a.matmul(&b));
    }
}
