//! Scalar and vector activation functions used by the LSTM controller and
//! the proxy MLP trainer, together with their derivatives.

use crate::Matrix;

/// Logistic sigmoid `1 / (1 + e^-x)`.
///
/// ```
/// assert!((nasaic_tensor::activation::sigmoid(0.0) - 0.5).abs() < 1e-12);
/// ```
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        // Numerically stable branch for strongly negative inputs.
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the sigmoid expressed in terms of its output `y = sigmoid(x)`.
pub fn sigmoid_derivative_from_output(y: f64) -> f64 {
    y * (1.0 - y)
}

/// Hyperbolic tangent.
pub fn tanh(x: f64) -> f64 {
    x.tanh()
}

/// Derivative of tanh expressed in terms of its output `y = tanh(x)`.
pub fn tanh_derivative_from_output(y: f64) -> f64 {
    1.0 - y * y
}

/// Rectified linear unit.
pub fn relu(x: f64) -> f64 {
    x.max(0.0)
}

/// Derivative of ReLU (defined as 0 at the kink).
pub fn relu_derivative(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Numerically stable softmax over a slice of logits.
///
/// Returns a probability vector of the same length.  An empty input yields
/// an empty output.
///
/// ```
/// let p = nasaic_tensor::activation::softmax(&[0.0, 0.0]);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|v| v / sum).collect()
}

/// [`softmax`] into a caller-provided buffer — zero allocations once the
/// buffer's capacity has grown to fit.
///
/// Performs exactly the same operations as [`softmax`] (subtract-max,
/// exponentiate, normalise), so the results are bit-for-bit identical.
pub fn softmax_into(logits: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    out.extend(logits.iter().map(|&v| (v - max).exp()));
    let sum: f64 = out.iter().sum();
    for v in out.iter_mut() {
        *v /= sum;
    }
}

/// Softmax with a temperature parameter.  Temperatures above 1 flatten the
/// distribution (more exploration), below 1 sharpen it.
///
/// # Panics
///
/// Panics if `temperature` is not strictly positive.
pub fn softmax_with_temperature(logits: &[f64], temperature: f64) -> Vec<f64> {
    assert!(temperature > 0.0, "temperature must be positive");
    let scaled: Vec<f64> = logits.iter().map(|&v| v / temperature).collect();
    softmax(&scaled)
}

/// Natural log of the softmax probability of index `chosen`.
///
/// # Panics
///
/// Panics if `chosen` is out of range or `logits` is empty.
pub fn log_softmax_at(logits: &[f64], chosen: usize) -> f64 {
    assert!(!logits.is_empty(), "log_softmax_at on empty logits");
    assert!(chosen < logits.len(), "chosen index out of range");
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = logits.iter().map(|&v| (v - max).exp()).sum::<f64>().ln() + max;
    logits[chosen] - log_sum
}

/// Cross-entropy loss between a probability vector and a one-hot target.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn cross_entropy(probabilities: &[f64], target: usize) -> f64 {
    assert!(target < probabilities.len(), "target index out of range");
    -(probabilities[target].max(1e-300)).ln()
}

/// Apply sigmoid element-wise to a matrix.
pub fn sigmoid_matrix(m: &Matrix) -> Matrix {
    m.map(sigmoid)
}

/// Apply tanh element-wise to a matrix.
pub fn tanh_matrix(m: &Matrix) -> Matrix {
    m.map(tanh)
}

/// Apply ReLU element-wise to a matrix.
pub fn relu_matrix(m: &Matrix) -> Matrix {
    m.map(relu)
}

/// Entropy (nats) of a probability distribution.  Probabilities of zero
/// contribute zero.
pub fn entropy(probabilities: &[f64]) -> f64 {
    probabilities
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_symmetric_around_half() {
        for x in [-3.0, -1.0, 0.5, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_extremes_saturate() {
        assert!(sigmoid(40.0) > 0.999999);
        assert!(sigmoid(-40.0) < 1e-6);
    }

    #[test]
    fn sigmoid_derivative_matches_finite_difference() {
        let x = 0.37;
        let h = 1e-6;
        let numeric = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
        let analytic = sigmoid_derivative_from_output(sigmoid(x));
        assert!((numeric - analytic).abs() < 1e-8);
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let x = -0.81;
        let h = 1e-6;
        let numeric = (tanh(x + h) - tanh(x - h)) / (2.0 * h);
        let analytic = tanh_derivative_from_output(tanh(x));
        assert!((numeric - analytic).abs() < 1e-8);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_derivative(-1.0), 0.0);
        assert_eq!(relu_derivative(1.0), 1.0);
    }

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let p = softmax(&[1.0, 3.0, 2.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > p[2] && p[2] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_large_logits_without_overflow() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_into_is_bit_identical_to_softmax() {
        let logits = [0.3, -1.2, 2.5, 0.0, 1000.0];
        let mut buffer = vec![9.0; 2]; // stale content must be discarded
        softmax_into(&logits, &mut buffer);
        let reference = softmax(&logits);
        assert_eq!(buffer.len(), reference.len());
        for (a, b) in buffer.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        softmax_into(&[], &mut buffer);
        assert!(buffer.is_empty());
    }

    #[test]
    fn high_temperature_flattens_distribution() {
        let cold = softmax_with_temperature(&[1.0, 2.0], 0.5);
        let hot = softmax_with_temperature(&[1.0, 2.0], 5.0);
        assert!(hot[0] > cold[0]);
        assert!(hot[1] < cold[1]);
    }

    #[test]
    #[should_panic]
    fn zero_temperature_panics() {
        softmax_with_temperature(&[1.0], 0.0);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = [0.3, -1.2, 2.5, 0.0];
        let p = softmax(&logits);
        for (i, &probability) in p.iter().enumerate() {
            assert!((log_softmax_at(&logits, i) - probability.ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn cross_entropy_zero_for_certain_prediction() {
        assert!(cross_entropy(&[1.0, 0.0], 0) < 1e-12);
        assert!(cross_entropy(&[0.5, 0.5], 1) > 0.0);
    }

    #[test]
    fn entropy_maximised_by_uniform() {
        let uniform = entropy(&[0.25; 4]);
        let peaked = entropy(&[0.97, 0.01, 0.01, 0.01]);
        assert!(uniform > peaked);
        assert!((uniform - (4.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn matrix_activations_apply_elementwise() {
        let m = Matrix::from_rows(&[&[-1.0, 0.0, 1.0][..]]);
        assert_eq!(relu_matrix(&m).as_slice(), &[0.0, 0.0, 1.0]);
        let s = sigmoid_matrix(&m);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-12);
        let t = tanh_matrix(&m);
        assert!((t.as_slice()[2] - (1.0_f64).tanh()).abs() < 1e-12);
    }
}
