//! First-order optimizers for the controller and proxy trainer.
//!
//! The paper trains its controller RNN with RMSProp (initial learning rate
//! 0.99, exponential decay 0.5 every 50 steps); [`RmsProp`] mirrors that
//! configuration, and plain SGD and Adam are provided for the proxy trainer
//! and ablations.

use crate::Matrix;

/// A first-order optimizer that updates one parameter matrix from its
/// gradient.
///
/// Each parameter matrix owns its own optimizer instance, so stateful
/// optimizers (RMSProp, Adam) keep per-parameter accumulators without a
/// registry keyed by name.
pub trait Optimizer {
    /// Apply one update step: mutate `param` using `grad`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `param` and `grad` have different shapes.
    fn step(&mut self, param: &mut Matrix, grad: &Matrix);

    /// The current learning rate.
    fn learning_rate(&self) -> f64;

    /// Override the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Plain (optionally momentum-accelerated) gradient descent.
#[derive(Debug, Clone)]
pub struct GradientDescent {
    lr: f64,
    momentum: f64,
    velocity: Option<Matrix>,
}

impl GradientDescent {
    /// Create a new SGD optimizer with the given learning rate and no
    /// momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Create an SGD optimizer with classical momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: None,
        }
    }
}

impl Optimizer for GradientDescent {
    fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "optimizer shape mismatch");
        if self.momentum == 0.0 {
            param.axpy(-self.lr, grad);
            return;
        }
        let velocity = self
            .velocity
            .get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        for (v, g) in velocity.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *v = self.momentum * *v + g;
        }
        param.axpy(-self.lr, velocity);
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// RMSProp optimizer, as used for the NASAIC controller RNN.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f64,
    decay: f64,
    epsilon: f64,
    cache: Option<Matrix>,
}

impl RmsProp {
    /// Create a new RMSProp optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `decay` is outside `[0, 1)`.
    pub fn new(lr: f64, decay: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        Self {
            lr,
            decay,
            epsilon: 1e-8,
            cache: None,
        }
    }

    /// RMSProp with the paper's controller settings (lr = 0.99, decay = 0.9).
    pub fn paper_defaults() -> Self {
        Self::new(0.99, 0.9)
    }

    /// The squared-gradient accumulator (`None` until the first step).
    /// Together with the learning rate this is the optimizer's entire
    /// mutable state, exposed so checkpoints can serialize it.
    pub fn cache(&self) -> Option<&Matrix> {
        self.cache.as_ref()
    }

    /// Restore a previously exported accumulator (see
    /// [`RmsProp::cache`]).  Passing `None` resets the optimizer to its
    /// pre-first-step state.
    pub fn set_cache(&mut self, cache: Option<Matrix>) {
        self.cache = cache;
    }

    /// The decay constant the optimizer was built with.
    pub fn decay(&self) -> f64 {
        self.decay
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "optimizer shape mismatch");
        let cache = self
            .cache
            .get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        for ((p, g), c) in param
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(cache.as_mut_slice())
        {
            *c = self.decay * *c + (1.0 - self.decay) * g * g;
            *p -= self.lr * g / (c.sqrt() + self.epsilon);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) used by the proxy trainer.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    step_count: u64,
    first_moment: Option<Matrix>,
    second_moment: Option<Matrix>,
}

impl Adam {
    /// Create a new Adam optimizer with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            first_moment: None,
            second_moment: None,
        }
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "optimizer shape mismatch");
        self.step_count += 1;
        let m = self
            .first_moment
            .get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        let v = self
            .second_moment
            .get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        let t = self.step_count as f64;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (((p, g), mi), vi) in param
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(m.as_mut_slice())
            .zip(v.as_mut_slice())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / bias1;
            let v_hat = *vi / bias2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Exponential step decay schedule: multiply the learning rate by `factor`
/// every `period` steps, mirroring the paper's "exponential decay of 0.5
/// for 50 steps" controller schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct StepDecay {
    initial_lr: f64,
    factor: f64,
    period: u64,
}

impl StepDecay {
    /// Create a decay schedule.
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive or `factor > 1`.
    pub fn new(initial_lr: f64, factor: f64, period: u64) -> Self {
        assert!(initial_lr > 0.0, "initial learning rate must be positive");
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        assert!(period > 0, "period must be positive");
        Self {
            initial_lr,
            factor,
            period,
        }
    }

    /// The paper's controller schedule: lr 0.99, halved every 50 steps.
    pub fn paper_defaults() -> Self {
        Self::new(0.99, 0.5, 50)
    }

    /// Learning rate to use at a given (zero-based) step.
    pub fn learning_rate_at(&self, step: u64) -> f64 {
        self.initial_lr * self.factor.powf((step / self.period) as f64)
    }

    /// Apply the schedule to an optimizer for the given step.
    pub fn apply<O: Optimizer>(&self, optimizer: &mut O, step: u64) {
        optimizer.set_learning_rate(self.learning_rate_at(step));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(param: &Matrix) -> Matrix {
        // Gradient of f(x) = 0.5 * ||x - 3||^2  ->  x - 3
        param.map(|v| v - 3.0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Matrix::filled(2, 2, 0.0);
        let mut opt = GradientDescent::new(0.1);
        for _ in 0..200 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        assert!((p[(0, 0)] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_converges_faster_than_plain_sgd() {
        let run = |mut opt: GradientDescent| {
            let mut p = Matrix::filled(1, 1, 0.0);
            for step in 0..50 {
                let g = quadratic_grad(&p);
                opt.step(&mut p, &g);
                if (p[(0, 0)] - 3.0).abs() < 1e-3 {
                    return step;
                }
            }
            50
        };
        let plain = run(GradientDescent::new(0.05));
        let momentum = run(GradientDescent::with_momentum(0.05, 0.9));
        assert!(momentum <= plain);
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        let mut p = Matrix::filled(1, 3, 10.0);
        let mut opt = RmsProp::new(0.05, 0.9);
        for _ in 0..2000 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        for &v in p.as_slice() {
            assert!((v - 3.0).abs() < 0.05, "value {v}");
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Matrix::filled(1, 3, -5.0);
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let g = quadratic_grad(&p);
            opt.step(&mut p, &g);
        }
        for &v in p.as_slice() {
            assert!((v - 3.0).abs() < 0.05, "value {v}");
        }
        assert_eq!(opt.steps(), 2000);
    }

    #[test]
    fn step_decay_schedule_matches_paper_shape() {
        let schedule = StepDecay::paper_defaults();
        assert!((schedule.learning_rate_at(0) - 0.99).abs() < 1e-12);
        assert!((schedule.learning_rate_at(49) - 0.99).abs() < 1e-12);
        assert!((schedule.learning_rate_at(50) - 0.495).abs() < 1e-12);
        assert!((schedule.learning_rate_at(100) - 0.2475).abs() < 1e-12);
    }

    #[test]
    fn step_decay_applies_to_optimizer() {
        let mut opt = RmsProp::paper_defaults();
        let schedule = StepDecay::paper_defaults();
        schedule.apply(&mut opt, 150);
        assert!((opt.learning_rate() - 0.99 * 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let mut p = Matrix::zeros(2, 2);
        let g = Matrix::zeros(1, 2);
        GradientDescent::new(0.1).step(&mut p, &g);
    }

    #[test]
    #[should_panic]
    fn negative_learning_rate_rejected() {
        GradientDescent::new(-0.1);
    }
}
