//! Dense slice-level kernels behind [`Matrix`](crate::Matrix).
//!
//! Every kernel here is **accumulation-order preserving**: the products
//! contributing to one output element are added one at a time in strictly
//! increasing `k` order, exactly like the retained naive triple loop
//! ([`Matrix::matmul_reference`](crate::Matrix::matmul_reference)).  Loop
//! blocking and unrolling only change *which element* is updated next,
//! never the order of additions *within* an element, so every kernel is
//! bit-for-bit identical to the reference composition it replaces
//! (asserted by the `kernel_identity` property suite).
//!
//! The kernels are branch-free in the inner loop: the old data-dependent
//! zero-skip (`if a == 0.0 { continue; }`) stalled the dense
//! controller/proxy workload on a mispredictable branch while saving
//! nothing (the operands are dense), and it silently suppressed NaN
//! propagation from non-finite operands (`0.0 * inf`).  On finite inputs
//! the skip was bit-identical — an accumulator that starts at `+0.0` can
//! never become `-0.0` under round-to-nearest addition — so removing it
//! changed no observable result (pinned by
//! `tests/kernel_identity.rs::zero_skip_semantics`).  The kernels operate
//! on raw row-major slices, so the per-element bounds checks of
//! `Matrix`'s `Index` implementation never run on the hot path.

/// Rows of the right-hand operand kept hot per blocking step.
///
/// A block of `K_BLOCK` rhs rows (`K_BLOCK x n` doubles) is streamed
/// against every output row before the kernel moves on, so for the
/// controller / proxy shapes (`n <= 64`) the active rhs working set stays
/// within half an L1 data cache.
const K_BLOCK: usize = 32;

/// `out[j] += a * rhs[j]` over whole rows, unrolled by four.
///
/// Each output element receives exactly one addition, so unrolling cannot
/// reorder any element's accumulation.
#[inline]
fn axpy_row(out: &mut [f64], a: f64, rhs: &[f64]) {
    debug_assert_eq!(out.len(), rhs.len());
    let mut out_chunks = out.chunks_exact_mut(4);
    let mut rhs_chunks = rhs.chunks_exact(4);
    for (o, r) in out_chunks.by_ref().zip(rhs_chunks.by_ref()) {
        o[0] += a * r[0];
        o[1] += a * r[1];
        o[2] += a * r[2];
        o[3] += a * r[3];
    }
    for (o, r) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(rhs_chunks.remainder())
    {
        *o += a * r;
    }
}

/// Sequential dot product (single accumulator, ascending `k`).
///
/// Deliberately *not* multi-accumulator: splitting the sum would reorder
/// the additions and break bit-identity with the naive reference.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `out = lhs * rhs` for row-major `lhs` (`m x p`), `rhs` (`p x n`),
/// `out` (`m x n`).  `out` is overwritten.
///
/// Blocked over `k`: a band of rhs rows is reused across every output row
/// while it is cache-hot.  Within one output element the `k` order is the
/// naive ascending order.
///
/// # Panics
///
/// Debug-asserts the slice lengths match the shapes.
pub fn matmul(lhs: &[f64], rhs: &[f64], out: &mut [f64], m: usize, p: usize, n: usize) {
    debug_assert_eq!(lhs.len(), m * p);
    debug_assert_eq!(rhs.len(), p * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    let mut kb = 0;
    while kb < p {
        let kend = (kb + K_BLOCK).min(p);
        for i in 0..m {
            let lhs_row = &lhs[i * p..(i + 1) * p];
            let out_row = &mut out[i * n..(i + 1) * n];
            for k in kb..kend {
                axpy_row(out_row, lhs_row[k], &rhs[k * n..(k + 1) * n]);
            }
        }
        kb = kend;
    }
}

/// `out = lhs^T * rhs` for row-major `lhs` (`p x m`), `rhs` (`p x n`),
/// `out` (`m x n`) — the transpose is folded into the access pattern, no
/// transposed copy is materialised.  `out` is overwritten.
pub fn matmul_tn(lhs: &[f64], rhs: &[f64], out: &mut [f64], m: usize, p: usize, n: usize) {
    debug_assert_eq!(lhs.len(), p * m);
    debug_assert_eq!(rhs.len(), p * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    let mut kb = 0;
    while kb < p {
        let kend = (kb + K_BLOCK).min(p);
        for k in kb..kend {
            let lhs_row = &lhs[k * m..(k + 1) * m];
            let rhs_row = &rhs[k * n..(k + 1) * n];
            for i in 0..m {
                axpy_row(&mut out[i * n..(i + 1) * n], lhs_row[i], rhs_row);
            }
        }
        kb = kend;
    }
}

/// `out = lhs * rhs^T` for row-major `lhs` (`m x p`), `rhs` (`n x p`),
/// `out` (`m x n`) — each output element is a row-by-row dot product, so
/// both operands stream along their natural layout.  `out` is overwritten.
pub fn matmul_nt(lhs: &[f64], rhs: &[f64], out: &mut [f64], m: usize, p: usize, n: usize) {
    debug_assert_eq!(lhs.len(), m * p);
    debug_assert_eq!(rhs.len(), n * p);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let lhs_row = &lhs[i * p..(i + 1) * p];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, slot) in out_row.iter_mut().enumerate() {
            *slot = dot(lhs_row, &rhs[j * p..(j + 1) * p]);
        }
    }
}

/// Matrix-vector product `out = m * x` (`m` is `rows x cols` row-major).
pub fn matvec(m: &[f64], x: &[f64], out: &mut [f64], rows: usize, cols: usize) {
    debug_assert_eq!(m.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(out.len(), rows);
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = dot(&m[i * cols..(i + 1) * cols], x);
    }
}

/// Transposed matrix-vector product `out = m^T * x` (`m` is
/// `rows x cols` row-major, `x` has `rows` elements, `out` has `cols`).
pub fn matvec_tn(m: &[f64], x: &[f64], out: &mut [f64], rows: usize, cols: usize) {
    debug_assert_eq!(m.len(), rows * cols);
    debug_assert_eq!(x.len(), rows);
    debug_assert_eq!(out.len(), cols);
    out.fill(0.0);
    for (k, &xk) in x.iter().enumerate() {
        axpy_row(out, xk, &m[k * cols..(k + 1) * cols]);
    }
}

/// Rank-1 update `out += col * row^T` (`out` is `col.len() x row.len()`
/// row-major) — the fused form of `grads += dz.matmul(&x.transpose())`.
///
/// The `+ 0.0` mirrors the composition being fused: the materialised
/// rank-1 matmul accumulates each product into a zeroed buffer, turning a
/// `-0.0` product into `+0.0` before the `+=` — the fused kernel must do
/// the same to stay bit-identical.
pub fn add_outer(out: &mut [f64], col: &[f64], row: &[f64]) {
    debug_assert_eq!(out.len(), col.len() * row.len());
    let n = row.len();
    for (i, &c) in col.iter().enumerate() {
        for (slot, &r) in out[i * n..(i + 1) * n].iter_mut().zip(row) {
            *slot += c * r + 0.0;
        }
    }
}

/// Outer product `out = col * row^T` (overwrites `out`).
///
/// Implemented as zero-then-accumulate rather than a direct store: the
/// reference composition computes `0.0 + c * r`, and `0.0 + (-0.0)` is
/// `+0.0` while a direct store would keep the `-0.0` — the accumulate
/// keeps the kernel bit-identical.
pub fn set_outer(out: &mut [f64], col: &[f64], row: &[f64]) {
    debug_assert_eq!(out.len(), col.len() * row.len());
    out.fill(0.0);
    add_outer(out, col, row);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_result() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let mut out = vec![0.0; 4];
        matmul(
            &[1.0, 2.0, 3.0, 4.0],
            &[5.0, 6.0, 7.0, 8.0],
            &mut out,
            2,
            2,
            2,
        );
        assert_eq!(out, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn empty_dimensions_are_no_ops() {
        let mut out: Vec<f64> = Vec::new();
        matmul(&[], &[1.0, 2.0], &mut out, 0, 1, 2);
        matmul_tn(&[], &[], &mut out, 0, 0, 0);
        matmul_nt(&[], &[], &mut out, 0, 3, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        // lhs is 3x2 (p=3, m=2), rhs is 3x2 (p=3, n=2).
        let lhs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let rhs = [0.5, -1.0, 2.0, 0.0, 1.0, 3.0];
        let mut fused = vec![0.0; 4];
        matmul_tn(&lhs, &rhs, &mut fused, 2, 3, 2);
        // Explicit transpose of lhs: 2x3.
        let lhs_t = [1.0, 3.0, 5.0, 2.0, 4.0, 6.0];
        let mut reference = vec![0.0; 4];
        matmul(&lhs_t, &rhs, &mut reference, 2, 3, 2);
        assert_eq!(fused, reference);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        // lhs is 2x3, rhs is 2x3 (n=2, p=3).
        let lhs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let rhs = [0.5, -1.0, 2.0, 0.0, 1.0, 3.0];
        let mut fused = vec![0.0; 4];
        matmul_nt(&lhs, &rhs, &mut fused, 2, 3, 2);
        let rhs_t = [0.5, 0.0, -1.0, 1.0, 2.0, 3.0];
        let mut reference = vec![0.0; 4];
        matmul(&lhs, &rhs_t, &mut reference, 2, 3, 2);
        assert_eq!(fused, reference);
    }

    #[test]
    fn matvec_pair_round_trip() {
        let m = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let mut y = vec![0.0; 2];
        matvec(&m, &[1.0, 0.0, -1.0], &mut y, 2, 3);
        assert_eq!(y, vec![-2.0, -2.0]);
        let mut yt = vec![0.0; 3];
        matvec_tn(&m, &[1.0, -1.0], &mut yt, 2, 3);
        assert_eq!(yt, vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn outer_products_accumulate() {
        let mut out = vec![0.0; 6];
        set_outer(&mut out, &[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(out, vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        add_outer(&mut out, &[1.0, 1.0], &[1.0, 1.0, 1.0]);
        assert_eq!(out, vec![4.0, 5.0, 6.0, 7.0, 9.0, 11.0]);
    }
}
