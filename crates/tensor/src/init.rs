//! Parameter initialisation schemes.
//!
//! The controller and proxy networks are small, so the exact scheme matters
//! less than reproducibility: every initialiser takes an explicit RNG so
//! seeded runs are deterministic.

use crate::Matrix;
use rand::Rng;

/// Uniform initialisation in `[-limit, limit]`.
///
/// # Panics
///
/// Panics if `limit` is negative.
pub fn uniform<R: Rng>(rng: &mut R, rows: usize, cols: usize, limit: f64) -> Matrix {
    assert!(limit >= 0.0, "uniform init limit must be non-negative");
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform initialisation: limit `sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let fan_in = cols.max(1) as f64;
    let fan_out = rows.max(1) as f64;
    let limit = (6.0 / (fan_in + fan_out)).sqrt();
    uniform(rng, rows, cols, limit)
}

/// He/Kaiming-style uniform initialisation (used before ReLU layers):
/// limit `sqrt(6 / fan_in)`.
pub fn he_uniform<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let fan_in = cols.max(1) as f64;
    let limit = (6.0 / fan_in).sqrt();
    uniform(rng, rows, cols, limit)
}

/// Approximate standard-normal initialisation scaled by `std`, built from a
/// 12-term Irwin–Hall sum so it does not require a Gaussian sampler.
pub fn normal_like<R: Rng>(rng: &mut R, rows: usize, cols: usize, std: f64) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            let s: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0;
            s * std
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// All-zero bias initialisation (a convenience alias that documents intent).
pub fn zero_bias(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = uniform(&mut rng, 20, 20, 0.3);
        assert!(m.max_abs() <= 0.3);
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn xavier_limit_shrinks_with_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let small = xavier_uniform(&mut rng, 4, 4);
        let big = xavier_uniform(&mut rng, 400, 400);
        assert!(big.max_abs() < small.max_abs());
    }

    #[test]
    fn he_uniform_has_expected_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = he_uniform(&mut rng, 8, 24);
        assert!(m.max_abs() <= (6.0 / 24.0_f64).sqrt() + 1e-12);
    }

    #[test]
    fn seeded_initialisation_is_deterministic() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(42), 5, 5);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(42), 5, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_like_has_roughly_zero_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = normal_like(&mut rng, 50, 50, 1.0);
        let mean = m.sum() / m.len() as f64;
        assert!(mean.abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn zero_bias_is_zero() {
        assert_eq!(zero_bias(3, 1), Matrix::zeros(3, 1));
    }
}
