//! Minimal dense linear-algebra substrate for the NASAIC reproduction.
//!
//! The NASAIC controller is a recurrent policy network trained with
//! REINFORCE, and the accuracy-surrogate crate offers an optional proxy
//! training path.  Both need a small, dependency-free tensor library:
//! dense matrices, GEMM, element-wise math, common activations,
//! parameter initialisation and first-order optimizers (SGD, RMSProp,
//! Adam).  This crate provides exactly that — nothing more.
//!
//! # Example
//!
//! ```
//! use nasaic_tensor::{Matrix, activation};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! let s = activation::softmax(&[1.0, 2.0, 3.0]);
//! assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

pub mod activation;
pub mod gradcheck;
pub mod init;
pub mod kernel;
pub mod matrix;
pub mod optim;

pub use matrix::{Matrix, ShapeError};
pub use optim::{Adam, GradientDescent, Optimizer, RmsProp};

/// Numerically stable mean of a slice. Returns `0.0` for an empty slice.
///
/// ```
/// assert_eq!(nasaic_tensor::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance of a slice. Returns `0.0` for slices shorter than 2.
///
/// ```
/// let v = nasaic_tensor::variance(&[1.0, 1.0, 1.0]);
/// assert_eq!(v, 0.0);
/// ```
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Clamp a value into `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
///
/// ```
/// assert_eq!(nasaic_tensor::clamp(5.0, 0.0, 1.0), 1.0);
/// ```
pub fn clamp(value: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
    value.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[2.0, 4.0, 6.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn variance_basic() {
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn variance_short_slice_is_zero() {
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn clamp_inside_range_is_identity() {
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn clamp_saturates_low() {
        assert_eq!(clamp(-3.0, -1.0, 1.0), -1.0);
    }

    #[test]
    #[should_panic]
    fn clamp_panics_on_inverted_bounds() {
        clamp(0.0, 1.0, -1.0);
    }
}
