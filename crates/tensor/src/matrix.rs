//! Dense row-major matrix of `f64` with the handful of operations the
//! NASAIC controller and proxy trainer need.
//!
//! The multiplication entry points (`matmul`, the fused-transpose
//! variants and the `*_into` scratch-buffer forms) all run on the
//! blocked, branch-free kernels in [`crate::kernel`], and all of them are
//! bit-for-bit identical to the retained naive reference
//! [`Matrix::matmul_reference`] — see the kernel module docs for why.

use crate::kernel;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// Error returned when two matrices have incompatible shapes for an
/// operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Shape of the left-hand operand `(rows, cols)`.
    pub lhs: (usize, usize),
    /// Shape of the right-hand operand `(rows, cols)`.
    pub rhs: (usize, usize),
    /// Name of the operation that failed.
    pub op: &'static str,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible shapes for {}: {}x{} vs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major matrix of `f64`.
///
/// The matrix is deliberately simple: contiguous storage, no views, no
/// broadcasting.  All binary operations panic on shape mismatch (the
/// fallible variants `try_*` return [`ShapeError`] instead), matching the
/// way the controller uses fixed-shape parameters.
///
/// # Example
///
/// ```
/// use nasaic_tensor::Matrix;
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create an identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build a single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Build a single-column matrix from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy one column into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index {c} out of range");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::default();
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a caller-provided matrix, reusing its buffer.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reset_shape(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Resize to `rows x cols`, reusing the existing allocation when it is
    /// large enough.  Contents are unspecified afterwards (callers
    /// overwrite them).
    fn reset_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs)
            .unwrap_or_else(|e| panic!("matmul shape mismatch: {e}"))
    }

    /// Fallible matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError {
                lhs: self.shape(),
                rhs: rhs.shape(),
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        kernel::matmul(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        Ok(out)
    }

    /// Retained naive matrix product: the plain `i`-`k`-`j` triple loop,
    /// with no blocking, unrolling or zero-skip.
    ///
    /// This is the oracle the blocked kernels are property-tested against
    /// (`crates/tensor/tests/kernel_identity.rs` asserts `to_bits`
    /// equality) and the baseline `eval_baseline` times the optimized
    /// path against.  It is **not** the hot path — use [`Matrix::matmul`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul_reference shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix product into a caller-provided output, reusing its buffer.
    ///
    /// After warm-up (once `out`'s capacity has grown to fit), repeated
    /// calls perform zero heap allocations.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul_into shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        out.reset_shape(self.rows, rhs.cols);
        kernel::matmul(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
    }

    /// Fused product `self^T * rhs` without materialising the transpose.
    ///
    /// Bit-identical to `self.transpose().matmul(rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_tn`] into a caller-provided output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            rhs.rows,
            "matmul_tn shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        out.reset_shape(self.cols, rhs.cols);
        kernel::matmul_tn(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.cols,
            self.rows,
            rhs.cols,
        );
    }

    /// Fused product `self * rhs^T` without materialising the transpose.
    ///
    /// Bit-identical to `self.matmul(&rhs.transpose())`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] into a caller-provided output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_nt shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        out.reset_shape(self.rows, rhs.rows);
        kernel::matmul_nt(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.rows,
        );
    }

    /// Matrix-vector product `self * x` into a caller-provided vector.
    ///
    /// Bit-identical to `self.matmul(&Matrix::col_vector(x))` read back as
    /// a slice.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec shape mismatch: {:?} vs {}x1",
            self.shape(),
            x.len()
        );
        out.clear();
        out.resize(self.rows, 0.0);
        kernel::matvec(&self.data, x, out, self.rows, self.cols);
    }

    /// Transposed matrix-vector product `self^T * x` into a
    /// caller-provided vector.
    ///
    /// Bit-identical to `self.transpose().matmul(&Matrix::col_vector(x))`
    /// read back as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_tn_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(
            x.len(),
            self.rows,
            "matvec_tn shape mismatch: {:?} vs {}x1",
            self.shape(),
            x.len()
        );
        out.clear();
        out.resize(self.cols, 0.0);
        kernel::matvec_tn(&self.data, x, out, self.rows, self.cols);
    }

    /// Overwrite `self` with the column vector `values` (`len x 1`),
    /// reusing the existing buffer.
    pub fn set_col_vector(&mut self, values: &[f64]) {
        self.reset_shape(values.len(), 1);
        self.data.copy_from_slice(values);
    }

    /// Overwrite `self` with the outer product `col * row^T`
    /// (`col.len() x row.len()`), reusing the existing buffer.
    ///
    /// Bit-identical to
    /// `Matrix::col_vector(col).matmul(&Matrix::row_vector(row))`.
    pub fn set_outer(&mut self, col: &[f64], row: &[f64]) {
        self.reset_shape(col.len(), row.len());
        kernel::set_outer(&mut self.data, col, row);
    }

    /// Rank-1 update `self += col * row^T`.
    ///
    /// Bit-identical to adding
    /// `Matrix::col_vector(col).matmul(&Matrix::row_vector(row))`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not `col.len() x row.len()`.
    pub fn add_outer(&mut self, col: &[f64], row: &[f64]) {
        assert_eq!(
            self.shape(),
            (col.len(), row.len()),
            "add_outer shape mismatch"
        );
        kernel::add_outer(&mut self.data, col, row);
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Apply a function to every element, returning a new matrix.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Apply a function to every element in place.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiply every element by a scalar, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// `self += alpha * rhs` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute element value, or `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Clip every element into `[-limit, limit]` in place.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is negative.
    pub fn clip_inplace(&mut self, limit: f64) {
        assert!(limit >= 0.0, "clip limit must be non-negative");
        self.map_inplace(|v| v.max(-limit).min(limit));
    }

    /// Concatenate two single-row matrices horizontally.
    ///
    /// # Panics
    ///
    /// Panics if either matrix has more than one row.
    pub fn hconcat_rows(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, 1, "hconcat_rows expects row vectors");
        assert_eq!(rhs.rows, 1, "hconcat_rows expects row vectors");
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Matrix::from_vec(1, self.cols + rhs.cols, data)
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_identity_op() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0][..], &[7.0, 8.0][..]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0][..], &[43.0, 50.0][..]])
        );
    }

    #[test]
    fn try_matmul_reports_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(err.op, "matmul");
        assert_eq!(err.lhs, (2, 3));
        assert_eq!(err.rhs, (2, 3));
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn matmul_matches_reference_and_into_variant() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.0][..], &[0.5, 4.0, -1.0][..]]);
        let b = Matrix::from_rows(&[&[2.0, 1.0][..], &[0.0, -3.0][..], &[1.5, 0.25][..]]);
        let fast = a.matmul(&b);
        assert_eq!(fast, a.matmul_reference(&b));
        let mut out = Matrix::zeros(5, 5); // wrong shape on purpose: must be reset
        a.matmul_into(&b, &mut out);
        assert_eq!(out, fast);
    }

    #[test]
    fn fused_transpose_products_match_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0][..], &[2.0, 0.0][..]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
        let c = Matrix::from_rows(&[&[1.0, 0.0, -1.0][..], &[2.0, 2.0, 2.0][..]]);
        assert_eq!(a.matmul_nt(&c), a.matmul(&c.transpose()));
    }

    #[test]
    fn matvec_matches_col_vector_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        let x = [1.0, -1.0, 2.0];
        let mut y = Vec::new();
        a.matvec_into(&x, &mut y);
        assert_eq!(y, a.matmul(&Matrix::col_vector(&x)).into_vec());
        let z = [0.5, -0.25];
        let mut yt = Vec::new();
        a.matvec_tn_into(&z, &mut yt);
        assert_eq!(yt, a.transpose().matmul(&Matrix::col_vector(&z)).into_vec());
    }

    #[test]
    fn outer_product_helpers_match_matmul_composition() {
        let col = [1.0, -2.0];
        let row = [3.0, 0.5, -1.0];
        let expected = Matrix::col_vector(&col).matmul(&Matrix::row_vector(&row));
        let mut m = Matrix::default();
        m.set_outer(&col, &row);
        assert_eq!(m, expected);
        m.add_outer(&col, &row);
        assert_eq!(m, expected.scale(2.0));
    }

    #[test]
    fn set_col_vector_reuses_buffer() {
        let mut m = Matrix::zeros(4, 4);
        m.set_col_vector(&[1.0, 2.0]);
        assert_eq!(m, Matrix::col_vector(&[1.0, 2.0]));
    }

    #[test]
    #[should_panic]
    fn matmul_into_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let b = Matrix::from_rows(&[&[2.0, 2.0][..], &[0.5, 0.25][..]]);
        let c = a.hadamard(&b);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 4.0][..], &[1.5, 1.0][..]]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let g = Matrix::filled(2, 2, 2.0);
        a.axpy(-0.5, &g);
        assert_eq!(a, Matrix::zeros(2, 2));
    }

    #[test]
    fn row_and_column_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.column(0), vec![1.0, 3.0]);
    }

    #[test]
    fn clip_limits_magnitude() {
        let mut a = Matrix::from_rows(&[&[-10.0, 0.5][..], &[3.0, -0.1][..]]);
        a.clip_inplace(1.0);
        assert_eq!(a.max_abs(), 1.0);
        assert_eq!(a[(0, 1)], 0.5);
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[3.0, 4.0][..]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hconcat_rows_joins_vectors() {
        let a = Matrix::row_vector(&[1.0, 2.0]);
        let b = Matrix::row_vector(&[3.0]);
        assert_eq!(a.hconcat_rows(&b), Matrix::row_vector(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn add_sub_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5][..]]);
        let c = &(&a + &b) - &b;
        assert_eq!(c, a);
    }

    #[test]
    #[should_panic]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0][..]]);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let a = Matrix::zeros(1, 1);
        let _ = a[(1, 0)];
    }
}
