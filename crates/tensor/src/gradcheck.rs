//! Finite-difference gradient checking helpers.
//!
//! The LSTM controller in `nasaic-rl` implements backpropagation by hand;
//! these helpers let its tests compare analytic gradients against central
//! finite differences.

use crate::Matrix;

/// Result of a gradient check: the largest relative error observed and the
/// flat index at which it occurred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest relative error between analytic and numeric gradients.
    pub max_relative_error: f64,
    /// Flat (row-major) index where the largest error occurred.
    pub worst_index: usize,
}

impl GradCheckReport {
    /// `true` when the maximum relative error is below `tolerance`.
    pub fn passes(&self, tolerance: f64) -> bool {
        self.max_relative_error <= tolerance
    }
}

/// Numerically estimate the gradient of `loss` with respect to `param` using
/// central differences with step `h`, and compare it against `analytic`.
///
/// `loss` is called with candidate parameter values and must return the
/// scalar loss for that value; it must not retain state between calls.
///
/// # Panics
///
/// Panics if shapes differ or `h` is not strictly positive.
pub fn check_gradient<F>(param: &Matrix, analytic: &Matrix, h: f64, mut loss: F) -> GradCheckReport
where
    F: FnMut(&Matrix) -> f64,
{
    assert_eq!(param.shape(), analytic.shape(), "gradcheck shape mismatch");
    assert!(h > 0.0, "finite-difference step must be positive");
    let mut max_relative_error = 0.0_f64;
    let mut worst_index = 0;
    let mut perturbed = param.clone();
    for idx in 0..param.len() {
        let original = perturbed.as_slice()[idx];
        perturbed.as_mut_slice()[idx] = original + h;
        let plus = loss(&perturbed);
        perturbed.as_mut_slice()[idx] = original - h;
        let minus = loss(&perturbed);
        perturbed.as_mut_slice()[idx] = original;
        let numeric = (plus - minus) / (2.0 * h);
        let reference = analytic.as_slice()[idx];
        let scale = numeric.abs().max(reference.abs()).max(1e-8);
        let rel = (numeric - reference).abs() / scale;
        if rel > max_relative_error {
            max_relative_error = rel;
            worst_index = idx;
        }
    }
    GradCheckReport {
        max_relative_error,
        worst_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_passes_check() {
        // f(x) = sum(x_i^2), df/dx_i = 2 x_i
        let param = Matrix::from_rows(&[&[1.0, -2.0][..], &[0.5, 3.0][..]]);
        let analytic = param.scale(2.0);
        let report = check_gradient(&param, &analytic, 1e-5, |p| {
            p.as_slice().iter().map(|v| v * v).sum()
        });
        assert!(report.passes(1e-6), "report {report:?}");
    }

    #[test]
    fn wrong_gradient_fails_check() {
        let param = Matrix::from_rows(&[&[1.0, -2.0][..]]);
        let wrong = param.scale(3.0); // should be 2x
        let report = check_gradient(&param, &wrong, 1e-5, |p| {
            p.as_slice().iter().map(|v| v * v).sum()
        });
        assert!(!report.passes(1e-3));
        assert!(report.max_relative_error > 0.1);
    }

    #[test]
    fn report_identifies_worst_index() {
        let param = Matrix::from_rows(&[&[1.0, 1.0][..]]);
        // Correct gradient for element 0, wrong for element 1.
        let analytic = Matrix::from_rows(&[&[2.0, 10.0][..]]);
        let report = check_gradient(&param, &analytic, 1e-5, |p| {
            p.as_slice().iter().map(|v| v * v).sum()
        });
        assert_eq!(report.worst_index, 1);
    }

    #[test]
    #[should_panic]
    fn zero_step_panics() {
        let p = Matrix::zeros(1, 1);
        let g = Matrix::zeros(1, 1);
        check_gradient(&p, &g, 0.0, |_| 0.0);
    }
}
