//! Std-only, lock-cheap metrics for the NASAIC reproduction.
//!
//! Three metric kinds, all updated with relaxed atomics so instrumented
//! hot paths never take a lock:
//!
//! * [`Counter`] — monotonically increasing `u64`;
//! * [`Gauge`] — an `f64` sampled point value (stored as bits);
//! * [`Histogram`] — fixed log₂-bucket distribution with a
//!   [`HistogramSnapshot`] carrying count, sum, mean and estimated
//!   p50/p90/p99.
//!
//! Metrics live in a [`MetricsRegistry`] keyed by name plus a sorted
//! label set.  Registration takes a mutex; the returned `Arc` handles are
//! lock-free to update, so callers cache them (a `OnceLock` static per
//! instrumentation site) and pay one registry lookup ever.
//!
//! Observation is *passive by contract*: nothing in this crate feeds back
//! into the instrumented computation, and the process-wide switch
//! ([`set_enabled`]/[`enabled`]) lets cold binaries skip even the atomic
//! updates — a disabled site costs one relaxed load.  `telemetry_baseline`
//! gates the enabled overhead (< 2% on the w1 full run, see
//! `docs/observability.md`).
//!
//! The [`global`] registry is what the daemon's `show metrics`, the
//! Prometheus endpoint and `nasaic profile` read.  [`MetricsRegistry::reset`]
//! zeroes values *in place* — cached handles stay valid.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Process-wide enable switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn instrumentation on or off process-wide.  Off (the default) makes
/// every instrumentation site a single relaxed load; on, sites record into
/// the [`global`] registry.  Outcomes are bit-identical either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation sites should record (one relaxed load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry instrumented code records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time `f64` value (queue depth, hit ratio, episodes/s).
/// Stored as IEEE-754 bits in an atomic; `add` is a compare-exchange loop
/// so concurrent in/decrements never lose updates.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, and the last bucket absorbs
/// everything larger.  63 value buckets cover the full `u64` range, so a
/// nanosecond-resolution timer histogram spans 1 ns to ~292 years at a
/// fixed 2× resolution.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log₂-scale histogram of `u64` samples.
///
/// Recording is three relaxed `fetch_add`s (count, sum, bucket); snapshots
/// estimate percentiles by walking the cumulative bucket counts and
/// reporting the geometric midpoint of the bucket the rank lands in, so
/// p50/p90/p99 carry at most the bucket's 2× quantisation error.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket index a value lands in (0 for 0, else `floor(log2 v) + 1`,
/// saturated to the last bucket).
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The representative (geometric midpoint) value reported for a bucket.
fn bucket_midpoint(index: usize) -> f64 {
    if index == 0 {
        0.0
    } else {
        // Bucket i covers [2^(i-1), 2^i); midpoint 1.5 * 2^(i-1).
        1.5 * (index as f64 - 1.0).exp2()
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Start a [`TimerSpan`] that records elapsed nanoseconds into this
    /// histogram when dropped.
    pub fn time(self: &Arc<Self>) -> TimerSpan {
        TimerSpan {
            histogram: Some(Arc::clone(self)),
            start: Instant::now(),
        }
    }

    /// A consistent-enough snapshot (relaxed loads; exact once writers are
    /// quiescent).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let percentile = |p: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (index, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_midpoint(index);
                }
            }
            bucket_midpoint(HISTOGRAM_BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Exact mean (`sum / count`; 0 when empty).
    pub mean: f64,
    /// Estimated median (bucket midpoint, ≤ 2× quantisation).
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// A scoped timing guard: created by [`Histogram::time`] (or
/// [`TimerSpan::disabled`] when telemetry is off), records elapsed
/// nanoseconds into its histogram on drop.
#[must_use = "a TimerSpan records on drop; binding it to `_span` keeps the scope timed"]
pub struct TimerSpan {
    histogram: Option<Arc<Histogram>>,
    start: Instant,
}

impl TimerSpan {
    /// A no-op span for the disabled path, so call sites stay branch-free:
    /// `let _span = if enabled { h.time() } else { TimerSpan::disabled() };`
    pub fn disabled() -> Self {
        Self {
            histogram: None,
            start: Instant::now(),
        }
    }
}

impl Drop for TimerSpan {
    fn drop(&mut self) {
        if let Some(histogram) = &self.histogram {
            histogram.record(self.start.elapsed().as_nanos() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// What a registry slot holds.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The value part of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(f64),
    /// A histogram summary.
    Histogram(HistogramSnapshot),
}

/// One metric, frozen for exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name (`nasaic_serve_queue_depth`, ...).
    pub name: String,
    /// Sorted `(key, value)` label pairs; empty for unlabelled metrics.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// The `{k="v",...}` label suffix (empty string when unlabelled).
    pub fn label_suffix(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let parts: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{{{}}}", parts.join(","))
    }
}

/// A metric's registry key: family name plus sorted label pairs.
type MetricKey = (String, Vec<(String, String)>);

/// A named collection of metrics.  `counter`/`gauge`/`histogram` register
/// on first use and return the existing handle afterwards; mixing kinds
/// under one (name, labels) key panics — that is always an instrumentation
/// bug, never data-dependent.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    key.sort();
    key
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `(name, labels)`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let slot = metrics
            .entry((name.to_string(), label_key(labels)))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match slot {
            Metric::Counter(counter) => Arc::clone(counter),
            _ => panic!("metric `{name}` is already registered with another kind"),
        }
    }

    /// The gauge registered under `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let slot = metrics
            .entry((name.to_string(), label_key(labels)))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match slot {
            Metric::Gauge(gauge) => Arc::clone(gauge),
            _ => panic!("metric `{name}` is already registered with another kind"),
        }
    }

    /// The histogram registered under `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let slot = metrics
            .entry((name.to_string(), label_key(labels)))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())));
        match slot {
            Metric::Histogram(histogram) => Arc::clone(histogram),
            _ => panic!("metric `{name}` is already registered with another kind"),
        }
    }

    /// Freeze every metric, sorted by `(name, labels)` so output is
    /// deterministic.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        metrics
            .iter()
            .map(|((name, labels), metric)| MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Zero every metric **in place** — handles cached by instrumentation
    /// sites stay registered and valid (`nasaic profile` resets before its
    /// measured run).
    pub fn reset(&self) {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// The registry in Prometheus text exposition format (version 0.0.4).
    /// Histograms are exposed as `summary` families: `{quantile="…"}`
    /// series plus `_sum`, `_count` and a `_mean` gauge.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for snap in self.snapshot() {
            let suffix = snap.label_suffix();
            match snap.value {
                MetricValue::Counter(v) => {
                    if last_family != snap.name {
                        out.push_str(&format!("# TYPE {} counter\n", snap.name));
                        last_family = snap.name.clone();
                    }
                    out.push_str(&format!("{}{} {}\n", snap.name, suffix, v));
                }
                MetricValue::Gauge(v) => {
                    if last_family != snap.name {
                        out.push_str(&format!("# TYPE {} gauge\n", snap.name));
                        last_family = snap.name.clone();
                    }
                    out.push_str(&format!("{}{} {}\n", snap.name, suffix, render_f64(v)));
                }
                MetricValue::Histogram(h) => {
                    if last_family != snap.name {
                        out.push_str(&format!("# TYPE {} summary\n", snap.name));
                        last_family = snap.name.clone();
                    }
                    for (q, value) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                        let mut labels = snap.labels.clone();
                        labels.push(("quantile".to_string(), q.to_string()));
                        let parts: Vec<String> =
                            labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
                        out.push_str(&format!(
                            "{}{{{}}} {}\n",
                            snap.name,
                            parts.join(","),
                            render_f64(value)
                        ));
                    }
                    out.push_str(&format!("{}_sum{} {}\n", snap.name, suffix, h.sum));
                    out.push_str(&format!("{}_count{} {}\n", snap.name, suffix, h.count));
                }
            }
        }
        out
    }
}

/// Prometheus-friendly float rendering: integral values without an
/// exponent, everything else via the shortest `{}` form.
fn render_f64(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset_in_place() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("jobs_total", &[]);
        let b = registry.counter("jobs_total", &[]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "both handles hit the same counter");
        registry.reset();
        assert_eq!(a.get(), 0, "reset zeroes in place");
        a.inc();
        assert_eq!(registry.counter("jobs_total", &[]).get(), 1);
    }

    #[test]
    fn labels_distinguish_series_and_order_does_not() {
        let registry = MetricsRegistry::new();
        let ab = registry.counter("hits", &[("cache", "accuracy"), ("engine", "w1")]);
        let ba = registry.counter("hits", &[("engine", "w1"), ("cache", "accuracy")]);
        let other = registry.counter("hits", &[("cache", "hardware"), ("engine", "w1")]);
        ab.inc();
        ba.inc();
        other.add(10);
        assert_eq!(ab.get(), 2, "label order is normalised");
        assert_eq!(other.get(), 10);
        assert_eq!(registry.snapshot().len(), 2);
    }

    #[test]
    fn gauges_set_and_add_concurrently_safe() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("queue_depth", &[]);
        gauge.set(3.0);
        gauge.add(2.0);
        gauge.add(-4.0);
        assert_eq!(gauge.get(), 1.0);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&gauge);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        g.add(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(gauge.get(), 8001.0, "concurrent adds never lose updates");
    }

    #[test]
    fn histogram_snapshot_reports_exact_count_sum_mean() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 110);
        assert_eq!(snap.mean, 22.0);
    }

    #[test]
    fn histogram_percentiles_land_in_the_right_bucket() {
        let h = Histogram::default();
        // 90 fast samples around 1 µs, 10 slow around 1 ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let snap = h.snapshot();
        // p50 within the 2x bucket around 1_000.
        assert!((512.0..2048.0).contains(&snap.p50), "p50 = {}", snap.p50);
        // p99 lands in the slow mode.
        assert!(snap.p99 > 500_000.0, "p99 = {}", snap.p99);
        assert!(snap.p90 >= snap.p50);
        assert!(snap.p99 >= snap.p90);
    }

    #[test]
    fn zero_and_huge_values_do_not_panic() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.p50, 0.0, "the zero bucket reports 0");
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.mean, 0.0);
        assert_eq!(snap.p99, 0.0);
    }

    #[test]
    fn timer_span_records_elapsed_nanoseconds() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("span_ns", &[]);
        {
            let _span = h.time();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 2_000_000, "span under-reported: {}", snap.sum);
        // The disabled span records nothing.
        drop(TimerSpan::disabled());
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn enable_switch_defaults_off_and_toggles() {
        // Default state in a fresh process is disabled; this test runs in
        // the library's own process, so restore whatever it found.
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }

    #[test]
    fn prometheus_rendering_covers_all_three_kinds() {
        let registry = MetricsRegistry::new();
        registry
            .counter("requests_total", &[("code", "200")])
            .add(7);
        registry.gauge("queue_depth", &[]).set(3.0);
        let h = registry.histogram("latency_ns", &[("job", "w1")]);
        h.record(1000);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total{code=\"200\"} 7"), "{text}");
        assert!(text.contains("# TYPE queue_depth gauge"), "{text}");
        assert!(text.contains("queue_depth 3"), "{text}");
        assert!(text.contains("# TYPE latency_ns summary"), "{text}");
        assert!(
            text.contains("latency_ns{job=\"w1\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("latency_ns_sum{job=\"w1\"} 1000"), "{text}");
        assert!(text.contains("latency_ns_count{job=\"w1\"} 1"), "{text}");
    }

    #[test]
    fn snapshot_is_deterministically_sorted() {
        let registry = MetricsRegistry::new();
        registry.counter("zeta", &[]).inc();
        registry.counter("alpha", &[("b", "2")]).inc();
        registry.counter("alpha", &[("b", "1")]).inc();
        let names: Vec<String> = registry
            .snapshot()
            .iter()
            .map(|s| format!("{}{}", s.name, s.label_suffix()))
            .collect();
        assert_eq!(names, vec!["alpha{b=\"1\"}", "alpha{b=\"2\"}", "zeta"]);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_is_an_instrumentation_bug() {
        let registry = MetricsRegistry::new();
        registry.counter("x", &[]);
        registry.gauge("x", &[]);
    }
}
