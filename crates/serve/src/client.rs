//! The scripting client behind `nasaic client`: one TCP connection, typed
//! requests in, parsed responses out.

use crate::protocol::{self, Request};
use crate::ServeError;
use nasaic_core::scenario::ConfigValue;
use std::io::BufReader;
use std::net::TcpStream;

/// A connection to a running `nasaic serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to the daemon at `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Returns an error when the connection cannot be established.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServeError::new(format!("cannot connect to {addr}: {e}")))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Send one request and read one response line.
    ///
    /// Not suitable for `submit` with `watch` — that interleaves event
    /// lines before the final response; use [`Client::submit_watch`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, a closed connection, or a
    /// malformed response.
    pub fn request(&mut self, request: &Request) -> Result<ConfigValue, ServeError> {
        protocol::write_line(&mut self.writer, &request.to_value())?;
        self.read_response()
    }

    /// Submit a scenario with `watch: true`: `on_event` is called for each
    /// streamed event line (after the `{"ok":true,"job":N}` ack, which is
    /// also passed to it), and the final `"done": true` response is
    /// returned once the job reaches a terminal state.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, a closed connection, or a
    /// malformed line.
    pub fn submit_watch(
        &mut self,
        scenario: ConfigValue,
        mut on_event: impl FnMut(&ConfigValue),
    ) -> Result<ConfigValue, ServeError> {
        let request = Request::Submit {
            scenario,
            watch: true,
        };
        protocol::write_line(&mut self.writer, &request.to_value())?;
        loop {
            let value = self.read_response()?;
            let done = value.get("done").and_then(ConfigValue::as_bool) == Some(true);
            let rejected = value.get("ok").and_then(ConfigValue::as_bool) == Some(false)
                && value.get("job").is_none();
            if done || rejected {
                return Ok(value);
            }
            on_event(&value);
        }
    }

    fn read_response(&mut self) -> Result<ConfigValue, ServeError> {
        let line = protocol::read_line(&mut self.reader)?
            .ok_or_else(|| ServeError::new("daemon closed the connection"))?;
        Ok(nasaic_core::scenario::value::parse_json(&line)?)
    }
}
