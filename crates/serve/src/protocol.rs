//! The wire protocol of `nasaic serve`: line-delimited JSON over TCP.
//!
//! Every request and response is one JSON object on one line (`\n`
//! terminated), serialized through the same hand-rolled
//! [`ConfigValue`] JSON codec the scenario configs use.  Requests carry a
//! `cmd` discriminator; responses always carry `ok` (`true`/`false`, with
//! an `error` message when `false`).  A `submit` with `"watch": true`
//! additionally streams one line per incumbent improvement before the
//! final `"done": true` response — the model-driven `show <leaf>` shape:
//! the daemon's live state is exactly the search's observer event stream.
//!
//! ```text
//! -> {"cmd":"ping"}
//! <- {"ok":true,"pong":true,"protocol":1}
//! -> {"cmd":"submit","watch":true,"scenario":{...}}
//! <- {"ok":true,"job":3,"state":"queued"}
//! <- {"job":3,"event":"new_incumbent","episode":0,...}
//! <- {"ok":true,"job":3,"done":true,"state":"finished","report":{...}}
//! -> {"cmd":"show","what":"jobs"}
//! <- {"ok":true,"jobs":[{"job":3,"scenario":"w1","state":"finished",...}]}
//! ```

use nasaic_core::scenario::{ConfigError, ConfigValue};
use std::io::{BufRead, Write};

/// Protocol revision carried in `ping` responses; bumped on breaking wire
/// changes.
pub const PROTOCOL_VERSION: i64 = 1;

/// One client request, the typed form of a `{"cmd": ...}` line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Submit a scenario (the full PR 2 config value, already resolved
    /// client-side) as a job; `watch` streams incumbent events and blocks
    /// the reply until the job finishes.
    Submit {
        /// The scenario config value (as produced by `Scenario::to_value`).
        scenario: ConfigValue,
        /// Stream events and the final report instead of just the job id.
        watch: bool,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The job id to cancel.
        job: u64,
    },
    /// List all jobs the daemon knows about.
    ShowJobs,
    /// Per-engine cache statistics (hits, misses, entries, evictions,
    /// capacities).
    ShowCache,
    /// The latest incumbent of one job, if any.
    ShowIncumbent {
        /// The job id to query.
        job: u64,
    },
    /// A snapshot of the daemon's telemetry registry (counters, gauges,
    /// histogram quantiles).
    ShowMetrics,
    /// Stop accepting work, finish running jobs, persist caches and exit.
    Shutdown,
}

impl Request {
    /// Serialize to the wire value.
    pub fn to_value(&self) -> ConfigValue {
        let mut root = ConfigValue::table();
        match self {
            Request::Ping => root.insert("cmd", ConfigValue::Str("ping".into())),
            Request::Submit { scenario, watch } => {
                root.insert("cmd", ConfigValue::Str("submit".into()));
                root.insert("scenario", scenario.clone());
                root.insert("watch", ConfigValue::Bool(*watch));
            }
            Request::Cancel { job } => {
                root.insert("cmd", ConfigValue::Str("cancel".into()));
                root.insert("job", ConfigValue::Integer(*job as i64));
            }
            Request::ShowJobs => {
                root.insert("cmd", ConfigValue::Str("show".into()));
                root.insert("what", ConfigValue::Str("jobs".into()));
            }
            Request::ShowCache => {
                root.insert("cmd", ConfigValue::Str("show".into()));
                root.insert("what", ConfigValue::Str("cache".into()));
            }
            Request::ShowIncumbent { job } => {
                root.insert("cmd", ConfigValue::Str("show".into()));
                root.insert("what", ConfigValue::Str("incumbent".into()));
                root.insert("job", ConfigValue::Integer(*job as i64));
            }
            Request::ShowMetrics => {
                root.insert("cmd", ConfigValue::Str("show".into()));
                root.insert("what", ConfigValue::Str("metrics".into()));
            }
            Request::Shutdown => root.insert("cmd", ConfigValue::Str("shutdown".into())),
        }
        root
    }

    /// Parse the wire value back into a typed request.
    ///
    /// # Errors
    ///
    /// Returns a schema error for a missing/unknown `cmd`, a missing
    /// operand (`job`, `scenario`, `what`) or a malformed field.
    pub fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        let cmd = value
            .get("cmd")
            .and_then(ConfigValue::as_str)
            .ok_or_else(|| ConfigError::schema("request: missing cmd"))?;
        let job = |value: &ConfigValue| -> Result<u64, ConfigError> {
            let id = value
                .get("job")
                .and_then(ConfigValue::as_integer)
                .ok_or_else(|| ConfigError::schema(format!("request: {cmd} needs a job id")))?;
            u64::try_from(id).map_err(|_| ConfigError::schema(format!("request: bad job id {id}")))
        };
        match cmd {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let scenario = value
                    .get("scenario")
                    .ok_or_else(|| ConfigError::schema("request: submit needs a scenario"))?
                    .clone();
                let watch = value
                    .get("watch")
                    .and_then(ConfigValue::as_bool)
                    .unwrap_or(false);
                Ok(Request::Submit { scenario, watch })
            }
            "cancel" => Ok(Request::Cancel { job: job(value)? }),
            "show" => {
                let what = value
                    .get("what")
                    .and_then(ConfigValue::as_str)
                    .ok_or_else(|| ConfigError::schema("request: show needs `what`"))?;
                match what {
                    "jobs" => Ok(Request::ShowJobs),
                    "cache" => Ok(Request::ShowCache),
                    "incumbent" => Ok(Request::ShowIncumbent { job: job(value)? }),
                    "metrics" => Ok(Request::ShowMetrics),
                    other => Err(ConfigError::schema(format!(
                        "request: unknown show leaf `{other}` (jobs, cache, incumbent, metrics)"
                    ))),
                }
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ConfigError::schema(format!(
                "request: unknown cmd `{other}` \
                 (ping, submit, cancel, show, shutdown)"
            ))),
        }
    }

    /// Parse one wire line.
    ///
    /// # Errors
    ///
    /// Returns a schema error for invalid JSON or an invalid request.
    pub fn parse_line(line: &str) -> Result<Self, ConfigError> {
        Self::from_value(&nasaic_core::scenario::value::parse_json(line)?)
    }
}

/// A successful response skeleton: `{"ok": true}`, extended by the caller.
pub fn ok_response() -> ConfigValue {
    let mut root = ConfigValue::table();
    root.insert("ok", ConfigValue::Bool(true));
    root
}

/// An error response: `{"ok": false, "error": message}`.
pub fn error_response(message: impl Into<String>) -> ConfigValue {
    let mut root = ConfigValue::table();
    root.insert("ok", ConfigValue::Bool(false));
    root.insert("error", ConfigValue::Str(message.into()));
    root
}

/// Write one value as a compact single JSON line and flush, so the peer
/// sees it immediately (the daemon streams events as they happen).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_line(writer: &mut impl Write, value: &ConfigValue) -> std::io::Result<()> {
    let line = nasaic_core::scenario::value::to_json_compact(value);
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Read one line (without the terminator); `None` at end of stream.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn read_line(reader: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    let read = reader.read_line(&mut line)?;
    if read == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_core::scenario::registry;
    use nasaic_core::scenario::value::{parse_json, to_json_compact};

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let scenario = registry::get("w1").expect("built-in").to_value();
        let requests = vec![
            Request::Ping,
            Request::Submit {
                scenario,
                watch: true,
            },
            Request::Cancel { job: 7 },
            Request::ShowJobs,
            Request::ShowCache,
            Request::ShowIncumbent { job: 3 },
            Request::ShowMetrics,
            Request::Shutdown,
        ];
        for request in requests {
            let line = to_json_compact(&request.to_value());
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::parse_line(&line).expect("parses"), request);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_a_reason() {
        for (line, needle) in [
            (r#"{"nope":1}"#, "missing cmd"),
            (r#"{"cmd":"fly"}"#, "unknown cmd"),
            (r#"{"cmd":"cancel"}"#, "needs a job id"),
            (r#"{"cmd":"cancel","job":-4}"#, "bad job id"),
            (r#"{"cmd":"show","what":"weather"}"#, "unknown show leaf"),
            (r#"{"cmd":"submit"}"#, "needs a scenario"),
        ] {
            let err = Request::parse_line(line).expect_err(line).to_string();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn responses_carry_the_ok_flag() {
        assert_eq!(ok_response().get("ok").unwrap().as_bool(), Some(true));
        let error = error_response("queue full");
        assert_eq!(error.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(error.get("error").unwrap().as_str(), Some("queue full"));
    }

    #[test]
    fn line_framing_round_trips() {
        let mut buffer = Vec::new();
        write_line(&mut buffer, &ok_response()).unwrap();
        write_line(&mut buffer, &error_response("x")).unwrap();
        let mut reader = std::io::BufReader::new(buffer.as_slice());
        let first = read_line(&mut reader).unwrap().expect("first line");
        assert_eq!(parse_json(&first).unwrap(), ok_response());
        let second = read_line(&mut reader).unwrap().expect("second line");
        assert_eq!(parse_json(&second).unwrap(), error_response("x"));
        assert_eq!(read_line(&mut reader).unwrap(), None);
    }
}
