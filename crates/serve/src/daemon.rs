//! The `nasaic serve` daemon: a TCP job runner over shared warm engines.
//!
//! One process holds a registry of [`EvalEngine`]s — one per *scenario
//! identity* (workload + specs + scheduler), because engines are only
//! shareable between runs that agree on all three (the core's
//! `check_engine` gate) — and runs submitted scenarios as jobs over a
//! bounded queue and a fixed worker pool.  Everything is `std`: a
//! [`TcpListener`], one handler thread per connection, worker threads
//! draining the queue.
//!
//! Durability: with a `state_dir`, every submitted job is journaled before
//! it is queued, running jobs checkpoint through
//! [`FileCheckpointSink`], and results are persisted on completion — so a
//! killed daemon re-queues its unfinished jobs on restart and resumes them
//! from their checkpoints bit-identically.  A *graceful* shutdown
//! additionally exports every engine's caches; the next start imports
//! them, which changes wall time only, never outcomes (cached values are
//! pure).

use crate::protocol::{self, Request, PROTOCOL_VERSION};
use crate::ServeError;
use nasaic_core::algorithm::{SearchEvent, SearchObserver};
use nasaic_core::checkpoint::{
    CheckpointSink, FileCheckpointSink, NullCheckpointSink, SearchCheckpoint,
};
use nasaic_core::engine::{CacheStats, EngineConfig, EvalEngine};
use nasaic_core::scenario::value::{parse_json, to_json};
use nasaic_core::scenario::{ConfigValue, Scenario};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Daemon telemetry (see docs/observability.md for the catalogue)
// ---------------------------------------------------------------------------

/// Cached handles into the global registry for the daemon's hot-ish paths
/// (labels are fixed, so one lookup per process suffices).
fn queue_depth_gauge() -> &'static Arc<nasaic_telemetry::Gauge> {
    static HANDLE: OnceLock<Arc<nasaic_telemetry::Gauge>> = OnceLock::new();
    HANDLE.get_or_init(|| nasaic_telemetry::global().gauge("nasaic_serve_queue_depth", &[]))
}

fn queue_wait_histogram() -> &'static Arc<nasaic_telemetry::Histogram> {
    static HANDLE: OnceLock<Arc<nasaic_telemetry::Histogram>> = OnceLock::new();
    HANDLE.get_or_init(|| nasaic_telemetry::global().histogram("nasaic_serve_queue_wait_ms", &[]))
}

fn job_wall_histogram() -> &'static Arc<nasaic_telemetry::Histogram> {
    static HANDLE: OnceLock<Arc<nasaic_telemetry::Histogram>> = OnceLock::new();
    HANDLE.get_or_init(|| nasaic_telemetry::global().histogram("nasaic_serve_job_wall_ms", &[]))
}

fn submits_counter() -> &'static Arc<nasaic_telemetry::Counter> {
    static HANDLE: OnceLock<Arc<nasaic_telemetry::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| nasaic_telemetry::global().counter("nasaic_serve_submits_total", &[]))
}

fn rejects_counter() -> &'static Arc<nasaic_telemetry::Counter> {
    static HANDLE: OnceLock<Arc<nasaic_telemetry::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| nasaic_telemetry::global().counter("nasaic_serve_rejects_total", &[]))
}

fn cancels_counter() -> &'static Arc<nasaic_telemetry::Counter> {
    static HANDLE: OnceLock<Arc<nasaic_telemetry::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| nasaic_telemetry::global().counter("nasaic_serve_cancels_total", &[]))
}

fn resumes_counter() -> &'static Arc<nasaic_telemetry::Counter> {
    static HANDLE: OnceLock<Arc<nasaic_telemetry::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| nasaic_telemetry::global().counter("nasaic_serve_resumes_total", &[]))
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port `0` binds an ephemeral port,
    /// reported via [`DaemonHandle::addr`]).
    pub addr: String,
    /// Durability root: job journal, checkpoints and persisted caches live
    /// here.  `None` disables persistence (jobs die with the process).
    pub state_dir: Option<PathBuf>,
    /// Maximum *queued* (not yet running) jobs; a full queue rejects
    /// submits with an explicit reason instead of queuing silently.
    pub queue_capacity: usize,
    /// Worker threads, i.e. concurrently running jobs.
    pub workers: usize,
    /// Per-job engine thread budget (`0` = all cores).  With several
    /// workers, bound this so concurrent jobs don't oversubscribe the
    /// machine.
    pub job_threads: usize,
    /// Accuracy-cache bound per engine, in entries (`0` = unbounded).
    pub accuracy_capacity: usize,
    /// Hardware-cache bound per engine, in entries (`0` = unbounded).
    pub hardware_capacity: usize,
    /// Checkpoint running jobs every N progress units (only with a
    /// `state_dir`).
    pub checkpoint_every: usize,
    /// Optional Prometheus text-format exposition address (`host:port`;
    /// port `0` binds an ephemeral port, reported via
    /// [`DaemonHandle::metrics_addr`]).  `None` disables the endpoint;
    /// `show metrics` over the control plane works either way.
    pub metrics_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7764".to_string(),
            state_dir: None,
            queue_capacity: 16,
            workers: 2,
            job_threads: 0,
            // A long-lived engine must not grow without bound; 64k entries
            // per cache is plenty for days of work (entries are small) and
            // eviction only ever costs recomputation.
            accuracy_capacity: 1 << 16,
            hardware_capacity: 1 << 16,
            checkpoint_every: 1,
            metrics_addr: None,
        }
    }
}

impl ServeConfig {
    /// The engine configuration every shared engine is built with.
    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            threads: self.job_threads,
            caching: true,
            accuracy_capacity: self.accuracy_capacity,
            hardware_capacity: self.hardware_capacity,
        }
    }
}

/// The identity under which a scenario may share an engine: everything the
/// core's engine/scenario compatibility gate checks — derived workload
/// name, tasks, specs and scheduler policy.  Seed, episode budget and
/// algorithm deliberately do *not* contribute: those vary per job and are
/// exactly what a warm engine amortises across.
pub fn engine_key(scenario: &Scenario) -> String {
    let workload = scenario.workload();
    let tasks: Vec<String> = workload
        .tasks
        .iter()
        .map(|task| {
            format!(
                "{}:{}:{:x}",
                task.name,
                task.backbone.name(),
                task.weight.to_bits()
            )
        })
        .collect();
    format!(
        "{}|{:x}|{:x}|{:x}|{}|{}",
        workload.name,
        scenario.specs.latency_cycles.to_bits(),
        scenario.specs.energy_nj.to_bits(),
        scenario.specs.area_um2.to_bits(),
        scenario.search.scheduler.name(),
        tasks.join(",")
    )
}

/// Cancellation sentinel: the job observer unwinds the driver with this
/// payload, the worker catches it.  A dedicated type so the panic hook can
/// silence it and the worker can tell it apart from a real panic.
struct JobCancelled;

/// Silence the cancellation sentinel in the global panic hook (installed
/// once per process; all other panics go to the previous hook).
fn install_cancel_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<JobCancelled>().is_some() {
                return;
            }
            previous(info);
        }));
    });
}

/// Terminal and in-flight states of one job.
#[derive(Debug, Clone, PartialEq)]
enum JobState {
    Queued,
    Running,
    /// Finished; carries the report as its JSON value.
    Finished(ConfigValue),
    Failed(String),
    Cancelled,
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Finished(_) => "finished",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Finished(_) | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// One submitted job.
struct Job {
    id: u64,
    scenario: Scenario,
    state: Mutex<JobState>,
    state_cv: Condvar,
    cancel: AtomicBool,
    /// The latest `new_incumbent` event (wire form), for `show incumbent`.
    incumbent: Mutex<Option<ConfigValue>>,
    /// Streams of clients watching this job; incumbent events are written
    /// to each as they happen, broken pipes are dropped.
    watchers: Mutex<Vec<TcpStream>>,
    /// When the job entered the queue (for restored jobs: when it was
    /// re-queued, not its original submission — monotonic clocks don't
    /// survive restarts).
    enqueued: Instant,
    /// When a worker picked the job up; `None` while queued.
    started: Mutex<Option<Instant>>,
    /// When the job reached a terminal state; `None` before that.
    finished: Mutex<Option<Instant>>,
}

impl Job {
    fn new(id: u64, scenario: Scenario) -> Self {
        Self {
            id,
            scenario,
            state: Mutex::new(JobState::Queued),
            state_cv: Condvar::new(),
            cancel: AtomicBool::new(false),
            incumbent: Mutex::new(None),
            watchers: Mutex::new(Vec::new()),
            enqueued: Instant::now(),
            started: Mutex::new(None),
            finished: Mutex::new(None),
        }
    }

    /// Mark the instant a worker picked the job up and return the queue
    /// wait it accrued.
    fn mark_started(&self) -> Duration {
        let now = Instant::now();
        *self.started.lock().expect("job started lock") = Some(now);
        now - self.enqueued
    }

    /// Mark the instant the job reached a terminal state and return its
    /// end-to-end (enqueue -> terminal) duration.
    fn mark_finished(&self) -> Duration {
        let now = Instant::now();
        *self.finished.lock().expect("job finished lock") = Some(now);
        now - self.enqueued
    }

    fn set_state(&self, state: JobState) {
        *self.state.lock().expect("job state lock") = state;
        self.state_cv.notify_all();
    }

    fn state(&self) -> JobState {
        self.state.lock().expect("job state lock").clone()
    }

    fn send_to_watchers(&self, value: &ConfigValue) {
        let mut watchers = self.watchers.lock().expect("watchers lock");
        watchers.retain_mut(|stream| protocol::write_line(stream, value).is_ok());
    }

    /// One row of `show jobs`.
    fn summary_value(&self) -> ConfigValue {
        let mut row = ConfigValue::table();
        row.insert("job", ConfigValue::Integer(self.id as i64));
        row.insert("scenario", ConfigValue::Str(self.scenario.name.clone()));
        row.insert(
            "algorithm",
            ConfigValue::Str(self.scenario.search.algorithm.name().to_string()),
        );
        row.insert("seed", ConfigValue::Integer(self.scenario.seed as i64));
        row.insert(
            "episodes",
            ConfigValue::Integer(self.scenario.search.episodes as i64),
        );
        let state = self.state();
        row.insert("state", ConfigValue::Str(state.label().to_string()));
        if let JobState::Failed(error) = &state {
            row.insert("error", ConfigValue::Str(error.clone()));
        }
        // Timing: queue wait once a worker picked the job up, run time
        // live while running and frozen once terminal.
        let started = *self.started.lock().expect("job started lock");
        if let Some(started) = started {
            row.insert(
                "queue_wait_ms",
                ConfigValue::Integer((started - self.enqueued).as_millis() as i64),
            );
            let end = self
                .finished
                .lock()
                .expect("job finished lock")
                .unwrap_or_else(Instant::now);
            row.insert(
                "run_ms",
                ConfigValue::Integer((end - started).as_millis() as i64),
            );
        }
        row
    }
}

/// Streams incumbents to watchers, records them for `show incumbent`, and
/// carries the cancellation flag into the running driver.  Observation is
/// passive — outcomes are bit-identical to an unobserved run.
struct JobObserver {
    job: Arc<Job>,
}

impl SearchObserver for JobObserver {
    fn on_event(&self, event: &SearchEvent) {
        // The driver calls observers at episode boundaries with no engine
        // lock held, so unwinding here is safe and prompt (at most one
        // episode after the cancel landed).
        if self.job.cancel.load(Ordering::Relaxed) {
            std::panic::panic_any(JobCancelled);
        }
        if let SearchEvent::NewIncumbent { .. } = event {
            let mut value = event.to_value();
            value.insert("job", ConfigValue::Integer(self.job.id as i64));
            *self.job.incumbent.lock().expect("incumbent lock") = Some(value.clone());
            self.job.send_to_watchers(&value);
        }
    }
}

/// Engines shared across jobs, one per [`engine_key`].
struct EngineRegistry {
    config: EngineConfig,
    engines: Mutex<BTreeMap<String, Arc<EvalEngine>>>,
    /// Cache exports loaded from a previous graceful shutdown, consumed
    /// lazily when the matching engine is first built.
    preloaded: Mutex<HashMap<String, ConfigValue>>,
}

impl EngineRegistry {
    fn new(config: EngineConfig, preloaded: HashMap<String, ConfigValue>) -> Self {
        Self {
            config,
            engines: Mutex::new(BTreeMap::new()),
            preloaded: Mutex::new(preloaded),
        }
    }

    fn engine_for(&self, scenario: &Scenario) -> Arc<EvalEngine> {
        let key = engine_key(scenario);
        let mut engines = self.engines.lock().expect("engine registry lock");
        if let Some(engine) = engines.get(&key) {
            return engine.clone();
        }
        let engine = Arc::new(scenario.engine_with_config(self.config));
        if let Some(export) = self
            .preloaded
            .lock()
            .expect("preloaded caches lock")
            .remove(&key)
        {
            // A corrupt persisted cache must not take the daemon down:
            // the hardened import rejects it wholesale (caches untouched)
            // and the engine simply starts cold.
            if let Err(error) = engine.import_caches(&export) {
                eprintln!(
                    "nasaic serve: discarding persisted caches for `{}`: {error}",
                    scenario.name
                );
            }
        }
        engines.insert(key, engine.clone());
        engine
    }

    /// `(key, stats)` per engine, for `show cache` and the shutdown log.
    fn stats(&self) -> Vec<(String, CacheStats)> {
        self.engines
            .lock()
            .expect("engine registry lock")
            .iter()
            .map(|(key, engine)| (key.clone(), engine.stats()))
            .collect()
    }

    /// Serialize every engine's caches for warm restarts.
    fn export_all(&self) -> ConfigValue {
        let engines = self.engines.lock().expect("engine registry lock");
        let mut rows = Vec::with_capacity(engines.len());
        for (key, engine) in engines.iter() {
            let mut row = ConfigValue::table();
            row.insert("key", ConfigValue::Str(key.clone()));
            row.insert("caches", engine.export_caches());
            rows.push(row);
        }
        let mut root = ConfigValue::table();
        root.insert("version", ConfigValue::Integer(1));
        root.insert("engines", ConfigValue::Array(rows));
        root
    }
}

/// State shared by the accept loop, handlers and workers.
struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    engines: EngineRegistry,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// Read-half clones of open connections, so shutdown can unblock
    /// handlers parked in `read_line` (clients are free to keep idle
    /// connections open indefinitely).  Keyed by connection id; each
    /// handler removes its entry when it exits, so the map tracks live
    /// connections only.
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_connection: AtomicU64,
}

impl Shared {
    fn jobs_dir(&self) -> Option<PathBuf> {
        self.config.state_dir.as_ref().map(|dir| dir.join("jobs"))
    }

    fn job_path(&self, id: u64, suffix: &str) -> Option<PathBuf> {
        self.jobs_dir()
            .map(|dir| dir.join(format!("{id}.{suffix}")))
    }

    fn enqueue(&self, job: Arc<Job>) {
        self.jobs
            .lock()
            .expect("jobs lock")
            .insert(job.id, job.clone());
        let mut queue = self.queue.lock().expect("queue lock");
        queue.push_back(job);
        if nasaic_telemetry::enabled() {
            queue_depth_gauge().set(queue.len() as f64);
        }
        drop(queue);
        self.queue_cv.notify_one();
    }

    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().expect("jobs lock").get(&id).cloned()
    }

    /// Persist a job's terminal state (best effort: the in-memory state is
    /// authoritative for connected clients; the journal is for restarts).
    fn persist_result(&self, job: &Job, state: &JobState) {
        let Some(path) = self.job_path(job.id, "result.json") else {
            return;
        };
        let mut root = ConfigValue::table();
        root.insert("version", ConfigValue::Integer(1));
        root.insert("job", ConfigValue::Integer(job.id as i64));
        root.insert("status", ConfigValue::Str(state.label().to_string()));
        match state {
            JobState::Finished(report) => root.insert("report", report.clone()),
            JobState::Failed(error) => root.insert("error", ConfigValue::Str(error.clone())),
            _ => {}
        }
        if let Err(error) = write_atomic(&path, &to_json(&root)) {
            eprintln!(
                "nasaic serve: cannot persist result of job {}: {error}",
                job.id
            );
        }
        // The checkpoint has served its purpose once the job is terminal.
        if let Some(ckpt) = self.job_path(job.id, "ckpt.json") {
            let _ = std::fs::remove_file(ckpt);
        }
    }

    /// Record a job's terminal telemetry (latency histogram, cancel
    /// counter, the owning engine's cache gauges) and set its state.
    fn finish_job(&self, job: &Arc<Job>, state: JobState, engine: Option<&EvalEngine>) {
        let wall = job.mark_finished();
        if nasaic_telemetry::enabled() {
            job_wall_histogram().record(wall.as_millis() as u64);
            if matches!(state, JobState::Cancelled) {
                cancels_counter().inc();
            }
            if let Some(engine) = engine {
                engine.publish_metrics(&job.scenario.workload().name);
            }
        }
        self.persist_result(job, &state);
        job.set_state(state);
    }

    /// Run one job to a terminal state (worker thread).
    fn run_job(&self, job: &Arc<Job>) {
        let queue_wait = job.mark_started();
        if nasaic_telemetry::enabled() {
            queue_wait_histogram().record(queue_wait.as_millis() as u64);
        }
        if job.cancel.load(Ordering::Relaxed) {
            self.finish_job(job, JobState::Cancelled, None);
            return;
        }
        job.set_state(JobState::Running);
        let resume = self
            .job_path(job.id, "ckpt.json")
            .filter(|path| path.exists())
            .and_then(|path| {
                let text = std::fs::read_to_string(&path).ok()?;
                match SearchCheckpoint::parse_json(&text) {
                    Ok(checkpoint) => Some(checkpoint),
                    Err(error) => {
                        eprintln!(
                            "nasaic serve: ignoring bad checkpoint of job {}: {error}",
                            job.id
                        );
                        None
                    }
                }
            });
        if resume.is_some() && nasaic_telemetry::enabled() {
            resumes_counter().inc();
        }
        let engine = self.engines.engine_for(&job.scenario);
        let file_sink = self
            .job_path(job.id, "ckpt.json")
            .map(|path| FileCheckpointSink::new(&path, self.config.checkpoint_every));
        let sink: &dyn CheckpointSink = match &file_sink {
            Some(sink) => sink,
            None => &NullCheckpointSink,
        };
        let observer = JobObserver { job: job.clone() };
        let algorithm = job.scenario.search.algorithm;
        let result = catch_unwind(AssertUnwindSafe(|| {
            job.scenario.run_report_checkpointed(
                algorithm,
                &engine,
                &observer,
                resume.as_ref(),
                sink,
            )
        }));
        let state = match result {
            Ok(report) => JobState::Finished(report.to_value()),
            Err(payload) => {
                if payload.downcast_ref::<JobCancelled>().is_some() {
                    JobState::Cancelled
                } else {
                    let message = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "job panicked".to_string());
                    JobState::Failed(message)
                }
            }
        };
        self.finish_job(job, state, Some(engine.as_ref()));
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        // Queued jobs stay journaled and resume on the
                        // next start; only running jobs are drained.
                        return;
                    }
                    match queue.pop_front() {
                        Some(job) => {
                            if nasaic_telemetry::enabled() {
                                queue_depth_gauge().set(queue.len() as f64);
                            }
                            break job;
                        }
                        None => {
                            let (guard, _) = self
                                .queue_cv
                                .wait_timeout(queue, Duration::from_millis(200))
                                .expect("queue lock");
                            queue = guard;
                        }
                    }
                }
            };
            self.run_job(&job);
        }
    }
}

/// Atomic file write (same temp-then-rename discipline as the core's
/// checkpoint sink): readers never observe a half-written file.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp = path.to_path_buf();
    let file_name = tmp
        .file_name()
        .map(|name| name.to_string_lossy().into_owned())
        .unwrap_or_default();
    tmp.set_file_name(format!("{file_name}.tmp"));
    std::fs::write(&tmp, format!("{text}\n"))?;
    std::fs::rename(&tmp, path)
}

/// Wire form of one engine's cache statistics.
fn stats_value(stats: &CacheStats) -> ConfigValue {
    let mut root = ConfigValue::table();
    for (key, value) in [
        ("accuracy_hits", stats.accuracy_hits),
        ("accuracy_misses", stats.accuracy_misses),
        ("hardware_hits", stats.hardware_hits),
        ("hardware_misses", stats.hardware_misses),
        ("accuracy_entries", stats.accuracy_entries),
        ("hardware_entries", stats.hardware_entries),
        ("accuracy_evictions", stats.accuracy_evictions),
        ("hardware_evictions", stats.hardware_evictions),
        ("accuracy_capacity", stats.accuracy_capacity),
        ("hardware_capacity", stats.hardware_capacity),
    ] {
        root.insert(key, ConfigValue::Integer(value as i64));
    }
    root.insert("hit_rate", ConfigValue::Float(stats.hit_rate()));
    root
}

/// The daemon entry points: [`Daemon::start`] for in-process use (tests,
/// the CLI) and the blocking [`DaemonHandle::join`] to wait for shutdown.
pub struct Daemon;

/// A started daemon: its bound address plus the serve thread to join.
pub struct DaemonHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    thread: JoinHandle<Result<String, ServeError>>,
}

impl DaemonHandle {
    /// The actually bound listen address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus exposition address, when
    /// [`ServeConfig::metrics_addr`] was set (resolves port `0`).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Block until the daemon shuts down; returns its summary line.
    ///
    /// # Errors
    ///
    /// Returns the serve loop's failure, or an internal error if the
    /// serve thread panicked.
    pub fn join(self) -> Result<String, ServeError> {
        self.thread
            .join()
            .map_err(|_| ServeError::new("serve thread panicked"))?
    }
}

impl Daemon {
    /// Bind the listen address, restore persisted state (journaled jobs
    /// are re-queued, cache exports staged for import) and start serving
    /// on a background thread.
    ///
    /// # Errors
    ///
    /// Returns an error when the address cannot be bound or the state
    /// directory cannot be created.
    pub fn start(config: ServeConfig) -> Result<DaemonHandle, ServeError> {
        install_cancel_hook();
        // The daemon is observability's primary consumer: its metrics are
        // the whole point of the exposition surfaces, so collection is on
        // for the process.  Collection is passive — job outcomes stay
        // bit-identical (the `telemetry_baseline` identity gate).
        nasaic_telemetry::set_enabled(true);
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::new(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener.local_addr()?;
        let metrics_listener = match &config.metrics_addr {
            Some(metrics_addr) => {
                let listener = TcpListener::bind(metrics_addr).map_err(|e| {
                    ServeError::new(format!("cannot bind metrics addr {metrics_addr}: {e}"))
                })?;
                // Non-blocking, so the exposition thread can poll the
                // shutdown flag between accepts.
                listener
                    .set_nonblocking(true)
                    .map_err(|e| ServeError::new(format!("metrics listener: {e}")))?;
                Some(listener)
            }
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(listener) => Some(listener.local_addr()?),
            None => None,
        };

        let mut preloaded = HashMap::new();
        let mut restored: Vec<Arc<Job>> = Vec::new();
        let mut next_id = 1;
        if let Some(state_dir) = &config.state_dir {
            let jobs_dir = state_dir.join("jobs");
            std::fs::create_dir_all(&jobs_dir).map_err(|e| {
                ServeError::new(format!(
                    "cannot create state dir {}: {e}",
                    jobs_dir.display()
                ))
            })?;
            preloaded = load_cache_exports(&state_dir.join("caches.json"));
            let (jobs, max_id) = load_job_journal(&jobs_dir);
            restored = jobs;
            next_id = max_id + 1;
        }

        let shared = Arc::new(Shared {
            engines: EngineRegistry::new(config.engine_config(), preloaded),
            addr,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(next_id),
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            next_connection: AtomicU64::new(0),
            config,
        });
        for job in restored {
            if job.state().is_terminal() {
                // History only: visible in `show jobs`, never re-run.
                shared.jobs.lock().expect("jobs lock").insert(job.id, job);
            } else {
                // Unfinished at the last shutdown/crash: re-queue; the
                // worker resumes from the job's checkpoint if one exists.
                shared.enqueue(job);
            }
        }

        let serve_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name("nasaic-serve".to_string())
            .spawn(move || serve(listener, metrics_listener, serve_shared))
            .map_err(|e| ServeError::new(format!("cannot spawn serve thread: {e}")))?;
        Ok(DaemonHandle {
            addr,
            metrics_addr,
            thread,
        })
    }
}

/// Parse `caches.json` into per-engine-key exports (missing file: empty;
/// corrupt file: warn and start cold — a cache is an optimisation, never
/// required state).
fn load_cache_exports(path: &Path) -> HashMap<String, ConfigValue> {
    let mut exports = HashMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return exports;
    };
    let parsed = match parse_json(&text) {
        Ok(value) => value,
        Err(error) => {
            eprintln!(
                "nasaic serve: ignoring corrupt cache file {}: {error}",
                path.display()
            );
            return exports;
        }
    };
    if parsed.get("version").and_then(ConfigValue::as_integer) != Some(1) {
        eprintln!(
            "nasaic serve: ignoring cache file {} with unknown version",
            path.display()
        );
        return exports;
    }
    for row in parsed
        .get("engines")
        .and_then(ConfigValue::as_array)
        .unwrap_or(&[])
    {
        let (Some(key), Some(caches)) = (
            row.get("key").and_then(ConfigValue::as_str),
            row.get("caches"),
        ) else {
            continue;
        };
        exports.insert(key.to_string(), caches.clone());
    }
    exports
}

/// Scan the job journal: every `<id>.job.json` becomes a job, terminal if
/// a matching `<id>.result.json` exists.  Returns the jobs plus the
/// highest id seen.
fn load_job_journal(jobs_dir: &Path) -> (Vec<Arc<Job>>, u64) {
    let mut jobs = Vec::new();
    let mut max_id = 0;
    let Ok(entries) = std::fs::read_dir(jobs_dir) else {
        return (jobs, max_id);
    };
    let mut ids: Vec<u64> = entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().to_string_lossy().into_owned();
            name.strip_suffix(".job.json")?.parse().ok()
        })
        .collect();
    ids.sort_unstable();
    for id in ids {
        max_id = max_id.max(id);
        let path = jobs_dir.join(format!("{id}.job.json"));
        let scenario = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| parse_json(&text).ok())
            .and_then(|value| {
                value
                    .get("scenario")
                    .and_then(|s| Scenario::from_value(s).ok())
            });
        let Some(scenario) = scenario else {
            eprintln!(
                "nasaic serve: ignoring unreadable job journal {}",
                path.display()
            );
            continue;
        };
        let job = Job::new(id, scenario);
        let result_path = jobs_dir.join(format!("{id}.result.json"));
        if let Ok(text) = std::fs::read_to_string(&result_path) {
            if let Ok(result) = parse_json(&text) {
                let status = result
                    .get("status")
                    .and_then(ConfigValue::as_str)
                    .unwrap_or("failed");
                let state = match status {
                    "finished" => JobState::Finished(
                        result
                            .get("report")
                            .cloned()
                            .unwrap_or(ConfigValue::table()),
                    ),
                    "cancelled" => JobState::Cancelled,
                    _ => JobState::Failed(
                        result
                            .get("error")
                            .and_then(ConfigValue::as_str)
                            .unwrap_or("unknown failure")
                            .to_string(),
                    ),
                };
                job.set_state(state);
            }
        }
        jobs.push(Arc::new(job));
    }
    (jobs, max_id)
}

/// Serve Prometheus text-format scrapes on `listener` until shutdown.
///
/// Deliberately minimal HTTP: read the request head, answer every request
/// with the full registry rendering, close.  That is all a scraper needs
/// and it keeps the daemon free of an HTTP dependency.
fn metrics_exposition_loop(listener: TcpListener, shared: &Shared) {
    use std::io::{Read, Write};
    while !shared.shutdown.load(Ordering::SeqCst) {
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            Err(_) => continue,
        };
        // The listener is non-blocking, so the accepted stream starts
        // non-blocking too; scrape handling is trivial, so block with a
        // short deadline instead of polling.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        // Drain the request head (until the blank line or EOF); the
        // response doesn't depend on it.
        let mut head = [0u8; 4096];
        let mut seen = Vec::new();
        loop {
            match stream.read(&mut head) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    seen.extend_from_slice(&head[..n]);
                    if seen.windows(4).any(|w| w == b"\r\n\r\n")
                        || seen.windows(2).any(|w| w == b"\n\n")
                    {
                        break;
                    }
                }
            }
        }
        let body = nasaic_telemetry::global().render_prometheus();
        let response = format!(
            "HTTP/1.1 200 OK\r\n\
             Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\n\
             Connection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = stream.write_all(response.as_bytes());
    }
}

/// The serve loop: workers, accept loop, graceful shutdown, cache export.
fn serve(
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    shared: Arc<Shared>,
) -> Result<String, ServeError> {
    let metrics_thread = metrics_listener.map(|metrics_listener| {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("nasaic-serve-metrics".to_string())
            .spawn(move || metrics_exposition_loop(metrics_listener, &shared))
            .expect("spawn metrics thread")
    });
    let workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
        .map(|index| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("nasaic-serve-worker-{index}"))
                .spawn(move || shared.worker_loop())
                .expect("spawn worker thread")
        })
        .collect();

    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let connection_id = shared.next_connection.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            shared
                .connections
                .lock()
                .expect("connections lock")
                .insert(connection_id, clone);
        }
        let shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("nasaic-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &shared);
                shared
                    .connections
                    .lock()
                    .expect("connections lock")
                    .remove(&connection_id);
            })
            .expect("spawn connection thread");
        handlers.lock().expect("handlers lock").push(handle);
    }

    // Shutdown: workers first (they finish their running jobs), then the
    // handlers.  Clients may keep idle connections open indefinitely, so
    // shut down the *read* half of every live connection: handlers parked
    // in `read_line` wake with EOF, while in-flight final responses still
    // go out over the intact write half.
    shared.queue_cv.notify_all();
    for worker in workers {
        let _ = worker.join();
    }
    for (_, connection) in shared.connections.lock().expect("connections lock").iter() {
        let _ = connection.shutdown(std::net::Shutdown::Read);
    }
    for handler in handlers.into_inner().expect("handlers lock") {
        let _ = handler.join();
    }
    if let Some(thread) = metrics_thread {
        let _ = thread.join();
    }

    if let Some(state_dir) = &shared.config.state_dir {
        let path = state_dir.join("caches.json");
        write_atomic(&path, &to_json(&shared.engines.export_all()))
            .map_err(|e| ServeError::new(format!("cannot persist caches: {e}")))?;
    }
    let jobs = shared.jobs.lock().expect("jobs lock");
    let finished = jobs
        .values()
        .filter(|job| matches!(job.state(), JobState::Finished(_)))
        .count();
    let engines = shared.engines.stats();
    Ok(format!(
        "nasaic serve: shut down cleanly; {} job(s) known ({} finished), {} engine(s) warm",
        jobs.len(),
        finished,
        engines.len()
    ))
}

/// One connection: read request lines, answer each on the same stream.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match protocol::read_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse_line(&line) {
            Ok(request) => request,
            Err(error) => {
                let _ =
                    protocol::write_line(&mut writer, &protocol::error_response(error.to_string()));
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = handle_request(request, shared, &mut writer);
        if protocol::write_line(&mut writer, &response).is_err() {
            return;
        }
        if is_shutdown {
            return;
        }
    }
}

/// Execute one request.  `writer` is only used by `submit --watch`, which
/// streams before its final response.
fn handle_request(request: Request, shared: &Arc<Shared>, writer: &mut TcpStream) -> ConfigValue {
    match request {
        Request::Ping => {
            let mut response = protocol::ok_response();
            response.insert("pong", ConfigValue::Bool(true));
            response.insert("protocol", ConfigValue::Integer(PROTOCOL_VERSION));
            response
        }
        Request::Submit { scenario, watch } => handle_submit(&scenario, watch, shared, writer),
        Request::Cancel { job: id } => match shared.job(id) {
            None => protocol::error_response(format!("no such job {id}")),
            Some(job) => {
                let state = job.state();
                if state.is_terminal() {
                    return protocol::error_response(format!(
                        "job {id} is already {}",
                        state.label()
                    ));
                }
                job.cancel.store(true, Ordering::Relaxed);
                let mut response = protocol::ok_response();
                response.insert("job", ConfigValue::Integer(id as i64));
                response.insert("cancelling", ConfigValue::Bool(true));
                response
            }
        },
        Request::ShowJobs => {
            let jobs = shared.jobs.lock().expect("jobs lock");
            let rows: Vec<ConfigValue> = jobs.values().map(|job| job.summary_value()).collect();
            let mut response = protocol::ok_response();
            response.insert("jobs", ConfigValue::Array(rows));
            response.insert(
                "queue_capacity",
                ConfigValue::Integer(shared.config.queue_capacity as i64),
            );
            response
        }
        Request::ShowCache => {
            let mut rows = Vec::new();
            for (key, stats) in shared.engines.stats() {
                let mut row = ConfigValue::table();
                row.insert("key", ConfigValue::Str(key));
                row.insert("stats", stats_value(&stats));
                rows.push(row);
            }
            let mut response = protocol::ok_response();
            response.insert("engines", ConfigValue::Array(rows));
            response
        }
        Request::ShowIncumbent { job: id } => match shared.job(id) {
            None => protocol::error_response(format!("no such job {id}")),
            Some(job) => {
                let mut response = protocol::ok_response();
                response.insert("job", ConfigValue::Integer(id as i64));
                response.insert("state", ConfigValue::Str(job.state().label().to_string()));
                match job.incumbent.lock().expect("incumbent lock").clone() {
                    Some(incumbent) => response.insert("incumbent", incumbent),
                    None => response.insert("incumbent", ConfigValue::Bool(false)),
                }
                response
            }
        },
        Request::ShowMetrics => {
            let mut response = protocol::ok_response();
            response.insert(
                "metrics",
                nasaic_core::metrics::snapshot_to_value(&nasaic_telemetry::global().snapshot()),
            );
            response
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            // Wake the accept loop so the serve thread observes the flag.
            let _ = TcpStream::connect(shared.addr);
            let mut response = protocol::ok_response();
            response.insert("shutting_down", ConfigValue::Bool(true));
            response
        }
    }
}

fn handle_submit(
    scenario_value: &ConfigValue,
    watch: bool,
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
) -> ConfigValue {
    if shared.shutdown.load(Ordering::SeqCst) {
        return protocol::error_response("daemon is shutting down; not accepting jobs");
    }
    let scenario = match Scenario::from_value(scenario_value) {
        Ok(scenario) => scenario,
        Err(error) => return protocol::error_response(format!("bad scenario: {error}")),
    };
    {
        // Backpressure: an explicit reject-with-reason beats silent
        // unbounded queuing.  Only *queued* jobs count — running jobs
        // occupy workers, not queue slots.
        let queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.config.queue_capacity {
            if nasaic_telemetry::enabled() {
                rejects_counter().inc();
            }
            return protocol::error_response(format!(
                "queue full: {} queued job(s) at capacity {}; retry later or raise \
                 --queue-capacity",
                queue.len(),
                shared.config.queue_capacity
            ));
        }
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    // Journal before enqueueing, so a crash between the two at worst
    // resurrects a job that never ran (and never loses one that did).
    if let Some(path) = shared.job_path(id, "job.json") {
        let mut root = ConfigValue::table();
        root.insert("version", ConfigValue::Integer(1));
        root.insert("job", ConfigValue::Integer(id as i64));
        root.insert("scenario", scenario.to_value());
        if let Err(error) = write_atomic(&path, &to_json(&root)) {
            return protocol::error_response(format!("cannot journal job: {error}"));
        }
    }
    if nasaic_telemetry::enabled() {
        submits_counter().inc();
    }
    let job = Arc::new(Job::new(id, scenario));
    if watch {
        if let Ok(clone) = writer.try_clone() {
            job.watchers.lock().expect("watchers lock").push(clone);
        }
        // Ack immediately so the client knows its id before the stream.
        let mut ack = protocol::ok_response();
        ack.insert("job", ConfigValue::Integer(id as i64));
        ack.insert("state", ConfigValue::Str("queued".to_string()));
        if protocol::write_line(writer, &ack).is_err() {
            job.watchers.lock().expect("watchers lock").clear();
        }
    }
    shared.enqueue(job.clone());
    if !watch {
        let mut response = protocol::ok_response();
        response.insert("job", ConfigValue::Integer(id as i64));
        response.insert("state", ConfigValue::Str("queued".to_string()));
        return response;
    }

    // Watch: block this handler until the job is terminal, then emit the
    // final response (events were streamed by the job's observer).
    let final_state = loop {
        let state = job.state.lock().expect("job state lock");
        if state.is_terminal() {
            break state.clone();
        }
        if shared.shutdown.load(Ordering::SeqCst) && matches!(*state, JobState::Queued) {
            drop(state);
            return protocol::error_response(format!(
                "daemon shut down before job {id} ran; it is journaled and will resume on \
                 the next start"
            ));
        }
        let (_state, _) = job
            .state_cv
            .wait_timeout(state, Duration::from_millis(200))
            .expect("job state lock");
    };
    job.watchers.lock().expect("watchers lock").clear();
    match final_state {
        JobState::Finished(report) => {
            let mut response = protocol::ok_response();
            response.insert("job", ConfigValue::Integer(id as i64));
            response.insert("done", ConfigValue::Bool(true));
            response.insert("state", ConfigValue::Str("finished".to_string()));
            response.insert("report", report);
            response
        }
        JobState::Cancelled => {
            let mut response = protocol::ok_response();
            response.insert("job", ConfigValue::Integer(id as i64));
            response.insert("done", ConfigValue::Bool(true));
            response.insert("state", ConfigValue::Str("cancelled".to_string()));
            response
        }
        JobState::Failed(error) => {
            let mut response = protocol::error_response(format!("job {id} failed: {error}"));
            response.insert("job", ConfigValue::Integer(id as i64));
            response.insert("done", ConfigValue::Bool(true));
            response.insert("state", ConfigValue::Str("failed".to_string()));
            response
        }
        JobState::Queued | JobState::Running => unreachable!("loop exits on terminal states"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasaic_core::scenario::registry;

    fn tiny_scenario(seed: u64) -> Scenario {
        let mut scenario = registry::get("w1").expect("built-in");
        scenario.search.episodes = 2;
        scenario.search.hardware_trials = 2;
        scenario.search.bound_samples = 4;
        scenario.seed = seed;
        scenario
    }

    #[test]
    fn engine_key_ignores_seed_and_budget_but_not_specs() {
        let a = tiny_scenario(1);
        let mut b = tiny_scenario(2);
        b.search.episodes = 50;
        assert_eq!(engine_key(&a), engine_key(&b));
        let mut c = tiny_scenario(1);
        c.specs.latency_cycles *= 2.0;
        assert_ne!(engine_key(&a), engine_key(&c));
        let w3 = registry::get("w3").expect("built-in");
        assert_ne!(engine_key(&a), engine_key(&w3));
    }

    #[test]
    fn engine_registry_shares_engines_per_key() {
        let registry = EngineRegistry::new(EngineConfig::default(), HashMap::new());
        let first = registry.engine_for(&tiny_scenario(1));
        let second = registry.engine_for(&tiny_scenario(99));
        assert!(Arc::ptr_eq(&first, &second));
        let other = registry.engine_for(&nasaic_core::scenario::registry::get("w3").unwrap());
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(registry.stats().len(), 2);
    }

    #[test]
    fn cache_export_file_round_trips_through_the_registry() {
        let registry = EngineRegistry::new(EngineConfig::default(), HashMap::new());
        let scenario = tiny_scenario(5);
        let engine = registry.engine_for(&scenario);
        // Warm the engine a little so the export is non-trivial.
        let workload = scenario.workload();
        let architectures: Vec<_> = workload
            .tasks
            .iter()
            .map(|task| task.backbone.smallest_architecture())
            .collect();
        engine.accuracies(&architectures);
        let exported = registry.export_all();
        let text = to_json(&exported);
        let reloaded: HashMap<String, ConfigValue> = {
            let dir = std::env::temp_dir().join(format!(
                "nasaic-serve-test-{}-{}",
                std::process::id(),
                line!()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("caches.json");
            std::fs::write(&path, text).unwrap();
            let loaded = load_cache_exports(&path);
            std::fs::remove_dir_all(&dir).ok();
            loaded
        };
        assert_eq!(reloaded.len(), 1);
        let fresh = EngineRegistry::new(EngineConfig::default(), reloaded);
        let warm = fresh.engine_for(&scenario);
        assert_eq!(
            warm.stats().accuracy_entries,
            engine.stats().accuracy_entries
        );
        // Warm cache serves the same queries without recomputation…
        assert_eq!(warm.accuracies(&architectures), {
            let direct = scenario.engine();
            direct.accuracies(&architectures)
        });
        assert_eq!(warm.stats().accuracy_misses, 0);
    }

    #[test]
    fn job_states_report_their_labels() {
        assert_eq!(JobState::Queued.label(), "queued");
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Finished(ConfigValue::table()).is_terminal());
        assert!(JobState::Failed("x".into()).is_terminal());
    }
}
