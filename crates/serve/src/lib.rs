//! The long-lived NASAIC search service behind `nasaic serve`.
//!
//! Every CLI invocation builds a cold [`EvalEngine`](nasaic_core::EvalEngine)
//! and throws it away, losing the ~25x warm-vs-cold advantage the engine
//! benchmarks measure.  This crate keeps the engine alive: a std-only
//! daemon ([`daemon::Daemon`]) accepts scenario configs as jobs over a
//! line-delimited JSON protocol ([`protocol`]), runs them over
//! process-wide shared engines (one per scenario identity — engines are
//! only shareable between runs whose specs, workload and scheduler agree),
//! and exposes a model-driven control plane (`submit`, `cancel`,
//! `show jobs`, `show cache`, `show incumbent <job>`, `shutdown`) driven
//! off the search's [`SearchObserver`](nasaic_core::SearchObserver) event
//! stream.  [`client::Client`] is the matching scripting endpoint.
//!
//! Production constraints the one-shot CLI never faced are handled here:
//!
//! * engine caches are **bounded** (`EngineConfig::accuracy_capacity` /
//!   `hardware_capacity`) with eviction counters surfaced via
//!   `show cache`;
//! * caches **persist** across restarts: a graceful shutdown exports every
//!   engine's caches to the state directory and a restarting daemon
//!   imports them, so restarts change wall time but never outcomes;
//! * the job queue is **bounded** with explicit backpressure — a full
//!   queue rejects the submit with a reason instead of queuing silently;
//! * running jobs **checkpoint** through the core
//!   [`CheckpointSink`](nasaic_core::CheckpointSink) machinery, so a
//!   killed daemon resumes its in-flight jobs bit-identically on restart.
//!
//! The wire format reuses the hand-rolled JSON of
//! `nasaic_core::scenario::value` — the workspace is offline, so there is
//! no tokio/hyper; just `std::net` and worker threads.

#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod protocol;

pub use client::Client;
pub use daemon::{Daemon, DaemonHandle, ServeConfig};
pub use protocol::Request;

use std::fmt;

/// A serve-side failure: protocol, I/O or job errors.  [`fmt::Display`]
/// renders the message sent to clients / printed by the CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    message: String,
}

impl ServeError {
    /// Create an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::new(e.to_string())
    }
}

impl From<nasaic_core::scenario::ConfigError> for ServeError {
    fn from(e: nasaic_core::scenario::ConfigError) -> Self {
        ServeError::new(e.to_string())
    }
}
