//! ResNet-9 backbone generator (classification tasks).
//!
//! The paper uses the ResNet-9 of [Li 2019] as the classification backbone.
//! The searchable hyperparameters are, per residual block `i`, the filter
//! count `FN_i` and the number of extra convolution layers `SK_i`
//! ("skip layers" in the paper's terminology).  Block 0 is a plain stem
//! convolution with filter count `FN_0` (see the footnote of Table II).
//!
//! The hyperparameter vector follows the paper's notation:
//! `<FN_0, FN_1, SK_1, FN_2, SK_2, ..., FN_B, SK_B>` for `B` residual
//! blocks (3 for CIFAR-10, 5 for STL-10).

use crate::dataset::Dataset;
use crate::layer::{Architecture, LayerShape};
use crate::space::{ChoicePoint, SearchSpace};
use serde::{Deserialize, Serialize};

/// Configuration of one residual block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidualBlockConfig {
    /// Filter count `FN_i`.
    pub filters: usize,
    /// Number of extra 3x3 convolutions `SK_i` in the residual branch.
    pub skip_convs: usize,
}

/// Full configuration of a ResNet-9-style network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResNetConfig {
    /// Dataset the network is built for (fixes input geometry and classes).
    pub dataset: Dataset,
    /// Stem convolution filter count `FN_0`.
    pub stem_filters: usize,
    /// Residual blocks, in order.
    pub blocks: Vec<ResidualBlockConfig>,
}

impl ResNetConfig {
    /// Build a configuration from the paper's flat hyperparameter vector
    /// `<FN_0, FN_1, SK_1, ..., FN_B, SK_B>`.
    ///
    /// # Panics
    ///
    /// Panics if the vector length is not odd and at least 3
    /// (`1 + 2 * blocks`).
    pub fn from_hyperparameters(dataset: Dataset, hyperparameters: &[usize]) -> Self {
        assert!(
            hyperparameters.len() >= 3 && hyperparameters.len() % 2 == 1,
            "ResNet hyperparameter vector must have odd length >= 3, got {}",
            hyperparameters.len()
        );
        let stem_filters = hyperparameters[0];
        let blocks = hyperparameters[1..]
            .chunks(2)
            .map(|pair| ResidualBlockConfig {
                filters: pair[0],
                skip_convs: pair[1],
            })
            .collect();
        Self {
            dataset,
            stem_filters,
            blocks,
        }
    }

    /// Flatten back to the paper's hyperparameter vector.
    pub fn to_hyperparameters(&self) -> Vec<usize> {
        let mut v = vec![self.stem_filters];
        for b in &self.blocks {
            v.push(b.filters);
            v.push(b.skip_convs);
        }
        v
    }

    /// Generate the concrete layer list for this configuration.
    ///
    /// The network layout is the ResNet-9 template: a stem convolution, then
    /// per block a widening convolution followed by 2x max-pooling and
    /// `SK_i` residual convolutions (joined by an element-wise add when the
    /// residual branch is non-empty), and finally global average pooling
    /// plus a dense classifier.
    pub fn build(&self) -> Architecture {
        let mut layers = Vec::new();
        let mut resolution = self.dataset.input_resolution();
        let mut channels = self.dataset.input_channels();

        layers.push(LayerShape::conv2d(
            "stem_conv",
            channels,
            self.stem_filters,
            3,
            resolution,
            1,
        ));
        channels = self.stem_filters;

        for (bi, block) in self.blocks.iter().enumerate() {
            let b = bi + 1;
            layers.push(LayerShape::conv2d(
                &format!("block{b}_conv"),
                channels,
                block.filters,
                3,
                resolution,
                1,
            ));
            channels = block.filters;
            layers.push(LayerShape::max_pool(
                &format!("block{b}_pool"),
                channels,
                2,
                resolution,
            ));
            resolution = (resolution / 2).max(1);
            for s in 0..block.skip_convs {
                layers.push(LayerShape::conv2d(
                    &format!("block{b}_res{s}"),
                    channels,
                    channels,
                    3,
                    resolution,
                    1,
                ));
            }
            if block.skip_convs > 0 {
                layers.push(LayerShape::elementwise_add(
                    &format!("block{b}_add"),
                    channels,
                    resolution,
                ));
            }
        }

        layers.push(LayerShape::global_avg_pool(
            "head_pool",
            channels,
            resolution,
        ));
        layers.push(LayerShape::dense(
            "classifier",
            channels,
            self.dataset.num_outputs(),
        ));

        let name = match self.dataset {
            Dataset::Cifar10 => "resnet9-cifar10",
            Dataset::Stl10 => "resnet9-stl10",
            Dataset::Nuclei => "resnet9-custom",
        };
        Architecture::new(name, layers, self.to_hyperparameters())
    }
}

/// The CIFAR-10 ResNet-9 search space of Fig. 1 / Fig. 3: three residual
/// blocks, `FN_i` in `{32, 64, 128, 256}`, `SK_i` in `{0, 1, 2}`, and a stem
/// filter count in `{8, 16, 32, 64}` (Table II shows stems as small as 8).
pub fn cifar10_search_space() -> SearchSpace {
    let mut choices = vec![ChoicePoint::new("FN0", vec![8, 16, 32, 64])];
    for b in 1..=3 {
        choices.push(ChoicePoint::new(&format!("FN{b}"), vec![32, 64, 128, 256]));
        choices.push(ChoicePoint::new(&format!("SK{b}"), vec![0, 1, 2]));
    }
    SearchSpace::new("resnet9-cifar10", choices)
}

/// The STL-10 ResNet-9 search space: the paper deepens the network to five
/// residual blocks, allows up to three convolutions per block and filter
/// counts up to 512.
pub fn stl10_search_space() -> SearchSpace {
    let mut choices = vec![ChoicePoint::new("FN0", vec![8, 16, 32, 64])];
    for b in 1..=5 {
        choices.push(ChoicePoint::new(
            &format!("FN{b}"),
            vec![32, 64, 128, 256, 512],
        ));
        choices.push(ChoicePoint::new(&format!("SK{b}"), vec![0, 1, 2, 3]));
    }
    SearchSpace::new("resnet9-stl10", choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn hyperparameter_round_trip() {
        let hp = vec![32, 128, 2, 256, 2, 256, 2];
        let cfg = ResNetConfig::from_hyperparameters(Dataset::Cifar10, &hp);
        assert_eq!(cfg.to_hyperparameters(), hp);
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[0].filters, 128);
        assert_eq!(cfg.blocks[2].skip_convs, 2);
    }

    #[test]
    fn paper_best_w3_architecture_builds() {
        // Table II, NAS row: <32, 128, 2, 256, 2, 256, 2>.
        let cfg =
            ResNetConfig::from_hyperparameters(Dataset::Cifar10, &[32, 128, 2, 256, 2, 256, 2]);
        let arch = cfg.build();
        // Stem + 3 * (conv + pool + 2 res + add) + head pool + classifier.
        assert_eq!(arch.num_layers(), 1 + 3 * 5 + 2);
        assert!(arch.total_macs() > 50_000_000, "macs {}", arch.total_macs());
        assert_eq!(arch.layers.last().unwrap().output_channels, 10);
    }

    #[test]
    fn smallest_architecture_is_much_cheaper_than_largest() {
        let space = cifar10_search_space();
        let small = ResNetConfig::from_hyperparameters(
            Dataset::Cifar10,
            &space.decode(&space.smallest()).unwrap(),
        )
        .build();
        let large = ResNetConfig::from_hyperparameters(
            Dataset::Cifar10,
            &space.decode(&space.largest()).unwrap(),
        )
        .build();
        assert!(large.total_macs() > 20 * small.total_macs());
        assert!(large.total_params() > 20 * small.total_params());
    }

    #[test]
    fn zero_skip_block_has_no_add_layer() {
        let cfg = ResNetConfig::from_hyperparameters(Dataset::Cifar10, &[8, 32, 0, 32, 0, 32, 0]);
        let arch = cfg.build();
        assert!(arch
            .layers
            .iter()
            .all(|l| l.kind != LayerKind::ElementwiseAdd));
        assert_eq!(arch.num_layers(), 1 + 3 * 2 + 2);
    }

    #[test]
    fn resolution_halves_per_block() {
        let cfg = ResNetConfig::from_hyperparameters(Dataset::Cifar10, &[8, 32, 1, 64, 1, 128, 1]);
        let arch = cfg.build();
        // The residual conv of block 3 runs at 32 / 2 / 2 / 2 = 4.
        let res3 = arch
            .layers
            .iter()
            .find(|l| l.name == "block3_res0")
            .unwrap();
        assert_eq!(res3.input_size, 4);
    }

    #[test]
    fn stl10_backbone_is_deeper_and_higher_resolution() {
        let space = stl10_search_space();
        assert_eq!(space.num_choices(), 11);
        let hp = space.decode(&space.largest()).unwrap();
        let arch = ResNetConfig::from_hyperparameters(Dataset::Stl10, &hp).build();
        assert_eq!(arch.layers[0].input_size, 96);
        let cifar_best =
            ResNetConfig::from_hyperparameters(Dataset::Cifar10, &[32, 128, 2, 256, 2, 256, 2])
                .build();
        assert!(arch.total_macs() > cifar_best.total_macs());
    }

    #[test]
    fn cifar_space_cardinality_matches_options() {
        // 4 stem options * (4 * 3)^3
        assert_eq!(cifar10_search_space().cardinality(), 4 * 12u64.pow(3));
    }

    #[test]
    #[should_panic]
    fn even_length_hyperparameters_rejected() {
        ResNetConfig::from_hyperparameters(Dataset::Cifar10, &[8, 32, 0, 32]);
    }
}
