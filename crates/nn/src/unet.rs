//! U-Net backbone generator (segmentation tasks).
//!
//! The paper's segmentation backbone is U-Net [Ronneberger 2015].  The
//! searchable hyperparameters are the network *height* (number of
//! encoder levels, 1–5) and the filter count of each level, chosen from
//! `{4 * 2^(i-1), 8 * 2^(i-1), 16 * 2^(i-1)}` for level `i`.
//!
//! The hyperparameter vector is `<Height, FN_1, FN_2, ..., FN_H>` where
//! only the first `Height` filter entries are materialised (the controller
//! always emits all five filter decisions; the unused ones are ignored,
//! exactly as a fixed-length RNN controller would behave).

use crate::dataset::Dataset;
use crate::layer::{Architecture, LayerShape};
use crate::space::{ChoicePoint, SearchSpace};
use serde::{Deserialize, Serialize};

/// Maximum U-Net height considered in the paper's search space.
pub const MAX_HEIGHT: usize = 5;

/// Configuration of a U-Net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UNetConfig {
    /// Dataset the network is built for (fixes input geometry).
    pub dataset: Dataset,
    /// Number of encoder levels (1..=5).
    pub height: usize,
    /// Filter count per level; must contain at least `height` entries.
    pub filters: Vec<usize>,
}

impl UNetConfig {
    /// Build a configuration from the flat hyperparameter vector
    /// `<Height, FN_1, ..., FN_k>` with `k >= Height`.
    ///
    /// # Panics
    ///
    /// Panics if the vector is shorter than `1 + height` or the height is
    /// outside `1..=MAX_HEIGHT`.
    pub fn from_hyperparameters(dataset: Dataset, hyperparameters: &[usize]) -> Self {
        assert!(
            !hyperparameters.is_empty(),
            "U-Net hyperparameter vector is empty"
        );
        let height = hyperparameters[0];
        assert!(
            (1..=MAX_HEIGHT).contains(&height),
            "U-Net height {height} outside 1..={MAX_HEIGHT}"
        );
        assert!(
            hyperparameters.len() > height,
            "U-Net hyperparameter vector too short: height {height} needs {} filter entries, got {}",
            height,
            hyperparameters.len() - 1
        );
        Self {
            dataset,
            height,
            filters: hyperparameters[1..].to_vec(),
        }
    }

    /// Flatten back to the hyperparameter vector `<Height, FN_1, ...>`.
    pub fn to_hyperparameters(&self) -> Vec<usize> {
        let mut v = vec![self.height];
        v.extend_from_slice(&self.filters);
        v
    }

    /// Filter count actually used at a given level (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.height`.
    pub fn level_filters(&self, level: usize) -> usize {
        assert!(
            level < self.height,
            "level {level} >= height {}",
            self.height
        );
        self.filters[level]
    }

    /// Generate the concrete layer list: an encoder of `height` levels (two
    /// 3x3 convolutions each, max-pooling between levels), a symmetric
    /// decoder (2x2 transposed convolution followed by two 3x3 convolutions
    /// whose first conv sees the concatenated skip connection), and a final
    /// 1x1 output convolution.
    pub fn build(&self) -> Architecture {
        let mut layers = Vec::new();
        let mut resolution = self.dataset.input_resolution();
        let mut channels = self.dataset.input_channels();

        // Encoder.
        for level in 0..self.height {
            let f = self.level_filters(level);
            layers.push(LayerShape::conv2d(
                &format!("enc{level}_conv0"),
                channels,
                f,
                3,
                resolution,
                1,
            ));
            layers.push(LayerShape::conv2d(
                &format!("enc{level}_conv1"),
                f,
                f,
                3,
                resolution,
                1,
            ));
            channels = f;
            if level + 1 < self.height {
                layers.push(LayerShape::max_pool(
                    &format!("enc{level}_pool"),
                    channels,
                    2,
                    resolution,
                ));
                resolution = (resolution / 2).max(1);
            }
        }

        // Decoder (mirror of the encoder, skipping the bottleneck level).
        for level in (0..self.height.saturating_sub(1)).rev() {
            let f = self.level_filters(level);
            layers.push(LayerShape::transposed_conv2d(
                &format!("dec{level}_up"),
                channels,
                f,
                2,
                resolution,
                2,
            ));
            resolution *= 2;
            // The first decoder conv consumes the concatenation of the
            // upsampled path and the skip connection: 2 * f input channels.
            layers.push(LayerShape::conv2d(
                &format!("dec{level}_conv0"),
                2 * f,
                f,
                3,
                resolution,
                1,
            ));
            layers.push(LayerShape::conv2d(
                &format!("dec{level}_conv1"),
                f,
                f,
                3,
                resolution,
                1,
            ));
            channels = f;
        }

        // 1x1 output projection to the mask.
        layers.push(LayerShape::conv2d(
            "output_conv",
            channels,
            self.dataset.num_outputs(),
            1,
            resolution,
            1,
        ));

        Architecture::new("unet-nuclei", layers, self.to_hyperparameters())
    }
}

/// The Nuclei U-Net search space of Fig. 3: height 1–5 and, per level `i`
/// (1-based), a filter count in `{4 * 2^(i-1), 8 * 2^(i-1), 16 * 2^(i-1)}`.
pub fn nuclei_search_space() -> SearchSpace {
    let mut choices = vec![ChoicePoint::new("Height", vec![1, 2, 3, 4, 5])];
    for level in 1..=MAX_HEIGHT {
        let scale = 1usize << (level - 1);
        choices.push(ChoicePoint::new(
            &format!("FN{level}"),
            vec![4 * scale, 8 * scale, 16 * scale],
        ));
    }
    SearchSpace::new("unet-nuclei", choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn hyperparameter_round_trip() {
        let hp = vec![3, 8, 16, 32, 64, 128];
        let cfg = UNetConfig::from_hyperparameters(Dataset::Nuclei, &hp);
        assert_eq!(cfg.height, 3);
        assert_eq!(cfg.to_hyperparameters(), hp);
        assert_eq!(cfg.level_filters(2), 32);
    }

    #[test]
    fn height_one_unet_is_a_plain_conv_stack() {
        let cfg = UNetConfig::from_hyperparameters(Dataset::Nuclei, &[1, 4]);
        let arch = cfg.build();
        // Two encoder convs + output conv, no pooling or upsampling.
        assert_eq!(arch.num_layers(), 3);
        assert!(arch
            .layers
            .iter()
            .all(|l| l.kind != LayerKind::TransposedConv2d && l.kind != LayerKind::MaxPool));
    }

    #[test]
    fn full_height_unet_is_symmetric() {
        let space = nuclei_search_space();
        let hp = space.decode(&space.largest()).unwrap();
        assert_eq!(hp[0], 5);
        let arch = UNetConfig::from_hyperparameters(Dataset::Nuclei, &hp).build();
        let downs = arch
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::MaxPool)
            .count();
        let ups = arch
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::TransposedConv2d)
            .count();
        assert_eq!(downs, 4);
        assert_eq!(ups, 4);
        // Output resolution must match the input resolution.
        assert_eq!(arch.layers.last().unwrap().input_size, 128);
        assert_eq!(arch.layers.last().unwrap().output_channels, 1);
    }

    #[test]
    fn decoder_first_conv_sees_concatenated_channels() {
        let cfg = UNetConfig::from_hyperparameters(Dataset::Nuclei, &[2, 8, 16]);
        let arch = cfg.build();
        let dec_conv = arch.layers.iter().find(|l| l.name == "dec0_conv0").unwrap();
        assert_eq!(dec_conv.input_channels, 16);
        assert_eq!(dec_conv.output_channels, 8);
    }

    #[test]
    fn unet_favours_high_resolution_layers() {
        // The bulk of U-Net compute sits at high resolution / low channel
        // count, the regime the paper says Shidiannao-style dataflows like.
        let space = nuclei_search_space();
        let hp = space.decode(&space.largest()).unwrap();
        let arch = UNetConfig::from_hyperparameters(Dataset::Nuclei, &hp).build();
        let avg_ratio: f64 = arch
            .compute_layers()
            .map(|l| l.channel_to_resolution_ratio())
            .sum::<f64>()
            / arch.num_compute_layers() as f64;
        let resnet = crate::resnet::ResNetConfig::from_hyperparameters(
            Dataset::Cifar10,
            &[32, 128, 2, 256, 2, 256, 2],
        )
        .build();
        let resnet_ratio: f64 = resnet
            .compute_layers()
            .map(|l| l.channel_to_resolution_ratio())
            .sum::<f64>()
            / resnet.num_compute_layers() as f64;
        assert!(
            resnet_ratio > avg_ratio,
            "resnet {resnet_ratio} vs unet {avg_ratio}"
        );
    }

    #[test]
    fn search_space_matches_paper_options() {
        let space = nuclei_search_space();
        assert_eq!(space.num_choices(), 6);
        assert_eq!(space.choices()[1].options, vec![4, 8, 16]);
        assert_eq!(space.choices()[5].options, vec![64, 128, 256]);
    }

    #[test]
    #[should_panic]
    fn too_few_filter_entries_rejected() {
        UNetConfig::from_hyperparameters(Dataset::Nuclei, &[3, 8, 16]);
    }

    #[test]
    #[should_panic]
    fn excessive_height_rejected() {
        UNetConfig::from_hyperparameters(Dataset::Nuclei, &[6, 4, 8, 16, 32, 64, 128]);
    }
}
