//! Layer-shape intermediate representation.
//!
//! Every network the co-exploration touches is lowered to a flat list of
//! [`LayerShape`]s.  The cost model in `nasaic-cost` consumes exactly the
//! dimensions MAESTRO uses: output channels `K`, input channels `C`,
//! kernel `R x S`, and input feature map `Y x X`, plus a stride.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The operator class of a layer.
///
/// Only the operator classes that appear in ResNet-9 and U-Net are
/// modelled; they are the ones whose cost the paper's evaluation needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Standard 2-D convolution.
    Conv2d,
    /// Transposed convolution (used by the U-Net decoder for upsampling).
    TransposedConv2d,
    /// Max pooling (modelled as a cheap, memory-bound layer).
    MaxPool,
    /// Global average pooling before the classifier.
    GlobalAvgPool,
    /// Fully connected layer.
    Dense,
    /// Element-wise addition of a residual branch.
    ElementwiseAdd,
}

impl LayerKind {
    /// `true` when the layer performs multiply-accumulate work on a weight
    /// tensor (convolutions and dense layers).
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv2d | LayerKind::TransposedConv2d | LayerKind::Dense
        )
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerKind::Conv2d => "conv2d",
            LayerKind::TransposedConv2d => "tconv2d",
            LayerKind::MaxPool => "maxpool",
            LayerKind::GlobalAvgPool => "gavgpool",
            LayerKind::Dense => "dense",
            LayerKind::ElementwiseAdd => "add",
        };
        f.write_str(s)
    }
}

/// Shape and operator of one network layer.
///
/// Dimensions follow the MAESTRO convention:
/// `K` output channels, `C` input channels, `R x S` kernel,
/// `Y x X` input feature map, and a stride.
///
/// # Example
///
/// ```
/// use nasaic_nn::layer::LayerShape;
/// let conv = LayerShape::conv2d("conv0", 3, 64, 3, 32, 1);
/// assert_eq!(conv.output_height(), 32);
/// assert_eq!(conv.macs(), 64 * 3 * 3 * 3 * 32 * 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerShape {
    /// Human-readable layer name (unique within an architecture).
    pub name: String,
    /// Operator class.
    pub kind: LayerKind,
    /// Input channels `C`.
    pub input_channels: usize,
    /// Output channels `K`.
    pub output_channels: usize,
    /// Kernel height `R` (= width `S`; all kernels in the paper are square).
    pub kernel: usize,
    /// Input feature-map height `Y` (= width `X`; all maps are square).
    pub input_size: usize,
    /// Stride (1 for most layers, 2 for pooling / strided upsample).
    pub stride: usize,
}

impl LayerShape {
    /// Construct a square 2-D convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn conv2d(
        name: &str,
        input_channels: usize,
        output_channels: usize,
        kernel: usize,
        input_size: usize,
        stride: usize,
    ) -> Self {
        Self::new(
            name,
            LayerKind::Conv2d,
            input_channels,
            output_channels,
            kernel,
            input_size,
            stride,
        )
    }

    /// Construct a transposed convolution (decoder upsampling) layer.  The
    /// output feature map is `stride` times larger than the input.
    pub fn transposed_conv2d(
        name: &str,
        input_channels: usize,
        output_channels: usize,
        kernel: usize,
        input_size: usize,
        stride: usize,
    ) -> Self {
        Self::new(
            name,
            LayerKind::TransposedConv2d,
            input_channels,
            output_channels,
            kernel,
            input_size,
            stride,
        )
    }

    /// Construct a max-pooling layer (channel preserving).
    pub fn max_pool(name: &str, channels: usize, window: usize, input_size: usize) -> Self {
        Self::new(
            name,
            LayerKind::MaxPool,
            channels,
            channels,
            window,
            input_size,
            window,
        )
    }

    /// Construct a global average pooling layer.
    pub fn global_avg_pool(name: &str, channels: usize, input_size: usize) -> Self {
        Self::new(
            name,
            LayerKind::GlobalAvgPool,
            channels,
            channels,
            input_size,
            input_size,
            input_size,
        )
    }

    /// Construct a dense (fully connected) layer.
    pub fn dense(name: &str, input_features: usize, output_features: usize) -> Self {
        Self::new(
            name,
            LayerKind::Dense,
            input_features,
            output_features,
            1,
            1,
            1,
        )
    }

    /// Construct an element-wise addition layer (residual join).
    pub fn elementwise_add(name: &str, channels: usize, input_size: usize) -> Self {
        Self::new(
            name,
            LayerKind::ElementwiseAdd,
            channels,
            channels,
            1,
            input_size,
            1,
        )
    }

    fn new(
        name: &str,
        kind: LayerKind,
        input_channels: usize,
        output_channels: usize,
        kernel: usize,
        input_size: usize,
        stride: usize,
    ) -> Self {
        assert!(
            input_channels > 0,
            "layer {name}: input channels must be > 0"
        );
        assert!(
            output_channels > 0,
            "layer {name}: output channels must be > 0"
        );
        assert!(kernel > 0, "layer {name}: kernel must be > 0");
        assert!(input_size > 0, "layer {name}: input size must be > 0");
        assert!(stride > 0, "layer {name}: stride must be > 0");
        Self {
            name: name.to_string(),
            kind,
            input_channels,
            output_channels,
            kernel,
            input_size,
            stride,
        }
    }

    /// Output feature-map height (= width).
    pub fn output_height(&self) -> usize {
        match self.kind {
            LayerKind::Conv2d => (self.input_size / self.stride).max(1),
            LayerKind::TransposedConv2d => self.input_size * self.stride,
            LayerKind::MaxPool => (self.input_size / self.stride).max(1),
            LayerKind::GlobalAvgPool => 1,
            LayerKind::Dense => 1,
            LayerKind::ElementwiseAdd => self.input_size,
        }
    }

    /// Multiply-accumulate operations performed by this layer.
    pub fn macs(&self) -> u64 {
        let oh = self.output_height() as u64;
        let k = self.output_channels as u64;
        let c = self.input_channels as u64;
        let r = self.kernel as u64;
        match self.kind {
            LayerKind::Conv2d | LayerKind::TransposedConv2d => k * c * r * r * oh * oh,
            LayerKind::Dense => k * c,
            // Pooling and element-wise layers do comparisons/additions, not
            // MACs; we count one op per output element so they are cheap but
            // not free for the cost model.
            LayerKind::MaxPool | LayerKind::GlobalAvgPool => {
                c * (self.input_size as u64) * (self.input_size as u64)
            }
            LayerKind::ElementwiseAdd => c * oh * oh,
        }
    }

    /// Number of trainable parameters (weights, ignoring biases).
    pub fn params(&self) -> u64 {
        if !self.kind.has_weights() {
            return 0;
        }
        let k = self.output_channels as u64;
        let c = self.input_channels as u64;
        let r = self.kernel as u64;
        match self.kind {
            LayerKind::Dense => k * c,
            _ => k * c * r * r,
        }
    }

    /// Number of input activation elements.
    pub fn input_activations(&self) -> u64 {
        self.input_channels as u64 * (self.input_size as u64).pow(2)
    }

    /// Number of output activation elements.
    pub fn output_activations(&self) -> u64 {
        self.output_channels as u64 * (self.output_height() as u64).pow(2)
    }

    /// Ratio of output channels to output spatial resolution; the cost model
    /// uses this to decide which dataflow "likes" the layer (NVDLA favours
    /// channel-heavy layers, Shidiannao favours resolution-heavy layers).
    pub fn channel_to_resolution_ratio(&self) -> f64 {
        self.output_channels as f64 / self.output_height().max(1) as f64
    }
}

impl fmt::Display for LayerShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} C={} K={} {}x{} in={}x{} s={}",
            self.name,
            self.kind,
            self.input_channels,
            self.output_channels,
            self.kernel,
            self.kernel,
            self.input_size,
            self.input_size,
            self.stride
        )
    }
}

/// A concrete neural architecture: an ordered list of layers plus the
/// hyperparameter assignment that produced it.
///
/// Layers execute in order; layer `i` consumes the output of layer `i - 1`
/// (residual adds are modelled as explicit [`LayerKind::ElementwiseAdd`]
/// layers so the dependency chain stays linear, which matches how the
/// paper's mapper treats per-network layer dependencies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// Human-readable architecture name, e.g. `"resnet9-cifar10"`.
    pub name: String,
    /// Ordered layer list.
    pub layers: Vec<LayerShape>,
    /// The hyperparameter values (paper notation, e.g.
    /// `<FN0, FN1, SK1, FN2, SK2, FN3, SK3>`) that generated this network.
    pub hyperparameters: Vec<usize>,
}

impl Architecture {
    /// Create an architecture from parts.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or layer names are not unique.
    pub fn new(name: &str, layers: Vec<LayerShape>, hyperparameters: Vec<usize>) -> Self {
        assert!(!layers.is_empty(), "architecture {name} has no layers");
        let mut names: Vec<&str> = layers.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            layers.len(),
            "architecture {name} has duplicate layer names"
        );
        Self {
            name: name.to_string(),
            layers,
            hyperparameters,
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total multiply-accumulate operations over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerShape::macs).sum()
    }

    /// Total trainable parameters over all layers.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(LayerShape::params).sum()
    }

    /// Layers that carry weights (the ones the mapper actually assigns to
    /// sub-accelerators; cheap glue layers ride along with their producer).
    pub fn compute_layers(&self) -> impl Iterator<Item = &LayerShape> {
        self.layers.iter().filter(|l| l.kind.has_weights())
    }

    /// Number of weight-carrying layers.
    pub fn num_compute_layers(&self) -> usize {
        self.compute_layers().count()
    }

    /// The paper's compact hyperparameter vector notation, e.g.
    /// `<32, 128, 2, 256, 2, 256, 2>`.
    pub fn hyperparameter_string(&self) -> String {
        let inner: Vec<String> = self.hyperparameters.iter().map(|v| v.to_string()).collect();
        format!("<{}>", inner.join(", "))
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({} layers, {:.1}M MACs, {:.2}M params)",
            self.name,
            self.hyperparameter_string(),
            self.num_layers(),
            self.total_macs() as f64 / 1e6,
            self.total_params() as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs_and_params_match_formula() {
        let l = LayerShape::conv2d("c", 16, 32, 3, 8, 1);
        assert_eq!(l.macs(), 32 * 16 * 9 * 64);
        assert_eq!(l.params(), 32 * 16 * 9);
        assert_eq!(l.output_height(), 8);
    }

    #[test]
    fn strided_conv_halves_resolution() {
        let l = LayerShape::conv2d("c", 3, 8, 3, 32, 2);
        assert_eq!(l.output_height(), 16);
    }

    #[test]
    fn transposed_conv_doubles_resolution() {
        let l = LayerShape::transposed_conv2d("up", 64, 32, 2, 16, 2);
        assert_eq!(l.output_height(), 32);
        assert!(l.macs() > 0);
        assert_eq!(l.params(), 32 * 64 * 4);
    }

    #[test]
    fn pooling_has_no_params() {
        let l = LayerShape::max_pool("p", 32, 2, 16);
        assert_eq!(l.params(), 0);
        assert_eq!(l.output_height(), 8);
        assert!(!l.kind.has_weights());
    }

    #[test]
    fn global_pool_collapses_to_one() {
        let l = LayerShape::global_avg_pool("g", 256, 4);
        assert_eq!(l.output_height(), 1);
        assert_eq!(l.output_activations(), 256);
    }

    #[test]
    fn dense_macs_equal_params() {
        let l = LayerShape::dense("fc", 256, 10);
        assert_eq!(l.macs(), 2560);
        assert_eq!(l.params(), 2560);
    }

    #[test]
    fn elementwise_add_preserves_shape() {
        let l = LayerShape::elementwise_add("add", 64, 16);
        assert_eq!(l.output_height(), 16);
        assert_eq!(l.params(), 0);
        assert_eq!(l.macs(), 64 * 256);
    }

    #[test]
    fn channel_to_resolution_ratio_orders_layers() {
        let early = LayerShape::conv2d("early", 3, 32, 3, 32, 1); // 32 ch / 32 px = 1
        let late = LayerShape::conv2d("late", 256, 256, 3, 4, 1); // 256 ch / 4 px = 64
        assert!(late.channel_to_resolution_ratio() > early.channel_to_resolution_ratio());
    }

    #[test]
    fn architecture_aggregates_layer_stats() {
        let arch = Architecture::new(
            "tiny",
            vec![
                LayerShape::conv2d("c0", 3, 8, 3, 8, 1),
                LayerShape::max_pool("p0", 8, 2, 8),
                LayerShape::dense("fc", 8 * 16, 10),
            ],
            vec![8],
        );
        assert_eq!(arch.num_layers(), 3);
        assert_eq!(arch.num_compute_layers(), 2);
        assert_eq!(
            arch.total_macs(),
            LayerShape::conv2d("c0", 3, 8, 3, 8, 1).macs()
                + LayerShape::max_pool("p0", 8, 2, 8).macs()
                + 1280
        );
        assert_eq!(arch.hyperparameter_string(), "<8>");
    }

    #[test]
    #[should_panic]
    fn duplicate_layer_names_rejected() {
        Architecture::new(
            "dup",
            vec![
                LayerShape::conv2d("c", 3, 8, 3, 8, 1),
                LayerShape::conv2d("c", 8, 8, 3, 8, 1),
            ],
            vec![],
        );
    }

    #[test]
    #[should_panic]
    fn zero_channel_layer_rejected() {
        LayerShape::conv2d("bad", 0, 8, 3, 8, 1);
    }

    #[test]
    fn display_formats_are_informative() {
        let l = LayerShape::conv2d("c0", 3, 8, 3, 8, 1);
        let s = format!("{l}");
        assert!(s.contains("conv2d") && s.contains("C=3") && s.contains("K=8"));
        let a = Architecture::new("net", vec![l], vec![1, 2]);
        assert!(format!("{a}").contains("<1, 2>"));
    }
}
