//! The per-task backbones of the paper, tying together a dataset, a search
//! space and an architecture generator.

use crate::dataset::{Dataset, TaskKind};
use crate::layer::Architecture;
use crate::resnet::{self, ResNetConfig};
use crate::space::{DecodeError, SearchSpace};
use crate::unet::{self, UNetConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A backbone is the combination of a dataset and a parameterised network
/// family.  Each task `T_i` of a workload maps to exactly one backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backbone {
    /// ResNet-9 with three residual blocks on CIFAR-10.
    ResNet9Cifar10,
    /// ResNet-9 deepened to five residual blocks on STL-10.
    ResNet9Stl10,
    /// U-Net with searchable height on the Nuclei segmentation dataset.
    UNetNuclei,
}

impl Backbone {
    /// The stable machine-readable name of this backbone, used by scenario
    /// configs and round-tripped by [`Backbone::from_name`].
    pub fn name(&self) -> &'static str {
        match self {
            Backbone::ResNet9Cifar10 => "resnet9-cifar10",
            Backbone::ResNet9Stl10 => "resnet9-stl10",
            Backbone::UNetNuclei => "unet-nuclei",
        }
    }

    /// Look a backbone up by its stable name (case-insensitive; `_` and `/`
    /// are accepted in place of `-`).  Inverse of [`Backbone::name`].
    ///
    /// ```
    /// use nasaic_nn::backbone::Backbone;
    ///
    /// assert_eq!(Backbone::from_name("unet-nuclei"), Some(Backbone::UNetNuclei));
    /// assert_eq!(Backbone::from_name("ResNet9_CIFAR10"), Some(Backbone::ResNet9Cifar10));
    /// assert_eq!(Backbone::from_name("vgg16"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Backbone> {
        let canonical: String = name
            .trim()
            .to_ascii_lowercase()
            .chars()
            .map(|c| if c == '_' || c == '/' { '-' } else { c })
            .collect();
        Backbone::all().into_iter().find(|b| b.name() == canonical)
    }

    /// The dataset this backbone is evaluated on.
    pub fn dataset(&self) -> Dataset {
        match self {
            Backbone::ResNet9Cifar10 => Dataset::Cifar10,
            Backbone::ResNet9Stl10 => Dataset::Stl10,
            Backbone::UNetNuclei => Dataset::Nuclei,
        }
    }

    /// The task kind (classification or segmentation).
    pub fn task_kind(&self) -> TaskKind {
        self.dataset().task_kind()
    }

    /// The hyperparameter search space of this backbone.
    pub fn search_space(&self) -> SearchSpace {
        match self {
            Backbone::ResNet9Cifar10 => resnet::cifar10_search_space(),
            Backbone::ResNet9Stl10 => resnet::stl10_search_space(),
            Backbone::UNetNuclei => unet::nuclei_search_space(),
        }
    }

    /// Materialise an architecture from an index vector into the search
    /// space (this is the paper's `nas(D_i)` function).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the index vector does not fit the search
    /// space.
    pub fn materialize(&self, indices: &[usize]) -> Result<Architecture, DecodeError> {
        let space = self.search_space();
        let values = space.decode(indices)?;
        Ok(self.materialize_values(&values))
    }

    /// Materialise an architecture directly from concrete hyperparameter
    /// values (paper notation).
    ///
    /// # Panics
    ///
    /// Panics if the values are structurally invalid for the backbone
    /// (e.g. wrong vector length).
    pub fn materialize_values(&self, values: &[usize]) -> Architecture {
        match self {
            Backbone::ResNet9Cifar10 => {
                ResNetConfig::from_hyperparameters(Dataset::Cifar10, values).build()
            }
            Backbone::ResNet9Stl10 => {
                ResNetConfig::from_hyperparameters(Dataset::Stl10, values).build()
            }
            Backbone::UNetNuclei => {
                UNetConfig::from_hyperparameters(Dataset::Nuclei, values).build()
            }
        }
    }

    /// The smallest architecture in the search space (the paper's accuracy
    /// lower bound, shown as blue crosses in Fig. 6).
    pub fn smallest_architecture(&self) -> Architecture {
        let space = self.search_space();
        self.materialize(&space.smallest())
            .expect("smallest candidate is always valid")
    }

    /// The largest architecture in the search space.
    pub fn largest_architecture(&self) -> Architecture {
        let space = self.search_space();
        self.materialize(&space.largest())
            .expect("largest candidate is always valid")
    }

    /// All backbones, in a stable order.
    pub fn all() -> [Backbone; 3] {
        [
            Backbone::ResNet9Cifar10,
            Backbone::ResNet9Stl10,
            Backbone::UNetNuclei,
        ]
    }
}

impl fmt::Display for Backbone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backbone::ResNet9Cifar10 => f.write_str("ResNet9/CIFAR-10"),
            Backbone::ResNet9Stl10 => f.write_str("ResNet9/STL-10"),
            Backbone::UNetNuclei => f.write_str("U-Net/Nuclei"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_backbone_materializes_its_extremes() {
        for backbone in Backbone::all() {
            let small = backbone.smallest_architecture();
            let large = backbone.largest_architecture();
            assert!(large.total_macs() > small.total_macs(), "{backbone}");
            assert!(small.total_macs() > 0);
        }
    }

    #[test]
    fn materialize_rejects_bad_indices() {
        let err = Backbone::ResNet9Cifar10.materialize(&[0, 0]).unwrap_err();
        assert!(matches!(err, DecodeError::WrongLength { .. }));
    }

    #[test]
    fn materialize_values_round_trips_with_search_space() {
        let backbone = Backbone::UNetNuclei;
        let space = backbone.search_space();
        let indices = vec![2, 1, 1, 1, 1, 1];
        let values = space.decode(&indices).unwrap();
        let a = backbone.materialize(&indices).unwrap();
        let b = backbone.materialize_values(&values);
        assert_eq!(a, b);
    }

    #[test]
    fn backbone_datasets_and_tasks() {
        assert_eq!(Backbone::ResNet9Cifar10.dataset(), Dataset::Cifar10);
        assert_eq!(Backbone::UNetNuclei.task_kind(), TaskKind::Segmentation);
        assert_eq!(Backbone::ResNet9Stl10.task_kind(), TaskKind::Classification);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Backbone::UNetNuclei.to_string(), "U-Net/Nuclei");
    }

    #[test]
    fn name_round_trips_through_from_name() {
        for backbone in Backbone::all() {
            assert_eq!(Backbone::from_name(backbone.name()), Some(backbone));
        }
        assert_eq!(
            Backbone::from_name(" RESNET9_STL10 "),
            Some(Backbone::ResNet9Stl10)
        );
        assert_eq!(Backbone::from_name("unknown-backbone"), None);
    }

    #[test]
    fn search_space_sizes_match_backbones() {
        assert_eq!(Backbone::ResNet9Cifar10.search_space().num_choices(), 7);
        assert_eq!(Backbone::ResNet9Stl10.search_space().num_choices(), 11);
        assert_eq!(Backbone::UNetNuclei.search_space().num_choices(), 6);
    }
}
