//! Neural-architecture intermediate representation and search spaces for
//! the NASAIC reproduction.
//!
//! The paper's application layer (Section III ➊) defines, per task, a
//! backbone architecture with searchable hyperparameters:
//!
//! * **ResNet-9** for classification (CIFAR-10 with 3 residual blocks,
//!   STL-10 with 5 deeper blocks), searching the filter count `FN_i` and
//!   the number of extra convolution ("skip") layers `SK_i` per block;
//! * **U-Net** for segmentation (Nuclei), searching the network height and
//!   the filter count per level.
//!
//! This crate provides:
//!
//! * [`layer`] — a layer-shape IR (`K, C, R, S, Y, X`, stride) with MAC /
//!   parameter / activation accounting, the currency consumed by the
//!   cost model in `nasaic-cost`;
//! * [`resnet`] / [`unet`] — backbone generators that turn hyperparameter
//!   assignments into concrete [`Architecture`]s;
//! * [`space`] — generic discrete search spaces over hyperparameters;
//! * [`backbone`] — the per-task backbones of the paper tying a search
//!   space to a generator;
//! * [`dataset`] — the datasets used in the evaluation (CIFAR-10, STL-10,
//!   Nuclei) with their input geometry;
//! * [`stats`] — whole-network statistics used by surrogates and reports.
//!
//! # Example
//!
//! ```
//! use nasaic_nn::backbone::Backbone;
//!
//! let backbone = Backbone::ResNet9Cifar10;
//! let space = backbone.search_space();
//! // The paper's best W3 architecture: <32, 128, 2, 256, 2, 256, 2>.
//! let arch = backbone.materialize(&space.indices_of(&[32, 128, 2, 256, 2, 256, 2]).unwrap()).unwrap();
//! assert!(arch.total_macs() > 0);
//! ```

#![deny(missing_docs)]

pub mod backbone;
pub mod dataset;
pub mod layer;
pub mod resnet;
pub mod space;
pub mod stats;
pub mod unet;

pub use backbone::Backbone;
pub use dataset::{Dataset, TaskKind};
pub use layer::{Architecture, LayerKind, LayerShape};
pub use space::{ChoicePoint, DecodeError, SearchSpace};
