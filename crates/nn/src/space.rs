//! Discrete hyperparameter search spaces.
//!
//! A [`SearchSpace`] is an ordered list of [`ChoicePoint`]s; a candidate is
//! an index vector selecting one option per choice point.  The controller
//! in `nasaic-rl` emits exactly one action (index) per choice point, so the
//! search space doubles as the contract between the application layer and
//! the controller.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One searchable hyperparameter with a finite list of options.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChoicePoint {
    /// Name of the hyperparameter, e.g. `"FN1"` or `"SK2"`.
    pub name: String,
    /// The allowed values.
    pub options: Vec<usize>,
}

impl ChoicePoint {
    /// Create a choice point.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(name: &str, options: Vec<usize>) -> Self {
        assert!(!options.is_empty(), "choice point {name} has no options");
        Self {
            name: name.to_string(),
            options,
        }
    }

    /// Number of options.
    pub fn cardinality(&self) -> usize {
        self.options.len()
    }

    /// Index of a concrete value in the options list.
    pub fn index_of(&self, value: usize) -> Option<usize> {
        self.options.iter().position(|&v| v == value)
    }
}

impl fmt::Display for ChoicePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:?}", self.name, self.options)
    }
}

/// Error returned when an index vector does not fit a search space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The index vector has the wrong number of entries.
    WrongLength {
        /// Number of entries expected (one per choice point).
        expected: usize,
        /// Number of entries provided.
        found: usize,
    },
    /// An index exceeds the cardinality of its choice point.
    IndexOutOfRange {
        /// Position of the offending choice point.
        position: usize,
        /// Name of the offending choice point.
        name: String,
        /// The offending index.
        index: usize,
        /// Number of options at that choice point.
        cardinality: usize,
    },
    /// A requested concrete value is not among the options.
    ValueNotInOptions {
        /// Position of the offending choice point.
        position: usize,
        /// Name of the offending choice point.
        name: String,
        /// The value that was requested.
        value: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::WrongLength { expected, found } => {
                write!(f, "expected {expected} choices, found {found}")
            }
            DecodeError::IndexOutOfRange {
                position,
                name,
                index,
                cardinality,
            } => write!(
                f,
                "choice {position} ({name}): index {index} out of range for {cardinality} options"
            ),
            DecodeError::ValueNotInOptions {
                position,
                name,
                value,
            } => write!(
                f,
                "choice {position} ({name}): value {value} is not an option"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// An ordered collection of choice points.
///
/// # Example
///
/// ```
/// use nasaic_nn::space::{ChoicePoint, SearchSpace};
/// let space = SearchSpace::new(
///     "demo",
///     vec![
///         ChoicePoint::new("FN", vec![32, 64, 128, 256]),
///         ChoicePoint::new("SK", vec![0, 1, 2]),
///     ],
/// );
/// assert_eq!(space.cardinality(), 12);
/// assert_eq!(space.decode(&[3, 1]).unwrap(), vec![256, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Name of the search space (usually the backbone it parameterises).
    pub name: String,
    choices: Vec<ChoicePoint>,
}

impl SearchSpace {
    /// Create a search space from its choice points.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn new(name: &str, choices: Vec<ChoicePoint>) -> Self {
        assert!(
            !choices.is_empty(),
            "search space {name} has no choice points"
        );
        Self {
            name: name.to_string(),
            choices,
        }
    }

    /// The choice points, in order.
    pub fn choices(&self) -> &[ChoicePoint] {
        &self.choices
    }

    /// Number of choice points (= length of a candidate index vector).
    pub fn num_choices(&self) -> usize {
        self.choices.len()
    }

    /// Total number of candidates in the space.
    pub fn cardinality(&self) -> u64 {
        self.choices
            .iter()
            .map(|c| c.cardinality() as u64)
            .product()
    }

    /// Cardinality of each choice point (the action-head sizes the
    /// controller needs).
    pub fn cardinalities(&self) -> Vec<usize> {
        self.choices.iter().map(ChoicePoint::cardinality).collect()
    }

    /// Validate an index vector against this space.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the vector has the wrong length or an
    /// index is out of range.
    pub fn validate(&self, indices: &[usize]) -> Result<(), DecodeError> {
        if indices.len() != self.choices.len() {
            return Err(DecodeError::WrongLength {
                expected: self.choices.len(),
                found: indices.len(),
            });
        }
        for (position, (&index, choice)) in indices.iter().zip(&self.choices).enumerate() {
            if index >= choice.cardinality() {
                return Err(DecodeError::IndexOutOfRange {
                    position,
                    name: choice.name.clone(),
                    index,
                    cardinality: choice.cardinality(),
                });
            }
        }
        Ok(())
    }

    /// Decode an index vector into concrete hyperparameter values.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the vector does not fit the space.
    pub fn decode(&self, indices: &[usize]) -> Result<Vec<usize>, DecodeError> {
        self.validate(indices)?;
        Ok(indices
            .iter()
            .zip(&self.choices)
            .map(|(&i, c)| c.options[i])
            .collect())
    }

    /// Inverse of [`decode`](Self::decode): turn concrete values back into
    /// option indices.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the length is wrong or a value is not
    /// among the options of its choice point.
    pub fn indices_of(&self, values: &[usize]) -> Result<Vec<usize>, DecodeError> {
        if values.len() != self.choices.len() {
            return Err(DecodeError::WrongLength {
                expected: self.choices.len(),
                found: values.len(),
            });
        }
        values
            .iter()
            .zip(&self.choices)
            .enumerate()
            .map(|(position, (&value, choice))| {
                choice
                    .index_of(value)
                    .ok_or_else(|| DecodeError::ValueNotInOptions {
                        position,
                        name: choice.name.clone(),
                        value,
                    })
            })
            .collect()
    }

    /// The candidate selecting the first (smallest) option everywhere.
    pub fn smallest(&self) -> Vec<usize> {
        vec![0; self.choices.len()]
    }

    /// The candidate selecting the last (largest) option everywhere.
    pub fn largest(&self) -> Vec<usize> {
        self.choices.iter().map(|c| c.cardinality() - 1).collect()
    }

    /// Sample a uniformly random candidate.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<usize> {
        self.choices
            .iter()
            .map(|c| rng.gen_range(0..c.cardinality()))
            .collect()
    }

    /// Enumerate every candidate in the space (use only for small spaces;
    /// intended for exhaustive baselines and tests).
    pub fn enumerate(&self) -> Enumerate<'_> {
        Enumerate {
            space: self,
            current: Some(self.smallest()),
        }
    }

    /// Iterate the neighbours of a candidate: all candidates that differ in
    /// exactly one choice point by one option step (used by the
    /// hill-climbing baseline).
    pub fn neighbours(&self, indices: &[usize]) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        if self.validate(indices).is_err() {
            return out;
        }
        for (pos, choice) in self.choices.iter().enumerate() {
            if indices[pos] > 0 {
                let mut n = indices.to_vec();
                n[pos] -= 1;
                out.push(n);
            }
            if indices[pos] + 1 < choice.cardinality() {
                let mut n = indices.to_vec();
                n[pos] += 1;
                out.push(n);
            }
        }
        out
    }
}

impl fmt::Display for SearchSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} choice points, {} candidates)",
            self.name,
            self.num_choices(),
            self.cardinality()
        )
    }
}

/// Iterator over all candidates of a [`SearchSpace`] in lexicographic order.
#[derive(Debug)]
pub struct Enumerate<'a> {
    space: &'a SearchSpace,
    current: Option<Vec<usize>>,
}

impl<'a> Iterator for Enumerate<'a> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.current.clone()?;
        // Advance like an odometer.
        let mut next = current.clone();
        let mut pos = next.len();
        loop {
            if pos == 0 {
                self.current = None;
                break;
            }
            pos -= 1;
            if next[pos] + 1 < self.space.choices[pos].cardinality() {
                next[pos] += 1;
                for later in next.iter_mut().skip(pos + 1) {
                    *later = 0;
                }
                self.current = Some(next);
                break;
            }
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_space() -> SearchSpace {
        SearchSpace::new(
            "demo",
            vec![
                ChoicePoint::new("FN", vec![32, 64, 128, 256]),
                ChoicePoint::new("SK", vec![0, 1, 2]),
            ],
        )
    }

    #[test]
    fn cardinality_is_product_of_options() {
        assert_eq!(demo_space().cardinality(), 12);
        assert_eq!(demo_space().cardinalities(), vec![4, 3]);
    }

    #[test]
    fn decode_and_indices_of_round_trip() {
        let space = demo_space();
        let values = space.decode(&[2, 1]).unwrap();
        assert_eq!(values, vec![128, 1]);
        assert_eq!(space.indices_of(&values).unwrap(), vec![2, 1]);
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let err = demo_space().decode(&[1]).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::WrongLength {
                expected: 2,
                found: 1
            }
        ));
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn decode_rejects_out_of_range_index() {
        let err = demo_space().decode(&[4, 0]).unwrap_err();
        assert!(matches!(err, DecodeError::IndexOutOfRange { index: 4, .. }));
    }

    #[test]
    fn indices_of_rejects_unknown_value() {
        let err = demo_space().indices_of(&[48, 0]).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::ValueNotInOptions { value: 48, .. }
        ));
    }

    #[test]
    fn smallest_and_largest_are_valid() {
        let space = demo_space();
        assert_eq!(space.decode(&space.smallest()).unwrap(), vec![32, 0]);
        assert_eq!(space.decode(&space.largest()).unwrap(), vec![256, 2]);
    }

    #[test]
    fn sampling_stays_in_range() {
        let space = demo_space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let candidate = space.sample(&mut rng);
            assert!(space.validate(&candidate).is_ok());
        }
    }

    #[test]
    fn enumerate_visits_every_candidate_exactly_once() {
        let space = demo_space();
        let all: Vec<Vec<usize>> = space.enumerate().collect();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[11], vec![3, 2]);
    }

    #[test]
    fn neighbours_differ_in_one_position() {
        let space = demo_space();
        let neighbours = space.neighbours(&[1, 1]);
        assert_eq!(neighbours.len(), 4);
        for n in &neighbours {
            let diff: usize = n.iter().zip([1, 1].iter()).filter(|(a, b)| a != b).count();
            assert_eq!(diff, 1);
        }
        // Corner candidate has fewer neighbours.
        assert_eq!(space.neighbours(&[0, 0]).len(), 2);
    }

    #[test]
    fn display_mentions_cardinality() {
        assert!(demo_space().to_string().contains("12 candidates"));
    }
}
