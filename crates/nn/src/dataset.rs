//! Datasets and task kinds used in the paper's evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of AI task a DNN solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Image classification (accuracy metric in percent).
    Classification,
    /// Image segmentation (IOU metric in `[0, 1]`).
    Segmentation,
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskKind::Classification => f.write_str("classification"),
            TaskKind::Segmentation => f.write_str("segmentation"),
        }
    }
}

/// The datasets of the paper's three workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// CIFAR-10: 32x32 RGB, 10 classes.
    Cifar10,
    /// STL-10: 96x96 RGB, 10 classes.
    Stl10,
    /// 2018 Data Science Bowl nuclei segmentation: 128x128 RGB, binary mask.
    Nuclei,
}

impl Dataset {
    /// Input image resolution (square).
    pub fn input_resolution(&self) -> usize {
        match self {
            Dataset::Cifar10 => 32,
            Dataset::Stl10 => 96,
            Dataset::Nuclei => 128,
        }
    }

    /// Number of input channels.
    pub fn input_channels(&self) -> usize {
        3
    }

    /// Number of output classes (classification) or mask channels
    /// (segmentation).
    pub fn num_outputs(&self) -> usize {
        match self {
            Dataset::Cifar10 | Dataset::Stl10 => 10,
            Dataset::Nuclei => 1,
        }
    }

    /// The task kind this dataset is used for in the paper.
    pub fn task_kind(&self) -> TaskKind {
        match self {
            Dataset::Cifar10 | Dataset::Stl10 => TaskKind::Classification,
            Dataset::Nuclei => TaskKind::Segmentation,
        }
    }

    /// Name of the quality metric reported for this dataset.
    pub fn metric_name(&self) -> &'static str {
        match self.task_kind() {
            TaskKind::Classification => "accuracy",
            TaskKind::Segmentation => "IOU",
        }
    }

    /// All datasets, in a stable order.
    pub fn all() -> [Dataset; 3] {
        [Dataset::Cifar10, Dataset::Stl10, Dataset::Nuclei]
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dataset::Cifar10 => f.write_str("CIFAR-10"),
            Dataset::Stl10 => f.write_str("STL-10"),
            Dataset::Nuclei => f.write_str("Nuclei"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolutions_match_the_paper() {
        assert_eq!(Dataset::Cifar10.input_resolution(), 32);
        assert_eq!(Dataset::Stl10.input_resolution(), 96);
        assert_eq!(Dataset::Nuclei.input_resolution(), 128);
    }

    #[test]
    fn task_kinds_are_correct() {
        assert_eq!(Dataset::Cifar10.task_kind(), TaskKind::Classification);
        assert_eq!(Dataset::Stl10.task_kind(), TaskKind::Classification);
        assert_eq!(Dataset::Nuclei.task_kind(), TaskKind::Segmentation);
    }

    #[test]
    fn metric_names_differ_by_task() {
        assert_eq!(Dataset::Cifar10.metric_name(), "accuracy");
        assert_eq!(Dataset::Nuclei.metric_name(), "IOU");
    }

    #[test]
    fn output_counts() {
        assert_eq!(Dataset::Cifar10.num_outputs(), 10);
        assert_eq!(Dataset::Nuclei.num_outputs(), 1);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Dataset::Cifar10.to_string(), "CIFAR-10");
        assert_eq!(Dataset::Stl10.to_string(), "STL-10");
        assert_eq!(Dataset::Nuclei.to_string(), "Nuclei");
        assert_eq!(TaskKind::Segmentation.to_string(), "segmentation");
    }

    #[test]
    fn all_lists_every_dataset_once() {
        let all = Dataset::all();
        assert_eq!(all.len(), 3);
        assert!(all.contains(&Dataset::Stl10));
    }
}
