//! Whole-network statistics used by accuracy surrogates and reports.

use crate::layer::{Architecture, LayerKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate statistics of an [`Architecture`].
///
/// The accuracy surrogate in `nasaic-accuracy` consumes
/// [`log_capacity`](NetworkStats::log_capacity) as its main capacity
/// signal; reports and examples print the full struct.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Total multiply-accumulate operations for one inference.
    pub total_macs: u64,
    /// Total trainable parameters.
    pub total_params: u64,
    /// Number of weight-carrying layers.
    pub compute_layers: usize,
    /// Number of layers of any kind.
    pub total_layers: usize,
    /// Largest single-layer activation footprint (elements).
    pub peak_activations: u64,
    /// Mean channel-to-resolution ratio over compute layers (dataflow
    /// affinity signal: high values favour NVDLA-style, low values favour
    /// Shidiannao-style dataflows).
    pub mean_channel_resolution_ratio: f64,
}

impl NetworkStats {
    /// Compute statistics for an architecture.
    pub fn of(arch: &Architecture) -> Self {
        let compute_layers = arch.num_compute_layers();
        let peak_activations = arch
            .layers
            .iter()
            .map(|l| l.input_activations().max(l.output_activations()))
            .max()
            .unwrap_or(0);
        let mean_channel_resolution_ratio = if compute_layers == 0 {
            0.0
        } else {
            arch.compute_layers()
                .map(|l| l.channel_to_resolution_ratio())
                .sum::<f64>()
                / compute_layers as f64
        };
        Self {
            total_macs: arch.total_macs(),
            total_params: arch.total_params(),
            compute_layers,
            total_layers: arch.num_layers(),
            peak_activations,
            mean_channel_resolution_ratio,
        }
    }

    /// Logarithmic capacity measure combining compute and parameters,
    /// normalised so typical search-space networks land in roughly `[0, 1]`
    /// relative to each other.  Used by the accuracy surrogate's
    /// diminishing-returns curve.
    pub fn log_capacity(&self) -> f64 {
        let macs = (self.total_macs.max(1)) as f64;
        let params = (self.total_params.max(1)) as f64;
        0.5 * macs.ln() + 0.5 * params.ln()
    }

    /// Depth signal: weight-carrying layer count.
    pub fn depth(&self) -> usize {
        self.compute_layers
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}M MACs, {:.2}M params, {} compute layers (of {}), peak act {:.1}K, ch/res {:.2}",
            self.total_macs as f64 / 1e6,
            self.total_params as f64 / 1e6,
            self.compute_layers,
            self.total_layers,
            self.peak_activations as f64 / 1e3,
            self.mean_channel_resolution_ratio
        )
    }
}

/// Per-layer report row (used by examples to print MAESTRO-style tables).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReportRow {
    /// Layer name.
    pub name: String,
    /// Operator kind.
    pub kind: LayerKind,
    /// MACs of the layer.
    pub macs: u64,
    /// Parameters of the layer.
    pub params: u64,
    /// Output activations of the layer.
    pub output_activations: u64,
}

/// Build a per-layer report for an architecture.
pub fn layer_report(arch: &Architecture) -> Vec<LayerReportRow> {
    arch.layers
        .iter()
        .map(|l| LayerReportRow {
            name: l.name.clone(),
            kind: l.kind,
            macs: l.macs(),
            params: l.params(),
            output_activations: l.output_activations(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::Backbone;

    #[test]
    fn stats_aggregate_consistently() {
        let arch = Backbone::ResNet9Cifar10.largest_architecture();
        let stats = NetworkStats::of(&arch);
        assert_eq!(stats.total_macs, arch.total_macs());
        assert_eq!(stats.total_params, arch.total_params());
        assert_eq!(stats.total_layers, arch.num_layers());
        assert!(stats.peak_activations > 0);
    }

    #[test]
    fn log_capacity_is_monotone_in_size() {
        let small = NetworkStats::of(&Backbone::ResNet9Cifar10.smallest_architecture());
        let large = NetworkStats::of(&Backbone::ResNet9Cifar10.largest_architecture());
        assert!(large.log_capacity() > small.log_capacity());
    }

    #[test]
    fn resnet_has_higher_channel_ratio_than_unet() {
        let resnet = NetworkStats::of(&Backbone::ResNet9Cifar10.largest_architecture());
        let unet = NetworkStats::of(&Backbone::UNetNuclei.largest_architecture());
        assert!(resnet.mean_channel_resolution_ratio > unet.mean_channel_resolution_ratio);
    }

    #[test]
    fn layer_report_has_one_row_per_layer() {
        let arch = Backbone::UNetNuclei.smallest_architecture();
        let report = layer_report(&arch);
        assert_eq!(report.len(), arch.num_layers());
        assert_eq!(report[0].name, arch.layers[0].name);
        let total: u64 = report.iter().map(|r| r.macs).sum();
        assert_eq!(total, arch.total_macs());
    }

    #[test]
    fn display_contains_key_figures() {
        let stats = NetworkStats::of(&Backbone::ResNet9Cifar10.smallest_architecture());
        let s = stats.to_string();
        assert!(s.contains("MACs") && s.contains("params"));
    }
}
