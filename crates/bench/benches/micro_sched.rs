//! Micro-benchmarks of the incremental scheduling engine against the
//! retained naive baselines: delta-evaluated vs clone-and-resimulate
//! heuristic, reused-scratch vs allocating simulation, checkpointed trial
//! replay, and the bound-tightened exact solver.
//!
//! The committed perf trajectory (`BENCH_sched.json`) is produced by the
//! `sched_baseline` binary over the same instances
//! (`nasaic_bench::sched_instances`).

use criterion::{criterion_group, criterion_main, Criterion};
use nasaic_bench::sched_instances::{realistic_problem, tiny_problem, w1_problem};
use nasaic_sched::problem::Assignment;
use nasaic_sched::schedule::simulate;
use nasaic_sched::{solve_exact, solve_heuristic, solve_heuristic_reference, Simulator};
use std::hint::black_box;

fn bench_sched(c: &mut Criterion) {
    let problem = w1_problem();
    let assignment = Assignment::uniform(&problem.costs, 0);
    let mut group = c.benchmark_group("sched");

    // The headline pair: one full `solve_heuristic` on a W1-sized
    // instance, naive vs incremental.
    group.bench_function("heuristic_w1_reference", |b| {
        b.iter(|| black_box(solve_heuristic_reference(black_box(&problem))))
    });
    group.bench_function("heuristic_w1_incremental", |b| {
        b.iter(|| black_box(solve_heuristic(black_box(&problem))))
    });

    // One full simulation: fresh allocations vs reused scratch.
    group.bench_function("simulate_w1_naive", |b| {
        b.iter(|| black_box(simulate(black_box(&problem), black_box(&assignment))))
    });
    group.bench_function("simulate_w1_scratch", |b| {
        let mut sim = Simulator::new(&problem);
        b.iter(|| black_box(sim.makespan(black_box(&assignment))))
    });

    // One delta-evaluated trial move (checkpoint restore + suffix
    // re-dispatch) — the unit of work the greedy move loop pays per
    // candidate.
    group.bench_function("trial_move_w1", |b| {
        let mut sim = Simulator::new(&problem);
        let mut trial = assignment.clone();
        assert!(sim.prepare(&assignment).is_finite());
        let (n, l) = (1, problem.costs.networks[1].layers.len() / 2);
        let current = trial.sub_for(n, l);
        trial.set(n, l, 1 - current);
        b.iter(|| black_box(sim.trial_makespan(&trial, n, l, f64::INFINITY)))
    });

    group.sample_size(10);
    group.bench_function("exact_tiny", |b| {
        let tiny = tiny_problem();
        b.iter(|| black_box(solve_exact(black_box(&tiny))))
    });
    group.bench_function("exact_realistic_18_layers", |b| {
        let realistic = realistic_problem();
        b.iter(|| black_box(solve_exact(black_box(&realistic))))
    });
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
