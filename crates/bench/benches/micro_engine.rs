//! Micro-benchmark of the shared evaluation engine: serial `Evaluator`
//! calls vs the cached/parallel `EvalEngine` on a replayed episode stream.
//!
//! The stream mimics what the NASAIC search actually sends to the
//! evaluator: episodes of `1 + φ` candidates that share one architecture
//! set per episode, with architecture sets and hardware designs revisited
//! across episodes as the controller converges.  The engine's caches turn
//! those revisits into hash-map lookups; on multi-core machines the batch
//! path additionally fans each episode out over worker threads.

use criterion::{criterion_group, criterion_main, Criterion};
use nasaic_accel::HardwareSpace;
use nasaic_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// A converging search revisits earlier candidates: draw from a small pool
/// of architecture sets and hardware designs so the stream repeats itself
/// the way episode 300's samples repeat episode 200's.
fn episode_stream(workload: &Workload, episodes: usize, phi: usize) -> Vec<Vec<Candidate>> {
    let hardware = HardwareSpace::paper_default(2);
    let mut rng = StdRng::seed_from_u64(0x7a7e);
    let arch_pool: Vec<Vec<_>> = (0..8)
        .map(|_| {
            workload
                .tasks
                .iter()
                .map(|t| {
                    let space = t.backbone.search_space();
                    t.backbone
                        .materialize(&space.sample(&mut rng))
                        .expect("valid sample")
                })
                .collect()
        })
        .collect();
    let accel_pool: Vec<_> = (0..24).map(|_| hardware.sample(&mut rng)).collect();
    (0..episodes)
        .map(|_| {
            let archs = &arch_pool[rng.gen_range(0..arch_pool.len())];
            (0..=phi)
                .map(|_| {
                    let accel = accel_pool[rng.gen_range(0..accel_pool.len())].clone();
                    Candidate::from_parts(archs.clone(), accel)
                })
                .collect()
        })
        .collect()
}

fn run_serial(evaluator: &Evaluator, stream: &[Vec<Candidate>]) -> f64 {
    let mut acc = 0.0;
    for episode in stream {
        for candidate in episode {
            acc += evaluator.evaluate(candidate).weighted_accuracy;
        }
    }
    acc
}

fn run_engine(engine: &EvalEngine, stream: &[Vec<Candidate>]) -> f64 {
    let mut acc = 0.0;
    for episode in stream {
        for evaluation in engine.evaluate_batch(episode) {
            acc += evaluation.weighted_accuracy;
        }
    }
    acc
}

fn bench_engine(c: &mut Criterion) {
    let workload = Workload::w1();
    let specs = DesignSpecs::for_workload(WorkloadId::W1);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let stream = episode_stream(&workload, 40, 5);
    let evaluations: usize = stream.iter().map(Vec::len).sum();

    // Headline number: one full pass over the replayed stream, serial
    // evaluator vs a cold-start engine (its caches warm up inside the
    // measured region, exactly as they would inside a search run).
    let serial_start = Instant::now();
    let serial_sum = run_serial(&evaluator, &stream);
    let serial_time = serial_start.elapsed();
    let engine = EvalEngine::new(evaluator.clone());
    let engine_start = Instant::now();
    let engine_sum = run_engine(&engine, &stream);
    let engine_time = engine_start.elapsed();
    assert_eq!(serial_sum, engine_sum, "engine diverged from evaluator");
    let stats = engine.stats();
    println!("\n=== micro_engine: replayed episode stream ({evaluations} evaluations) ===");
    println!(
        "  serial Evaluator: {serial_time:?}\n  EvalEngine:       {engine_time:?}  \
         (hit rate {:.0}%, speedup {:.1}x)",
        stats.hit_rate() * 100.0,
        serial_time.as_secs_f64() / engine_time.as_secs_f64().max(1e-12),
    );

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("serial_evaluator_stream", |b| {
        b.iter(|| black_box(run_serial(&evaluator, black_box(&stream))))
    });
    group.bench_function("eval_engine_stream_cold", |b| {
        // A fresh engine per pass: caches warm up inside the measurement.
        b.iter(|| {
            let engine = EvalEngine::new(evaluator.clone());
            black_box(run_engine(&engine, black_box(&stream)))
        })
    });
    group.bench_function("eval_engine_stream_warm", |b| {
        // Steady state of a long search: everything previously visited.
        let engine = EvalEngine::new(evaluator.clone());
        run_engine(&engine, &stream);
        b.iter(|| black_box(run_engine(&engine, black_box(&stream))))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
