//! Micro-benchmarks of the mapping/scheduling stack: the list scheduler,
//! the ratio heuristic and (on a small instance) the exact solver.

use criterion::{criterion_group, criterion_main, Criterion};
use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
use nasaic_cost::{CostModel, WorkloadCosts};
use nasaic_nn::backbone::Backbone;
use nasaic_sched::problem::Assignment;
use nasaic_sched::schedule::simulate;
use nasaic_sched::{solve_exact, solve_heuristic, HapProblem};
use std::hint::black_box;

fn w1_problem() -> HapProblem {
    let model = CostModel::paper_calibrated();
    let archs = vec![
        Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]),
        Backbone::UNetNuclei.materialize_values(&[4, 16, 32, 64, 128, 256]),
    ];
    let acc = Accelerator::new(vec![
        SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
        SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
    ]);
    HapProblem::new(WorkloadCosts::build(&model, &archs, &acc), 8.0e5)
}

fn tiny_problem() -> HapProblem {
    let model = CostModel::paper_calibrated();
    let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
    let acc = Accelerator::new(vec![
        SubAccelerator::new(Dataflow::Nvdla, 1024, 16),
        SubAccelerator::new(Dataflow::Shidiannao, 1024, 16),
    ]);
    HapProblem::new(WorkloadCosts::build(&model, &archs, &acc), 1.0e6)
}

fn bench_scheduler(c: &mut Criterion) {
    let problem = w1_problem();
    let assignment = Assignment::uniform(&problem.costs, 0);
    let mut group = c.benchmark_group("hap");
    group.bench_function("list_schedule_w1", |b| {
        b.iter(|| black_box(simulate(black_box(&problem), black_box(&assignment))))
    });
    group.bench_function("heuristic_w1", |b| {
        b.iter(|| black_box(solve_heuristic(black_box(&problem))))
    });
    group.sample_size(10);
    group.bench_function("exact_tiny", |b| {
        let tiny = tiny_problem();
        b.iter(|| black_box(solve_exact(black_box(&tiny))))
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
