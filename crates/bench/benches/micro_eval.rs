//! Micro-benchmark of the evaluator hot-path pieces introduced by the
//! zero-alloc rework: blocked matmul vs the naive reference, the proxy
//! MLP's scratch-reusing train step vs the allocating wrapper, and the
//! memoised layer-cost table vs the from-scratch build.
//!
//! Each pair is bit-identical by construction (see the kernel identity
//! suite and the `eval_baseline` gate); this bench tracks the *speed* gap
//! so regressions in either path are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use nasaic_accel::{Accelerator, Dataflow, HardwareSpace, SubAccelerator};
use nasaic_accuracy::proxy::{Mlp, MlpScratch};
use nasaic_cost::{CostModel, LayerCostCache, WorkloadCosts};
use nasaic_nn::backbone::Backbone;
use nasaic_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    // The controller's largest recurring product shape (hidden x hidden).
    let lhs = random_matrix(&mut rng, 64, 64);
    let rhs = random_matrix(&mut rng, 64, 64);
    let mut out = Matrix::zeros(64, 64);
    let mut group = c.benchmark_group("matmul_64x64");
    group.bench_function("naive_reference", |b| {
        b.iter(|| black_box(lhs.matmul_reference(black_box(&rhs))))
    });
    group.bench_function("blocked", |b| {
        b.iter(|| black_box(lhs.matmul(black_box(&rhs))))
    });
    group.bench_function("blocked_into_scratch", |b| {
        b.iter(|| {
            lhs.matmul_into(black_box(&rhs), &mut out);
            black_box(out.as_slice()[0])
        })
    });
    group.finish();
}

fn bench_proxy_train_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let features: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
    // Both variants start from identical weights so the numeric trajectory
    // (and hence any denormal-induced timing drift) is the same.
    let seed_mlp = Mlp::new(&mut rng, 6, 32, 6, 0.01);
    let mut group = c.benchmark_group("proxy_train_step");
    group.bench_function("allocating", |b| {
        let mut mlp = seed_mlp.clone();
        b.iter(|| black_box(mlp.train_step(black_box(&features), 3)))
    });
    group.bench_function("scratch_reuse", |b| {
        let mut mlp = seed_mlp.clone();
        let mut scratch = MlpScratch::new();
        b.iter(|| black_box(mlp.train_step_with(black_box(&features), 3, &mut scratch)))
    });
    group.finish();
}

fn bench_cost_table(c: &mut Criterion) {
    let model = CostModel::paper_calibrated();
    let architectures = vec![
        Backbone::ResNet9Cifar10.largest_architecture(),
        Backbone::UNetNuclei.largest_architecture(),
    ];
    let accelerator = Accelerator::new(vec![
        SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
        SubAccelerator::new(Dataflow::Shidiannao, 1024, 16),
    ]);
    let mut group = c.benchmark_group("workload_cost_table");
    group.bench_function("build_from_scratch", |b| {
        b.iter(|| black_box(WorkloadCosts::build(&model, &architectures, &accelerator)))
    });
    group.bench_function("memoised_warm", |b| {
        let cache = LayerCostCache::new();
        cache.workload_costs(&model, &architectures, &accelerator);
        b.iter(|| black_box(cache.workload_costs(&model, &architectures, &accelerator)))
    });
    // Revisit pattern: accelerators resampled from a pool, as in a search.
    group.bench_function("memoised_accelerator_pool", |b| {
        let hardware = HardwareSpace::paper_default(2);
        let mut rng = StdRng::seed_from_u64(13);
        let pool: Vec<_> = (0..8).map(|_| hardware.sample(&mut rng)).collect();
        let cache = LayerCostCache::new();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % pool.len();
            black_box(cache.workload_costs(&model, &architectures, &pool[i]))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_proxy_train_step,
    bench_cost_table
);
criterion_main!(benches);
