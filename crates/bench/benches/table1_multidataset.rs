//! Regenerates Table I (NAS→ASIC vs ASIC→HW-NAS vs NASAIC on W1 and W2),
//! prints the derived headline claims, and benchmarks the hardware-metrics
//! evaluation that dominates every row.

use criterion::{criterion_group, criterion_main, Criterion};
use nasaic_bench::{scale_from_env, seed_from_env};
use nasaic_core::experiments::headline::HeadlineClaims;
use nasaic_core::experiments::table1;
use nasaic_core::prelude::*;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!("\n=== Table I regeneration (scale: {scale}) ===");
    let result = table1::run(scale, seed);
    print!("{result}");
    for workload in [WorkloadId::W1, WorkloadId::W2] {
        if let Some(claims) = HeadlineClaims::derive(&result, workload) {
            print!("{claims}");
        }
    }

    // Benchmark: hardware metrics (cost model + HAP) of a W1 candidate.
    let workload = Workload::w1();
    let specs = DesignSpecs::for_workload(WorkloadId::W1);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let architectures: Vec<_> = workload
        .tasks
        .iter()
        .map(|t| t.backbone.largest_architecture())
        .collect();
    let accelerator = Accelerator::new(vec![
        SubAccelerator::new(Dataflow::Nvdla, 2048, 40),
        SubAccelerator::new(Dataflow::Shidiannao, 1536, 24),
    ]);

    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    group.bench_function("hardware_metrics_w1", |b| {
        b.iter(|| {
            black_box(
                evaluator.hardware_metrics(black_box(&architectures), black_box(&accelerator)),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
