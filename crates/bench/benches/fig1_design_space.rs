//! Regenerates Fig. 1 (the motivation design-space exploration) and
//! benchmarks the candidate-evaluation primitive behind every point of the
//! figure.

use criterion::{criterion_group, criterion_main, Criterion};
use nasaic_bench::{scale_from_env, seed_from_env};
use nasaic_core::experiments::fig1;
use nasaic_core::prelude::*;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!("\n=== Fig. 1 regeneration (scale: {scale}) ===");
    let result = fig1::run(scale, seed);
    println!("{result}");

    // The figure is built from thousands of candidate evaluations; time one.
    let (workload, specs) = fig1::fig1_setting();
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let architectures: Vec<_> = workload
        .tasks
        .iter()
        .map(|t| t.backbone.materialize_values(&[32, 128, 2, 256, 2, 256, 2]))
        .collect();
    let accelerator = Accelerator::new(vec![
        SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
        SubAccelerator::new(Dataflow::Shidiannao, 1024, 24),
    ]);
    let candidate = Candidate::from_parts(architectures, accelerator);

    let mut group = c.benchmark_group("fig1");
    group.sample_size(30);
    group.bench_function("evaluate_candidate_cifar10", |b| {
        b.iter(|| black_box(evaluator.evaluate(black_box(&candidate))))
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
