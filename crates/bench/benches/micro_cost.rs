//! Micro-benchmarks of the analytical cost model (the MAESTRO substitute):
//! per-layer cost queries, whole-network cost tables and accelerator area.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
use nasaic_cost::{CostModel, WorkloadCosts};
use nasaic_nn::backbone::Backbone;
use nasaic_nn::layer::LayerShape;
use std::hint::black_box;

fn bench_layer_cost(c: &mut Criterion) {
    let model = CostModel::paper_calibrated();
    let layers = [
        ("early_conv", LayerShape::conv2d("early", 3, 64, 3, 128, 1)),
        ("mid_conv", LayerShape::conv2d("mid", 128, 128, 3, 16, 1)),
        ("late_conv", LayerShape::conv2d("late", 256, 256, 3, 4, 1)),
        ("dense", LayerShape::dense("fc", 256, 10)),
    ];
    let mut group = c.benchmark_group("cost/layer");
    for dataflow in Dataflow::all() {
        let sub = SubAccelerator::new(dataflow, 1024, 32);
        for (name, layer) in &layers {
            group.bench_with_input(
                BenchmarkId::new(dataflow.abbreviation(), name),
                layer,
                |b, layer| b.iter(|| black_box(model.layer_cost(black_box(layer), &sub))),
            );
        }
    }
    group.finish();
}

fn bench_workload_costs(c: &mut Criterion) {
    let model = CostModel::paper_calibrated();
    let archs = vec![
        Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]),
        Backbone::UNetNuclei.materialize_values(&[4, 16, 32, 64, 128, 256]),
    ];
    let acc = Accelerator::new(vec![
        SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
        SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
    ]);
    let mut group = c.benchmark_group("cost/workload");
    group.bench_function("build_w1_cost_table", |b| {
        b.iter(|| black_box(WorkloadCosts::build(&model, black_box(&archs), &acc)))
    });
    group.bench_function("accelerator_area", |b| {
        b.iter(|| black_box(model.area_um2(black_box(&acc))))
    });
    group.finish();
}

criterion_group!(benches, bench_layer_cost, bench_workload_costs);
criterion_main!(benches);
