//! Regenerates Fig. 6 (NASAIC exploration results on W1/W2/W3) and
//! benchmarks one NASAIC search episode.

use criterion::{criterion_group, criterion_main, Criterion};
use nasaic_bench::{scale_from_env, seed_from_env};
use nasaic_core::experiments::fig6;
use nasaic_core::prelude::*;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!("\n=== Fig. 6 regeneration (scale: {scale}) ===");
    let result = fig6::run(scale, seed);
    println!("{result}");

    // Benchmark: a short W1 co-exploration (4 episodes), the unit of work
    // that the figure repeats hundreds of times.
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("nasaic_w1_four_episodes", |b| {
        b.iter(|| {
            let config = NasaicConfig {
                episodes: 4,
                hardware_trials: 2,
                bound_samples: 4,
                ..NasaicConfig::paper(seed)
            };
            let outcome = Nasaic::new(
                Workload::w1(),
                DesignSpecs::for_workload(WorkloadId::W1),
                config,
            )
            .run();
            black_box(outcome.explored.len())
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
