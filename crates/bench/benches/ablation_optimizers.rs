//! Ablation study: alternative optimizers on the NASAIC reward, and the
//! effect of the optimizer selector's hardware-only exploration steps.
//!
//! The paper's Section IV notes that other optimizers (e.g. evolutionary
//! algorithms) can drive the same reward, and introduces the optimizer
//! selector (`phi` hardware-only steps per episode) to amortise the cost of
//! training.  This bench compares, under a matched evaluation budget:
//!
//! * the RL controller (NASAIC, `phi = 4`),
//! * the RL controller without hardware-only steps (`phi = 0`),
//! * the evolutionary-algorithm optimizer,
//! * joint Monte-Carlo random search,
//! * greedy hill climbing,
//!
//! and reports the best spec-compliant weighted accuracy each one reaches
//! on workload W3.

use criterion::{criterion_group, criterion_main, Criterion};
use nasaic_bench::seed_from_env;
use nasaic_core::baselines::{EvolutionarySearch, HillClimb, MonteCarloSearch};
use nasaic_core::prelude::*;
use std::hint::black_box;

fn report_line(name: &str, best: Option<f64>, evaluations: usize) {
    match best {
        Some(acc) => println!(
            "  {name:<28} best weighted accuracy {:>6.2}%  ({evaluations} evaluations)",
            acc * 100.0
        ),
        None => println!("  {name:<28} no spec-compliant solution ({evaluations} evaluations)"),
    }
}

fn regenerate_and_bench(c: &mut Criterion) {
    let seed = seed_from_env();
    let workload = Workload::w3();
    let specs = DesignSpecs::for_workload(WorkloadId::W3);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    // One shared engine across the whole ablation: engine caching is
    // observationally invisible, so each optimizer's outcome is identical
    // to an isolated run while revisited candidates are paid for once.
    let engine = EvalEngine::from(&evaluator);
    let hardware = HardwareSpace::paper_default(2);

    println!("\n=== Ablation: optimizers on the NASAIC reward (workload W3) ===");

    // NASAIC with the optimizer selector.
    let with_selector = Nasaic::new(
        workload.clone(),
        specs,
        NasaicConfig {
            episodes: 60,
            hardware_trials: 4,
            ..NasaicConfig::paper(seed)
        },
    )
    .run();
    report_line(
        "RL controller (phi = 4)",
        with_selector.best_weighted_accuracy(),
        with_selector.explored.len(),
    );

    // NASAIC without hardware-only steps (phi = 0).
    let without_selector = Nasaic::new(
        workload.clone(),
        specs,
        NasaicConfig {
            episodes: 60,
            hardware_trials: 0,
            ..NasaicConfig::paper(seed)
        },
    )
    .run();
    report_line(
        "RL controller (phi = 0)",
        without_selector.best_weighted_accuracy(),
        without_selector.explored.len(),
    );

    // Evolutionary algorithm.
    let evolutionary = EvolutionarySearch {
        population: 25,
        generations: 12,
        ..EvolutionarySearch::fast(seed)
    }
    .run_with_engine(&workload, specs, &hardware, &engine);
    report_line(
        "evolutionary algorithm",
        evolutionary.best_weighted_accuracy(),
        evolutionary.explored.len(),
    );

    // Joint Monte-Carlo random search with a matched budget.
    let budget = with_selector.explored.len().max(60);
    let random =
        MonteCarloSearch { runs: budget, seed }.run_with_engine(&workload, &hardware, &engine);
    report_line(
        "random search",
        random.best_weighted_accuracy(),
        random.explored.len(),
    );

    // Greedy hill climbing.
    let climb = HillClimb::new(20).run_with_engine(&workload, specs, &hardware, &engine);
    report_line(
        "hill climbing",
        climb.best_weighted_accuracy(),
        climb.explored.len(),
    );

    // Criterion measurement: one evolutionary generation as the timed unit.
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("evolutionary_generation_w3", |b| {
        b.iter(|| {
            let config = EvolutionarySearch {
                population: 10,
                generations: 1,
                ..EvolutionarySearch::fast(seed)
            };
            black_box(
                config
                    .run_with_engine(&workload, specs, &hardware, &EvalEngine::from(&evaluator))
                    .explored
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
