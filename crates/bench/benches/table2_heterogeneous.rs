//! Regenerates Table II (single vs homogeneous vs heterogeneous
//! accelerators on W3) and benchmarks the accuracy surrogate used by every
//! study.

use criterion::{criterion_group, criterion_main, Criterion};
use nasaic_accuracy::AccuracyModel;
use nasaic_bench::{scale_from_env, seed_from_env};
use nasaic_core::experiments::table2;
use nasaic_core::prelude::*;
use std::hint::black_box;

fn regenerate_and_bench(c: &mut Criterion) {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!("\n=== Table II regeneration (scale: {scale}) ===");
    let result = table2::run(scale, seed);
    print!("{result}");

    // Benchmark: the per-architecture accuracy oracle (the "training"
    // stand-in each study calls once per episode).
    let surrogate = SurrogateModel::paper_calibrated();
    let arch = Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]);

    let mut group = c.benchmark_group("table2");
    group.bench_function("surrogate_accuracy_cifar10", |b| {
        b.iter(|| black_box(surrogate.evaluate(Backbone::ResNet9Cifar10, black_box(&arch))))
    });
    group.bench_function("materialize_resnet9", |b| {
        b.iter(|| {
            black_box(
                Backbone::ResNet9Cifar10
                    .materialize_values(black_box(&[32, 128, 2, 256, 2, 256, 2])),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, regenerate_and_bench);
criterion_main!(benches);
