//! Micro-benchmarks of the RL controller: sampling a multi-segment
//! candidate and applying one REINFORCE update.

use criterion::{criterion_group, criterion_main, Criterion};
use nasaic_accel::HardwareSpace;
use nasaic_core::prelude::*;
use nasaic_rl::{Controller, ControllerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_controller(c: &mut Criterion) {
    let workload = Workload::w1();
    let hardware = HardwareSpace::paper_default(2);
    let segments = workload.controller_segments(&hardware);
    let controller = Controller::new(segments.clone(), ControllerConfig::default(), 1);
    let mut rng = StdRng::seed_from_u64(3);

    let mut group = c.benchmark_group("controller");
    group.bench_function("sample_w1_candidate", |b| {
        b.iter(|| black_box(controller.sample(&mut rng)))
    });
    group.bench_function("sample_and_feedback", |b| {
        let mut trainable = Controller::new(segments.clone(), ControllerConfig::default(), 2);
        b.iter(|| {
            let sample = trainable.sample(&mut rng);
            black_box(trainable.feedback(&sample, 0.8));
        })
    });
    group.bench_function("decode_candidate", |b| {
        let sample = controller.sample(&mut rng);
        b.iter(|| {
            black_box(Candidate::from_segments(
                &workload,
                &hardware,
                black_box(&sample.segments),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
