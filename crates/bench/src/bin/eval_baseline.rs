//! Evaluator hot-path snapshot: identity gates over every optimised
//! kernel/cache against its retained naive reference, plus a per-candidate
//! timing point appended to `BENCH_eval.json`.
//!
//! ```text
//! eval_baseline [--quick] [--check] [--label <label>] [--output <path>]
//! ```
//!
//! * `--quick` — shrink the replayed episode stream (CI); the identity
//!   gates always run in full.
//! * `--check` — run the identity gates only: no timing, no file write
//!   (the deterministic CI gate).
//! * `--label` — entry label (default `local`).
//! * `--output` — trajectory file to append to (default `BENCH_eval.json`
//!   in the current directory), holding
//!   `{"schema": 1, "bench": "eval_hotpath", "entries": [...]}`.
//!
//! The identity gates compare, bit for bit:
//!
//! 1. the blocked/unrolled matmul kernels against the naive i-k-j
//!    reference ([`Matrix::matmul_reference`]), including the fused
//!    transpose variants;
//! 2. memoised layer-cost tables ([`LayerCostCache::workload_costs`])
//!    against the from-scratch [`WorkloadCosts::build`];
//! 3. the memoised calibration-curve table against a fresh fit;
//! 4. the evaluator's cached hardware path against
//!    `hardware_metrics_reference`;
//! 5. the engine's de-duplicated batch path against slot-by-slot direct
//!    evaluation.
//!
//! The measurement then replays a duplicate-bearing episode stream (the
//! shape the NASAIC controller actually produces) through the retained
//! naive path and through the optimised engine, and **fails (exit 1) when
//! the optimised path is not at least 2x faster per candidate**, so CI can
//! gate on the perf floor as well as on correctness.

use nasaic_accel::HardwareSpace;
use nasaic_accuracy::calibration;
use nasaic_core::prelude::*;
use nasaic_core::scenario::value::{self, ConfigValue};
use nasaic_cost::{CostModel, LayerCostCache, WorkloadCosts};
use nasaic_nn::backbone::Backbone;
use nasaic_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Args {
    quick: bool,
    check: bool,
    label: String,
    output: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        check: false,
        label: "local".to_string(),
        output: "BENCH_eval.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--label" => args.label = it.next().expect("--label needs a value"),
            "--output" => args.output = it.next().expect("--output needs a value"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            // Exact zeros (of both signs) exercise the signed-zero corners
            // the kernels were audited for.
            if rng.gen_bool(0.15) {
                0.0
            } else if rng.gen_bool(0.05) {
                -0.0
            } else {
                rng.gen_range(-2.0..2.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Gate 1: blocked kernels vs the naive i-k-j reference, across shapes
/// that straddle the k-block size and the unroll width.
fn kernel_failures() -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(0xeba1);
    let mut failures = Vec::new();
    for &(m, p, n) in &[
        (1, 1, 1),
        (3, 31, 5),
        (4, 32, 4),
        (5, 33, 3),
        (2, 70, 7),
        (8, 64, 1),
        (0, 5, 4),
        (4, 0, 4),
    ] {
        let lhs = random_matrix(&mut rng, m, p);
        let rhs = random_matrix(&mut rng, p, n);
        if !bits_equal(&lhs.matmul(&rhs), &lhs.matmul_reference(&rhs)) {
            failures.push(format!("matmul diverged from reference at {m}x{p}x{n}"));
        }
        let lhs_t = lhs.transpose();
        if !bits_equal(&lhs_t.matmul_tn(&rhs), &lhs.matmul_reference(&rhs)) {
            failures.push(format!("matmul_tn diverged from reference at {m}x{p}x{n}"));
        }
        let rhs_t = rhs.transpose();
        if !bits_equal(&lhs.matmul_nt(&rhs_t), &lhs.matmul_reference(&rhs)) {
            failures.push(format!("matmul_nt diverged from reference at {m}x{p}x{n}"));
        }
    }
    failures
}

/// Gate 2: memoised layer-cost tables vs the from-scratch build.
fn cost_table_failures() -> Vec<String> {
    let model = CostModel::paper_calibrated();
    let cache = LayerCostCache::new();
    let workload = Workload::w1();
    let architectures: Vec<_> = workload
        .tasks
        .iter()
        .map(|t| t.backbone.largest_architecture())
        .collect();
    let hardware = HardwareSpace::paper_default(2);
    let mut rng = StdRng::seed_from_u64(0xc057);
    let mut failures = Vec::new();
    for _ in 0..4 {
        let accelerator = hardware.sample(&mut rng);
        let reference = WorkloadCosts::build(&model, &architectures, &accelerator);
        // Cold (filling) and warm (serving) must both match.
        for pass in ["cold", "warm"] {
            if cache.workload_costs(&model, &architectures, &accelerator) != reference {
                failures.push(format!("{pass} layer-cost table diverged from build"));
            }
        }
    }
    failures
}

/// Gate 3: the memoised calibration-curve table vs a fresh fit.
fn curve_failures() -> Vec<String> {
    let mut failures = Vec::new();
    for backbone in Backbone::all() {
        let memoised = calibration::curve_for(backbone);
        let fresh = calibration::curve_for_reference(backbone);
        let same = memoised.q_base.to_bits() == fresh.q_base.to_bits()
            && memoised.q_max.to_bits() == fresh.q_max.to_bits()
            && memoised.f_min.to_bits() == fresh.f_min.to_bits()
            && memoised.alpha.to_bits() == fresh.alpha.to_bits()
            && memoised.noise_amplitude.to_bits() == fresh.noise_amplitude.to_bits();
        if !same {
            failures.push(format!("memoised curve diverged for {backbone:?}"));
        }
    }
    failures
}

/// Gates 4 and 5: the evaluator's cached hardware path and the engine's
/// de-duplicated batch path vs their direct equivalents.
fn evaluator_failures(evaluator: &Evaluator, stream: &[Vec<Candidate>]) -> Vec<String> {
    let mut failures = Vec::new();
    let engine = EvalEngine::new(evaluator.clone());
    for episode in stream.iter().take(6) {
        for candidate in episode {
            let cached =
                evaluator.hardware_metrics(&candidate.architectures, &candidate.accelerator);
            let reference = evaluator
                .hardware_metrics_reference(&candidate.architectures, &candidate.accelerator);
            let same = cached.latency_cycles.to_bits() == reference.latency_cycles.to_bits()
                && cached.energy_nj.to_bits() == reference.energy_nj.to_bits()
                && cached.area_um2.to_bits() == reference.area_um2.to_bits();
            if !same {
                failures.push("cached hardware metrics diverged from reference".to_string());
            }
        }
        let batched = engine.evaluate_batch(episode);
        let direct: Vec<_> = episode.iter().map(|c| evaluator.evaluate(c)).collect();
        if batched != direct {
            failures.push("de-duplicated batch diverged from direct evaluation".to_string());
        }
    }
    failures
}

/// A duplicate-bearing episode stream: `1 + phi` candidates per episode
/// drawn from small pools, so designs repeat within and across episodes
/// the way a converging controller's samples do.
fn episode_stream(
    workload: &Workload,
    episodes: usize,
    phi: usize,
    arch_pool_size: usize,
    accel_pool_size: usize,
) -> Vec<Vec<Candidate>> {
    let hardware = HardwareSpace::paper_default(2);
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let arch_pool: Vec<Vec<_>> = (0..arch_pool_size)
        .map(|_| {
            workload
                .tasks
                .iter()
                .map(|t| {
                    let space = t.backbone.search_space();
                    t.backbone
                        .materialize(&space.sample(&mut rng))
                        .expect("valid sample")
                })
                .collect()
        })
        .collect();
    let accel_pool: Vec<_> = (0..accel_pool_size)
        .map(|_| hardware.sample(&mut rng))
        .collect();
    (0..episodes)
        .map(|_| {
            let archs = &arch_pool[rng.gen_range(0..arch_pool.len())];
            (0..=phi)
                .map(|_| {
                    let accel = accel_pool[rng.gen_range(0..accel_pool.len())].clone();
                    Candidate::from_parts(archs.clone(), accel)
                })
                .collect()
        })
        .collect()
}

/// The retained naive path: per candidate, fresh cost tables
/// (`hardware_metrics_reference`), no memoisation, no batching.
fn run_naive(evaluator: &Evaluator, stream: &[Vec<Candidate>]) -> f64 {
    let mut acc = 0.0;
    for episode in stream {
        for candidate in episode {
            let accuracies = evaluator.accuracies(&candidate.architectures);
            let metrics = evaluator
                .hardware_metrics_reference(&candidate.architectures, &candidate.accelerator);
            acc += evaluator
                .assemble_evaluation(accuracies, metrics)
                .weighted_accuracy;
        }
    }
    acc
}

fn run_engine(engine: &EvalEngine, stream: &[Vec<Candidate>]) -> f64 {
    let mut acc = 0.0;
    for episode in stream {
        for evaluation in engine.evaluate_batch(episode) {
            acc += evaluation.weighted_accuracy;
        }
    }
    acc
}

fn main() {
    let args = parse_args();

    let workload = Workload::w1();
    let specs = DesignSpecs::for_workload(WorkloadId::W1);
    let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
    let (episodes, phi, arch_pool, accel_pool) = if args.quick {
        (12, 5, 2, 6)
    } else {
        (40, 5, 4, 8)
    };
    let stream = episode_stream(&workload, episodes, phi, arch_pool, accel_pool);

    println!("== identity gates ==");
    let mut failures = kernel_failures();
    failures.extend(cost_table_failures());
    failures.extend(curve_failures());
    failures.extend(evaluator_failures(&evaluator, &stream));
    if failures.is_empty() {
        println!("ok: optimised kernels, cost tables, curves, caches and batch dedup");
        println!("    are bit-identical to their retained naive references");
    } else {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    if args.check {
        return;
    }

    let evaluations: usize = stream.iter().map(Vec::len).sum();
    println!(
        "== per-candidate measurement (w1, {episodes} episodes x (1 + {phi}) designs, \
         {evaluations} evaluations) =="
    );
    let naive_start = Instant::now();
    let naive_sum = run_naive(&evaluator, &stream);
    let naive_wall = naive_start.elapsed();
    // A fresh evaluator so the optimised side starts with cold caches
    // (the identity gates above partially warmed the shared layer-cost
    // memo of `evaluator`).
    let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
    let engine_start = Instant::now();
    let engine_sum = run_engine(&engine, &stream);
    let engine_wall = engine_start.elapsed();
    assert_eq!(naive_sum, engine_sum, "optimised path diverged from naive");
    let stats = engine.stats();
    let naive_ns = naive_wall.as_nanos() as f64 / evaluations as f64;
    let engine_ns = engine_wall.as_nanos() as f64 / evaluations as f64;
    let speedup = naive_ns / engine_ns.max(1e-9);
    println!(
        "naive:     {:.1} ms total, {:.0} ns/eval",
        naive_wall.as_secs_f64() * 1e3,
        naive_ns
    );
    println!(
        "optimised: {:.1} ms total, {:.0} ns/eval  (speedup {speedup:.1}x, \
         hit rate {:.1}%: accuracy {:.1}%, hardware {:.1}%)",
        engine_wall.as_secs_f64() * 1e3,
        engine_ns,
        stats.hit_rate() * 100.0,
        stats.accuracy_hit_rate() * 100.0,
        stats.hardware_hit_rate() * 100.0,
    );
    if speedup < 2.0 {
        eprintln!("FAIL: optimised path is only {speedup:.2}x faster (floor: 2x)");
        std::process::exit(1);
    }

    let mut entry = ConfigValue::table();
    entry.insert("label", ConfigValue::Str(args.label.clone()));
    entry.insert(
        "mode",
        ConfigValue::Str(if args.quick { "quick" } else { "full" }.to_string()),
    );
    entry.insert("date", ConfigValue::Str(nasaic_bench::today_utc()));
    entry.insert("scenario", ConfigValue::Str("w1".to_string()));
    entry.insert("episodes", ConfigValue::Integer(episodes as i64));
    entry.insert("evaluations", ConfigValue::Integer(evaluations as i64));
    entry.insert(
        "naive_wall_ms",
        ConfigValue::Float((naive_wall.as_secs_f64() * 1e4).round() / 10.0),
    );
    entry.insert(
        "wall_ms",
        ConfigValue::Float((engine_wall.as_secs_f64() * 1e4).round() / 10.0),
    );
    entry.insert("naive_ns_per_eval", ConfigValue::Float(naive_ns.round()));
    entry.insert("ns_per_eval", ConfigValue::Float(engine_ns.round()));
    entry.insert(
        "speedup",
        ConfigValue::Float((speedup * 100.0).round() / 100.0),
    );
    entry.insert(
        "cache_hit_rate",
        ConfigValue::Float((stats.hit_rate() * 1e4).round() / 1e4),
    );
    entry.insert(
        "accuracy_hit_rate",
        ConfigValue::Float((stats.accuracy_hit_rate() * 1e4).round() / 1e4),
    );
    entry.insert(
        "hardware_hit_rate",
        ConfigValue::Float((stats.hardware_hit_rate() * 1e4).round() / 1e4),
    );
    entry.insert("identity_gate", ConfigValue::Str("ok".to_string()));

    let mut root = match std::fs::read_to_string(&args.output) {
        Ok(existing) => value::parse_json(&existing).unwrap_or_else(|e| {
            eprintln!("cannot parse existing {}: {e}", args.output);
            std::process::exit(1);
        }),
        Err(_) => {
            let mut fresh = ConfigValue::table();
            fresh.insert("schema", ConfigValue::Integer(1));
            fresh.insert("bench", ConfigValue::Str("eval_hotpath".to_string()));
            fresh.insert("entries", ConfigValue::Array(Vec::new()));
            fresh
        }
    };
    let mut entries = root
        .get("entries")
        .and_then(|e| e.as_array())
        .map(<[ConfigValue]>::to_vec)
        .unwrap_or_default();
    entries.push(entry);
    root.insert("entries", ConfigValue::Array(entries));
    std::fs::write(&args.output, value::to_json(&root) + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.output);
        std::process::exit(1);
    });
    println!("wrote {}", args.output);
}
