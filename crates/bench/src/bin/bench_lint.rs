//! Validate every `BENCH_*.json` trajectory file against the shared
//! schema, so drift in one baseline binary can't silently produce a file
//! the others (and the plotting scripts) can't read.
//!
//! ```text
//! bench_lint [<dir>]
//! ```
//!
//! Scans `<dir>` (default `.`) non-recursively for `BENCH_*.json` and
//! requires, for each file:
//!
//! * top level: `schema == 1`, a non-empty `bench` string, a non-empty
//!   `entries` array;
//! * per entry: `label` (string), `mode` (string), `date`
//!   (`YYYY-MM-DD`), and at least one gate field — `identity_gate`,
//!   `consistency_gate`, `consistency`, or `dispatch_gate`.
//!
//! Exits non-zero listing every violation; exits non-zero too when no
//! trajectory files are found at all (a lint that lints nothing is a
//! misconfigured lint).

use nasaic_core::scenario::value::{self, ConfigValue};

/// Fields any one of which marks an entry as carrying a pass/fail gate.
const GATE_FIELDS: [&str; 4] = [
    "identity_gate",
    "consistency_gate",
    "consistency",
    "dispatch_gate",
];

fn is_iso_date(s: &str) -> bool {
    let bytes = s.as_bytes();
    bytes.len() == 10
        && bytes[4] == b'-'
        && bytes[7] == b'-'
        && [0, 1, 2, 3, 5, 6, 8, 9]
            .iter()
            .all(|&i| bytes[i].is_ascii_digit())
}

fn lint_entry(entry: &ConfigValue, errors: &mut Vec<String>, at: &str) {
    if entry.as_table().is_none() {
        errors.push(format!("{at}: entry is not a table"));
        return;
    }
    for field in ["label", "mode"] {
        match entry.get(field).and_then(|v| v.as_str()) {
            Some(s) if !s.is_empty() => {}
            _ => errors.push(format!("{at}: missing or empty `{field}` string")),
        }
    }
    match entry.get("date").and_then(|v| v.as_str()) {
        Some(date) if is_iso_date(date) => {}
        Some(date) => errors.push(format!("{at}: `date` \"{date}\" is not YYYY-MM-DD")),
        None => errors.push(format!("{at}: missing `date` field")),
    }
    if !GATE_FIELDS.iter().any(|f| entry.get(f).is_some()) {
        errors.push(format!(
            "{at}: no gate field (expected one of {})",
            GATE_FIELDS.join(", ")
        ));
    }
}

fn lint_file(path: &std::path::Path, errors: &mut Vec<String>) {
    let name = path.file_name().unwrap_or_default().to_string_lossy();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            errors.push(format!("{name}: unreadable: {e}"));
            return;
        }
    };
    let root = match value::parse_json(&text) {
        Ok(root) => root,
        Err(e) => {
            errors.push(format!("{name}: invalid JSON: {e}"));
            return;
        }
    };
    match root.get("schema").and_then(|v| v.as_integer()) {
        Some(1) => {}
        Some(other) => errors.push(format!("{name}: unknown schema {other} (expected 1)")),
        None => errors.push(format!("{name}: missing integer `schema`")),
    }
    match root.get("bench").and_then(|v| v.as_str()) {
        Some(bench) if !bench.is_empty() => {}
        _ => errors.push(format!("{name}: missing or empty `bench` string")),
    }
    match root.get("entries").and_then(|v| v.as_array()) {
        Some(entries) if !entries.is_empty() => {
            for (i, entry) in entries.iter().enumerate() {
                lint_entry(entry, errors, &format!("{name} entries[{i}]"));
            }
        }
        Some(_) => errors.push(format!("{name}: `entries` is empty")),
        None => errors.push(format!("{name}: missing `entries` array")),
    }
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| {
            eprintln!("cannot read {dir}: {e}");
            std::process::exit(2);
        })
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("bench_lint: no BENCH_*.json files found in {dir}");
        std::process::exit(1);
    }

    let mut errors = Vec::new();
    for path in &paths {
        lint_file(path, &mut errors);
    }
    if errors.is_empty() {
        println!("bench_lint: {} trajectory files ok", paths.len());
    } else {
        for error in &errors {
            eprintln!("bench_lint: {error}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_date_validation() {
        assert!(is_iso_date("2026-08-08"));
        assert!(!is_iso_date("2026-8-8"));
        assert!(!is_iso_date("08-08-2026"));
        assert!(!is_iso_date("2026-08-08T00:00"));
    }

    #[test]
    fn entry_lint_catches_each_violation() {
        let mut good = ConfigValue::table();
        good.insert("label", ConfigValue::Str("seed".to_string()));
        good.insert("mode", ConfigValue::Str("full".to_string()));
        good.insert("date", ConfigValue::Str("2026-08-08".to_string()));
        good.insert("identity_gate", ConfigValue::Str("ok".to_string()));
        let mut errors = Vec::new();
        lint_entry(&good, &mut errors, "t");
        assert!(errors.is_empty(), "{errors:?}");

        let mut bad = good.clone();
        bad.remove("date");
        bad.remove("identity_gate");
        let mut errors = Vec::new();
        lint_entry(&bad, &mut errors, "t");
        assert_eq!(errors.len(), 2, "{errors:?}");
    }
}
