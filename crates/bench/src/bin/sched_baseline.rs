//! Scheduling hot-path perf snapshot: measures the incremental HAP solver
//! against the retained naive reference, verifies solver consistency, and
//! appends the result to a `BENCH_sched.json` trajectory file.
//!
//! ```text
//! sched_baseline [--quick] [--label <label>] [--output <path>]
//! ```
//!
//! * `--quick` — short measurement budget (CI); default is a longer run
//!   for committed trajectory points.
//! * `--label` — entry label (default `local`).
//! * `--output` — trajectory file to append to (default `BENCH_sched.json`
//!   in the current directory).  The file holds
//!   `{"schema": 1, "bench": "micro_sched", "entries": [...]}`; an
//!   existing file is parsed and extended so the perf trajectory grows one
//!   entry per recorded run.
//!
//! The process exits non-zero when the consistency suite fails — the
//! incremental solver must be bit-identical to the reference, and the
//! heuristic must never beat the exact solver — so CI can gate on it.

use nasaic_bench::sched_instances::{realistic_problem, tiny_problem, w1_problem};
use nasaic_core::scenario::value::{self, ConfigValue};
use nasaic_sched::schedule::simulate;
use nasaic_sched::{
    solve_exact, solve_exact_unseeded, solve_heuristic, solve_heuristic_reference, Assignment,
    HapProblem, Simulator,
};
use std::time::{Duration, Instant};

struct Args {
    quick: bool,
    label: String,
    output: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        label: "local".to_string(),
        output: "BENCH_sched.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--label" => args.label = it.next().expect("--label needs a value"),
            "--output" => args.output = it.next().expect("--output needs a value"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Mean nanoseconds per iteration of `routine` over a time budget
/// (small warm-up, then timed batches).
fn measure<T>(budget: Duration, mut routine: impl FnMut() -> T) -> f64 {
    let warmup = budget / 8;
    let start = Instant::now();
    let mut warmup_iters: u64 = 0;
    while start.elapsed() < warmup {
        std::hint::black_box(routine());
        warmup_iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
    let batch = ((0.02 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 16);
    let mut total = Duration::ZERO;
    let mut iterations: u64 = 0;
    while total < budget {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        total += t.elapsed();
        iterations += batch;
    }
    total.as_secs_f64() * 1e9 / iterations as f64
}

/// The consistency suite the CI step gates on: incremental == reference on
/// every benchmark instance across constraints, and the heuristic never
/// beats the exact solver.  Returns the failures (empty = pass).
fn consistency_failures() -> Vec<String> {
    let mut failures = Vec::new();
    let instances: Vec<(&str, HapProblem)> = vec![
        ("w1", w1_problem()),
        ("realistic", realistic_problem()),
        ("tiny", tiny_problem()),
    ];
    for (name, base) in &instances {
        for factor in [0.5, 1.0, 4.0, 1e4] {
            let problem = HapProblem::new(base.costs.clone(), base.latency_constraint * factor);
            let incremental = solve_heuristic(&problem);
            let reference = solve_heuristic_reference(&problem);
            if incremental != reference {
                failures.push(format!(
                    "{name} x{factor}: incremental solver diverged from reference"
                ));
            }
        }
    }
    for (name, problem) in &instances[1..] {
        // The unseeded branch and bound never sees the heuristic's
        // solution, so this optimality check is independent.
        if let Some(exact) = solve_exact_unseeded(problem) {
            let heuristic = solve_heuristic(problem);
            if exact.feasible && heuristic.feasible && heuristic.energy_nj + 1e-6 < exact.energy_nj
            {
                failures.push(format!("{name}: heuristic beat the exact solver"));
            }
            if exact.feasible && exact.latency_cycles > problem.latency_constraint {
                failures.push(format!("{name}: exact solution violates the constraint"));
            }
        }
    }
    failures
}

fn main() {
    let args = parse_args();
    let budget = if args.quick {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(1500)
    };

    println!("== consistency suite ==");
    let failures = consistency_failures();
    if failures.is_empty() {
        println!("ok: incremental == reference, heuristic never beats exact");
    } else {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }

    println!("== measurements (budget {:?} per item) ==", budget);
    let w1 = w1_problem();
    let reference_ns = measure(budget, || solve_heuristic_reference(&w1));
    let incremental_ns = measure(budget, || solve_heuristic(&w1));
    let speedup = reference_ns / incremental_ns;

    let assignment = Assignment::uniform(&w1.costs, 0);
    let simulate_ns = measure(budget / 2, || simulate(&w1, &assignment));
    let mut sim = Simulator::new(&w1);
    let simulator_makespan_ns = measure(budget / 2, || sim.makespan(&assignment));

    let realistic = realistic_problem();
    let exact_realistic_ns = measure(budget, || solve_exact(&realistic));

    println!("heuristic w1: reference {reference_ns:.0} ns, incremental {incremental_ns:.0} ns, speedup {speedup:.2}x");
    println!(
        "simulate w1: naive {simulate_ns:.0} ns, reused scratch {simulator_makespan_ns:.0} ns"
    );
    println!("exact (18 layers, bounded B&B): {exact_realistic_ns:.0} ns");

    let mut entry = ConfigValue::table();
    entry.insert("label", ConfigValue::Str(args.label.clone()));
    entry.insert(
        "mode",
        ConfigValue::Str(if args.quick { "quick" } else { "full" }.to_string()),
    );
    entry.insert("date", ConfigValue::Str(nasaic_bench::today_utc()));
    entry.insert("instance", ConfigValue::Str("w1-39-layers".to_string()));
    entry.insert(
        "heuristic_reference_ns",
        ConfigValue::Float(reference_ns.round()),
    );
    entry.insert(
        "heuristic_incremental_ns",
        ConfigValue::Float(incremental_ns.round()),
    );
    entry.insert(
        "speedup",
        ConfigValue::Float((speedup * 100.0).round() / 100.0),
    );
    entry.insert("simulate_ns", ConfigValue::Float(simulate_ns.round()));
    entry.insert(
        "simulator_makespan_ns",
        ConfigValue::Float(simulator_makespan_ns.round()),
    );
    entry.insert(
        "exact_realistic_ns",
        ConfigValue::Float(exact_realistic_ns.round()),
    );
    entry.insert("consistency", ConfigValue::Str("ok".to_string()));

    let mut root = match std::fs::read_to_string(&args.output) {
        Ok(existing) => value::parse_json(&existing).unwrap_or_else(|e| {
            eprintln!("cannot parse existing {}: {e}", args.output);
            std::process::exit(1);
        }),
        Err(_) => {
            let mut fresh = ConfigValue::table();
            fresh.insert("schema", ConfigValue::Integer(1));
            fresh.insert("bench", ConfigValue::Str("micro_sched".to_string()));
            fresh.insert("entries", ConfigValue::Array(Vec::new()));
            fresh
        }
    };
    let mut entries = root
        .get("entries")
        .and_then(|e| e.as_array())
        .map(<[ConfigValue]>::to_vec)
        .unwrap_or_default();
    entries.push(entry);
    root.insert("entries", ConfigValue::Array(entries));
    std::fs::write(&args.output, value::to_json(&root) + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.output);
        std::process::exit(1);
    });
    println!("wrote {}", args.output);
}
