//! Telemetry overhead snapshot: what metrics collection costs, and the
//! proof that it costs nothing *semantically* —
//!
//! * identity gate: seeded w1/w2/w3 runs must produce bit-identical
//!   outcomes with telemetry enabled (registry + `MetricsObserver`) and
//!   disabled;
//! * overhead: interleaved enabled/disabled repetitions of the full w1
//!   run; the min-wall overhead of the enabled runs must stay under the
//!   2% gate.
//!
//! ```text
//! telemetry_baseline [--quick] [--check] [--label <label>] [--output <path>]
//! ```
//!
//! * `--quick` — short budget (CI); default is the full budget used for
//!   committed trajectory points.
//! * `--check` — run the identity gate only and skip the timing write
//!   (the gate is deterministic; CI runners are too noisy for the timing
//!   numbers to be meaningful).
//! * `--label` — entry label (default `local`).
//! * `--output` — trajectory file to append to (default
//!   `BENCH_telemetry.json`), holding
//!   `{"schema": 1, "bench": "telemetry", "entries": [...]}`.
//!
//! The process exits non-zero when the identity gate fails, or (in full
//! mode) when the measured overhead exceeds the gate.

use nasaic_core::prelude::*;
use nasaic_core::scenario::value::{self, ConfigValue};
use std::time::Instant;

/// Wall-time overhead the enabled runs must stay under, as a fraction.
const OVERHEAD_GATE: f64 = 0.02;

struct Args {
    quick: bool,
    check: bool,
    label: String,
    output: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        check: false,
        label: "local".to_string(),
        output: "BENCH_telemetry.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--label" => args.label = it.next().expect("--label needs a value"),
            "--output" => args.output = it.next().expect("--output needs a value"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The scenario the overhead measurement runs: W1 at a fixed seed with a
/// fixed mid-sized budget (`--quick` shrinks it for CI).
fn snapshot_scenario(quick: bool) -> Scenario {
    let mut scenario = registry::get("w1").expect("w1 is built in");
    scenario.seed = 2020;
    if quick {
        scenario.search.episodes = 6;
        scenario.search.hardware_trials = 3;
        scenario.search.bound_samples = 5;
    } else {
        scenario.search.episodes = 80;
        scenario.search.hardware_trials = 5;
        scenario.search.bound_samples = 20;
    }
    scenario
}

/// One run of the scenario on a fresh engine, through the same code path
/// either way (the `MetricsObserver` early-returns while disabled); only
/// the telemetry flag differs between the compared runs.
fn run_once(scenario: &Scenario, telemetry: bool) -> RunReport {
    nasaic_telemetry::set_enabled(telemetry);
    if telemetry {
        nasaic_telemetry::global().reset();
    }
    let observer = MetricsObserver::new();
    let engine = scenario.engine();
    let report = scenario.run_report_checkpointed(
        scenario.search.algorithm,
        &engine,
        &observer,
        None,
        &NullCheckpointSink,
    );
    nasaic_telemetry::set_enabled(false);
    report
}

/// Strip the only field that legitimately differs between repetitions.
fn outcome_only(report: &RunReport) -> ConfigValue {
    let mut stripped = report.to_value();
    stripped.remove("wall_ms");
    stripped
}

/// The identity gate: for every builtin scenario at a shrunk seeded
/// budget, the outcome must be bit-identical with telemetry on and off.
/// Returns the failures (empty = pass).
fn identity_failures() -> Vec<String> {
    let mut failures = Vec::new();
    for name in registry::names() {
        let mut scenario = registry::get(name).expect("built-in");
        scenario.seed = 11;
        scenario.search.episodes = 3;
        scenario.search.hardware_trials = 2;
        scenario.search.bound_samples = 3;
        let disabled = outcome_only(&run_once(&scenario, false));
        let enabled = outcome_only(&run_once(&scenario, true));
        if disabled != enabled {
            failures.push(format!("telemetry changed the `{name}` search outcome"));
        }
    }
    failures
}

fn main() {
    let args = parse_args();

    println!("== telemetry identity gate ==");
    let failures = identity_failures();
    if failures.is_empty() {
        println!(
            "ok: every builtin scenario's outcome is bit-identical with telemetry \
             enabled and disabled"
        );
    } else {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    if args.check {
        return;
    }

    let scenario = snapshot_scenario(args.quick);
    println!(
        "== overhead measurement (w1, seed {}, {} episodes x (1 + {}) designs) ==",
        scenario.seed, scenario.search.episodes, scenario.search.hardware_trials
    );

    // Interleave enabled/disabled repetitions so thermal and cache drift
    // hits both sides evenly; the min of each side is the honest estimate
    // of its cost floor.  The full mode needs many reps: each run is only
    // tens of milliseconds, so the min converges slowly on shared runners.
    let reps = if args.quick { 3 } else { 20 };
    let mut disabled_ms = f64::INFINITY;
    let mut enabled_ms = f64::INFINITY;
    // Warm-up run so neither side pays first-touch costs.
    run_once(&scenario, false);
    for _ in 0..reps {
        let start = Instant::now();
        run_once(&scenario, false);
        disabled_ms = disabled_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        run_once(&scenario, true);
        enabled_ms = enabled_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let overhead = (enabled_ms - disabled_ms) / disabled_ms.max(f64::MIN_POSITIVE);
    println!(
        "disabled {disabled_ms:.1} ms, enabled {enabled_ms:.1} ms (min of {reps}): \
         overhead {:.2}%",
        overhead * 100.0
    );
    if !args.quick && overhead > OVERHEAD_GATE {
        eprintln!(
            "FAIL: telemetry overhead {:.2}% exceeds the {:.0}% gate",
            overhead * 100.0,
            OVERHEAD_GATE * 100.0
        );
        std::process::exit(1);
    }

    let mut entry = ConfigValue::table();
    entry.insert("label", ConfigValue::Str(args.label.clone()));
    entry.insert(
        "mode",
        ConfigValue::Str(if args.quick { "quick" } else { "full" }.to_string()),
    );
    entry.insert("date", ConfigValue::Str(nasaic_bench::today_utc()));
    entry.insert("scenario", ConfigValue::Str(scenario.name.clone()));
    entry.insert("seed", ConfigValue::Integer(scenario.seed as i64));
    entry.insert(
        "episodes",
        ConfigValue::Integer(scenario.search.episodes as i64),
    );
    entry.insert(
        "hardware_trials",
        ConfigValue::Integer(scenario.search.hardware_trials as i64),
    );
    entry.insert("reps", ConfigValue::Integer(reps as i64));
    entry.insert(
        "disabled_ms",
        ConfigValue::Float((disabled_ms * 1e1).round() / 1e1),
    );
    entry.insert(
        "enabled_ms",
        ConfigValue::Float((enabled_ms * 1e1).round() / 1e1),
    );
    entry.insert(
        "overhead_pct",
        ConfigValue::Float((overhead * 1e4).round() / 1e2),
    );
    entry.insert(
        "overhead_gate_pct",
        ConfigValue::Float(OVERHEAD_GATE * 100.0),
    );
    entry.insert("identity_gate", ConfigValue::Str("ok".to_string()));

    let mut root = match std::fs::read_to_string(&args.output) {
        Ok(existing) => value::parse_json(&existing).unwrap_or_else(|e| {
            eprintln!("cannot parse existing {}: {e}", args.output);
            std::process::exit(1);
        }),
        Err(_) => {
            let mut fresh = ConfigValue::table();
            fresh.insert("schema", ConfigValue::Integer(1));
            fresh.insert("bench", ConfigValue::Str("telemetry".to_string()));
            fresh.insert("entries", ConfigValue::Array(Vec::new()));
            fresh
        }
    };
    let mut entries = root
        .get("entries")
        .and_then(|e| e.as_array())
        .map(<[ConfigValue]>::to_vec)
        .unwrap_or_default();
    entries.push(entry);
    root.insert("entries", ConfigValue::Array(entries));
    std::fs::write(&args.output, value::to_json(&root) + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.output);
        std::process::exit(1);
    });
    println!("wrote {}", args.output);
}
