//! Checkpoint/resume and sharded-execution perf snapshot: runs the NASAIC
//! search on the W1 scenario (fixed seed, fixed budget) and measures what
//! externalized search state costs and buys —
//!
//! * checkpoint overhead: wall-time delta per snapshot between a plain
//!   run and one writing a checkpoint file at every snapshot point;
//! * resume payoff: wall-time of resuming from the mid-run checkpoint
//!   versus re-running from scratch;
//! * shard fan-out: the slowest of 4 monte-carlo shards plus the merge,
//!   versus the single-process run.
//!
//! ```text
//! resume_baseline [--quick] [--check] [--label <label>] [--output <path>]
//! ```
//!
//! * `--quick` — short budget (CI); default is the full budget used for
//!   committed trajectory points.
//! * `--check` — run the identity gates only and skip the timing write
//!   (the gates are deterministic; CI runners are too noisy for the
//!   timing numbers to be meaningful).
//! * `--label` — entry label (default `local`).
//! * `--output` — trajectory file to append to (default
//!   `BENCH_resume.json`), holding
//!   `{"schema": 1, "bench": "resume", "entries": [...]}`.
//!
//! The process exits non-zero when an identity gate fails: a resumed run
//! must be bit-identical to the uninterrupted one, and a merged N-shard
//! outcome must be bit-identical to the single-process run, both through
//! their JSON round trips.

use nasaic_core::prelude::*;
use nasaic_core::scenario::value::{self, ConfigValue};
use std::time::Instant;

struct Args {
    quick: bool,
    check: bool,
    label: String,
    output: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        check: false,
        label: "local".to_string(),
        output: "BENCH_resume.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--label" => args.label = it.next().expect("--label needs a value"),
            "--output" => args.output = it.next().expect("--output needs a value"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The scenario the snapshot measures: W1 at a fixed seed with a fixed
/// mid-sized budget (`--quick` shrinks it for CI).
fn snapshot_scenario(quick: bool) -> Scenario {
    let mut scenario = registry::get("w1").expect("w1 is built in");
    scenario.seed = 2020;
    if quick {
        scenario.search.episodes = 6;
        scenario.search.hardware_trials = 3;
        scenario.search.bound_samples = 5;
    } else {
        scenario.search.episodes = 60;
        scenario.search.hardware_trials = 5;
        scenario.search.bound_samples = 20;
    }
    scenario
}

/// The identity gates on a shrunk W1: resuming any run from its mid-run
/// checkpoint (through JSON) must be bit-identical to the uninterrupted
/// run, and the merged 4-shard outcome (through JSON) must be
/// bit-identical to the single-process run.  Returns the failures
/// (empty = pass).
fn identity_failures() -> Vec<String> {
    let mut scenario = registry::get("w1").expect("w1 is built in");
    scenario.seed = 11;
    scenario.search.episodes = 3;
    scenario.search.hardware_trials = 2;
    scenario.search.bound_samples = 3;
    let workload = scenario.workload();
    let mut failures = Vec::new();

    for algorithm in Algorithm::all() {
        scenario.search.algorithm = algorithm;
        let baseline = scenario.run_algorithm_with_engine(algorithm, &scenario.engine());

        // Resume gate: checkpoint at every snapshot point, resume from
        // the middle one through its serialized form.
        let sink = RecordingCheckpointSink::every(1);
        let checkpointed = scenario.run_algorithm_checkpointed(
            algorithm,
            &scenario.engine(),
            &NullObserver,
            None,
            &sink,
        );
        if checkpointed != baseline {
            failures.push(format!(
                "{algorithm}: taking checkpoints changed the outcome"
            ));
            continue;
        }
        let checkpoints = sink.checkpoints();
        let Some(checkpoint) = checkpoints.get(checkpoints.len() / 2) else {
            failures.push(format!("{algorithm}: no checkpoints were offered"));
            continue;
        };
        let parsed = match SearchCheckpoint::parse_json(&checkpoint.to_json()) {
            Ok(parsed) => parsed,
            Err(e) => {
                failures.push(format!(
                    "{algorithm}: checkpoint JSON round trip failed ({e})"
                ));
                continue;
            }
        };
        let resumed = scenario.run_algorithm_checkpointed(
            algorithm,
            &scenario.engine(),
            &NullObserver,
            Some(&parsed),
            &NullCheckpointSink,
        );
        if resumed != baseline {
            failures.push(format!(
                "{algorithm}: resume from progress {} diverged from the uninterrupted run",
                parsed.progress
            ));
        }

        // Shard gate: 4 workers, each with a fresh engine, merged back.
        let shards = 4;
        let plan = scenario.algorithm_shard_plan(algorithm, &scenario.engine(), shards);
        let mut partials = Vec::with_capacity(shards);
        let mut round_trip_ok = true;
        for shard_index in 0..shards {
            let partial = scenario.run_algorithm_shard(
                algorithm,
                &scenario.engine(),
                &NullObserver,
                &plan,
                shard_index,
            );
            match ShardPartial::parse_json(&partial.to_json(), &workload) {
                Ok(partial) => partials.push(partial),
                Err(e) => {
                    failures.push(format!(
                        "{algorithm}: shard {shard_index} partial JSON round trip failed ({e})"
                    ));
                    round_trip_ok = false;
                    break;
                }
            }
        }
        if !round_trip_ok {
            continue;
        }
        let merged =
            scenario.merge_algorithm_shards(algorithm, &scenario.engine(), &plan, partials);
        if merged != baseline {
            failures.push(format!(
                "{algorithm}: merged {shards}-shard outcome diverged from the single-process run"
            ));
        }
    }
    failures
}

fn main() {
    let args = parse_args();

    println!("== resume/shard identity gates ==");
    let failures = identity_failures();
    if failures.is_empty() {
        println!(
            "ok: mid-run resume and 4-shard merge are bit-identical to the \
             uninterrupted single-process run for every algorithm"
        );
    } else {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    if args.check {
        return;
    }

    let scenario = snapshot_scenario(args.quick);
    println!(
        "== checkpoint/resume measurement (w1, seed {}, {} episodes x (1 + {}) designs) ==",
        scenario.seed, scenario.search.episodes, scenario.search.hardware_trials
    );

    // Plain run: the baseline wall-time and outcome everything else is
    // measured against.
    let start = Instant::now();
    let baseline = scenario.run_algorithm_with_engine(Algorithm::Nasaic, &scenario.engine());
    let plain_ms = start.elapsed().as_secs_f64() * 1e3;

    // Checkpointing run: a checkpoint file rewritten at every snapshot
    // point — the worst-case cadence.
    let dir = std::env::temp_dir().join("nasaic-resume-baseline");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("checkpoint.json");
    let file_sink = FileCheckpointSink::new(&path, 1);
    let start = Instant::now();
    let outcome = scenario.run_algorithm_checkpointed(
        Algorithm::Nasaic,
        &scenario.engine(),
        &NullObserver,
        None,
        &file_sink,
    );
    let checkpointed_ms = start.elapsed().as_secs_f64() * 1e3;
    if let Some(e) = file_sink.take_error() {
        eprintln!("FAIL: checkpoint file sink errored: {e}");
        std::process::exit(1);
    }
    assert_eq!(outcome, baseline, "checkpointing changed the outcome");
    // Recapture in memory for the resume measurement (same snapshot
    // points, no file I/O in the way of the resume pick).
    let recorder = RecordingCheckpointSink::every(1);
    scenario.run_algorithm_checkpointed(
        Algorithm::Nasaic,
        &scenario.engine(),
        &NullObserver,
        None,
        &recorder,
    );
    let checkpoints = recorder.checkpoints();
    let count = checkpoints.len();
    let overhead_us = ((checkpointed_ms - plain_ms).max(0.0) / count.max(1) as f64) * 1e3;
    println!(
        "plain {plain_ms:.0} ms; {count} file checkpoints {checkpointed_ms:.0} ms \
         ({overhead_us:.0} us/checkpoint)"
    );

    // Resume payoff: restart from the mid-run checkpoint and finish.
    let midpoint = &checkpoints[count / 2];
    let parsed =
        SearchCheckpoint::parse_json(&midpoint.to_json()).expect("checkpoint JSON round trip");
    let start = Instant::now();
    let resumed = scenario.run_algorithm_checkpointed(
        Algorithm::Nasaic,
        &scenario.engine(),
        &NullObserver,
        Some(&parsed),
        &NullCheckpointSink,
    );
    let resume_ms = start.elapsed().as_secs_f64() * 1e3;
    if resumed != baseline {
        eprintln!("FAIL: resume from the mid-run checkpoint diverged on the snapshot budget");
        std::process::exit(1);
    }
    println!(
        "resume from progress {}/{}: {resume_ms:.0} ms vs {plain_ms:.0} ms from scratch \
         ({:.0}% saved)",
        parsed.progress,
        count,
        (1.0 - resume_ms / plain_ms.max(f64::MIN_POSITIVE)) * 100.0
    );

    // Shard fan-out: monte-carlo (a strided plan that actually distributes
    // trials) split 4 ways; each shard gets a fresh engine, as separate
    // worker processes would.  Sequential walls stand in for 4 workers:
    // the parallel wall is the slowest shard plus the merge.
    let shards = 4;
    let workload = scenario.workload();
    let start = Instant::now();
    let single = scenario.run_algorithm_with_engine(Algorithm::MonteCarlo, &scenario.engine());
    let single_ms = start.elapsed().as_secs_f64() * 1e3;
    let plan = scenario.algorithm_shard_plan(Algorithm::MonteCarlo, &scenario.engine(), shards);
    let mut partials = Vec::with_capacity(shards);
    let mut slowest_shard_ms = 0.0f64;
    for shard_index in 0..shards {
        let start = Instant::now();
        let partial = scenario.run_algorithm_shard(
            Algorithm::MonteCarlo,
            &scenario.engine(),
            &NullObserver,
            &plan,
            shard_index,
        );
        slowest_shard_ms = slowest_shard_ms.max(start.elapsed().as_secs_f64() * 1e3);
        partials.push(
            ShardPartial::parse_json(&partial.to_json(), &workload)
                .expect("shard partial JSON round trip"),
        );
    }
    let start = Instant::now();
    let merged =
        scenario.merge_algorithm_shards(Algorithm::MonteCarlo, &scenario.engine(), &plan, partials);
    let merge_ms = start.elapsed().as_secs_f64() * 1e3;
    if merged != single {
        eprintln!("FAIL: merged {shards}-shard outcome diverged on the snapshot budget");
        std::process::exit(1);
    }
    let shard_wall_ms = slowest_shard_ms + merge_ms;
    println!(
        "monte-carlo {shards} shards: slowest shard {slowest_shard_ms:.0} ms + merge \
         {merge_ms:.1} ms = {shard_wall_ms:.0} ms vs single-process {single_ms:.0} ms \
         ({:.2}x)",
        single_ms / shard_wall_ms.max(f64::MIN_POSITIVE)
    );

    let mut entry = ConfigValue::table();
    entry.insert("label", ConfigValue::Str(args.label.clone()));
    entry.insert(
        "mode",
        ConfigValue::Str(if args.quick { "quick" } else { "full" }.to_string()),
    );
    entry.insert("date", ConfigValue::Str(nasaic_bench::today_utc()));
    entry.insert("scenario", ConfigValue::Str(scenario.name.clone()));
    entry.insert("seed", ConfigValue::Integer(scenario.seed as i64));
    entry.insert(
        "episodes",
        ConfigValue::Integer(scenario.search.episodes as i64),
    );
    entry.insert(
        "hardware_trials",
        ConfigValue::Integer(scenario.search.hardware_trials as i64),
    );
    entry.insert("plain_wall_ms", ConfigValue::Float(plain_ms.round()));
    entry.insert(
        "checkpointed_wall_ms",
        ConfigValue::Float(checkpointed_ms.round()),
    );
    entry.insert("checkpoints", ConfigValue::Integer(count as i64));
    entry.insert(
        "checkpoint_overhead_us",
        ConfigValue::Float(overhead_us.round()),
    );
    entry.insert(
        "resume_progress",
        ConfigValue::Integer(parsed.progress as i64),
    );
    entry.insert("resume_wall_ms", ConfigValue::Float(resume_ms.round()));
    entry.insert("shards", ConfigValue::Integer(shards as i64));
    entry.insert(
        "single_process_wall_ms",
        ConfigValue::Float(single_ms.round()),
    );
    entry.insert(
        "slowest_shard_wall_ms",
        ConfigValue::Float(slowest_shard_ms.round()),
    );
    entry.insert(
        "merge_wall_ms",
        ConfigValue::Float((merge_ms * 1e1).round() / 1e1),
    );
    entry.insert(
        "shard_speedup",
        ConfigValue::Float(
            ((single_ms / shard_wall_ms.max(f64::MIN_POSITIVE)) * 1e2).round() / 1e2,
        ),
    );
    entry.insert("identity_gate", ConfigValue::Str("ok".to_string()));

    let mut root = match std::fs::read_to_string(&args.output) {
        Ok(existing) => value::parse_json(&existing).unwrap_or_else(|e| {
            eprintln!("cannot parse existing {}: {e}", args.output);
            std::process::exit(1);
        }),
        Err(_) => {
            let mut fresh = ConfigValue::table();
            fresh.insert("schema", ConfigValue::Integer(1));
            fresh.insert("bench", ConfigValue::Str("resume".to_string()));
            fresh.insert("entries", ConfigValue::Array(Vec::new()));
            fresh
        }
    };
    let mut entries = root
        .get("entries")
        .and_then(|e| e.as_array())
        .map(<[ConfigValue]>::to_vec)
        .unwrap_or_default();
    entries.push(entry);
    root.insert("entries", ConfigValue::Array(entries));
    std::fs::write(&args.output, value::to_json(&root) + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.output);
        std::process::exit(1);
    });
    println!("wrote {}", args.output);
}
