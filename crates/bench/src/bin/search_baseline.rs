//! Whole-search perf snapshot: runs the full NASAIC search end to end on
//! the W1 scenario (fixed seed, fixed budget), verifies that the
//! `SearchAlgorithm` trait dispatch is bit-identical to direct driver
//! construction, and appends a wall-time / cache-hit trajectory point to
//! `BENCH_search.json`.
//!
//! ```text
//! search_baseline [--quick] [--label <label>] [--output <path>]
//! search_baseline --validate-trace <path>
//! ```
//!
//! * `--quick` — short budget (CI); default is the full budget used for
//!   committed trajectory points.
//! * `--label` — entry label (default `local`).
//! * `--output` — trajectory file to append to (default
//!   `BENCH_search.json` in the current directory), holding
//!   `{"schema": 1, "bench": "search_e2e", "entries": [...]}`.
//! * `--validate-trace <path>` — instead of benchmarking, check that the
//!   file is valid JSON lines whose every line carries an `event` tag and
//!   that the stream ends with `search_finished` (the CI smoke for
//!   `nasaic run --trace`); exits non-zero on any violation.
//!
//! The process exits non-zero when the dispatch-consistency gate fails —
//! the factory/trait path must match direct construction bit for bit — so
//! CI can gate on it.

use nasaic_core::prelude::*;
use nasaic_core::scenario::value::{self, ConfigValue};
use std::time::Instant;

struct Args {
    quick: bool,
    label: String,
    output: String,
    validate_trace: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        label: "local".to_string(),
        output: "BENCH_search.json".to_string(),
        validate_trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--label" => args.label = it.next().expect("--label needs a value"),
            "--output" => args.output = it.next().expect("--output needs a value"),
            "--validate-trace" => {
                args.validate_trace = Some(it.next().expect("--validate-trace needs a value"))
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Validate a `nasaic run --trace` file: JSON lines, every line tagged
/// with `event`, final event `search_finished`.  Returns the failures
/// (empty = pass).
fn trace_failures(path: &str) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return vec![format!("cannot read {path}: {e}")],
    };
    let mut failures = Vec::new();
    let mut last_kind = None;
    let mut lines = 0usize;
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            failures.push(format!("line {}: empty line in trace", index + 1));
            continue;
        }
        lines += 1;
        match value::parse_json(line) {
            Err(e) => failures.push(format!("line {}: not valid JSON ({e})", index + 1)),
            Ok(event) => match event.get("event").and_then(|v| v.as_str()) {
                None => failures.push(format!("line {}: missing `event` tag", index + 1)),
                Some(kind) => last_kind = Some(kind.to_string()),
            },
        }
    }
    if lines == 0 {
        failures.push("trace is empty".to_string());
    }
    if last_kind.as_deref() != Some("search_finished") && failures.is_empty() {
        failures.push(format!(
            "trace does not end with `search_finished` (last event: {last_kind:?})"
        ));
    }
    failures
}

/// The scenario the snapshot measures: W1 at a fixed seed with a fixed
/// mid-sized budget (`--quick` shrinks it for CI).
fn snapshot_scenario(quick: bool) -> Scenario {
    let mut scenario = registry::get("w1").expect("w1 is built in");
    scenario.seed = 2020;
    if quick {
        scenario.search.episodes = 6;
        scenario.search.hardware_trials = 3;
        scenario.search.bound_samples = 5;
    } else {
        scenario.search.episodes = 60;
        scenario.search.hardware_trials = 5;
        scenario.search.bound_samples = 20;
    }
    scenario
}

/// The dispatch gate: on a shrunk W1, the trait/factory path must be
/// bit-identical to direct driver construction for a seeded run of every
/// algorithm.  Returns the failures (empty = pass).
fn dispatch_failures() -> Vec<String> {
    let mut scenario = registry::get("w1").expect("w1 is built in");
    scenario.seed = 11;
    scenario.search.episodes = 3;
    scenario.search.hardware_trials = 2;
    scenario.search.bound_samples = 3;
    let workload = scenario.workload();
    let hardware = scenario.hardware_space();
    let mut failures = Vec::new();

    let through_trait = scenario.run_algorithm_with_engine(Algorithm::Nasaic, &scenario.engine());
    let direct = Nasaic::new(workload.clone(), scenario.specs, scenario.nasaic_config())
        .with_hardware_space(hardware.clone())
        .run_with_engine(&scenario.engine());
    if through_trait != direct {
        failures.push("nasaic: trait dispatch diverged from direct construction".to_string());
    }

    let through_trait =
        scenario.run_algorithm_with_engine(Algorithm::MonteCarlo, &scenario.engine());
    let direct = nasaic_core::baselines::MonteCarloSearch {
        runs: scenario.search.total_evaluations(),
        seed: scenario.seed,
    }
    .run_with_engine(&workload, &hardware, &scenario.engine());
    if through_trait != direct {
        failures.push("monte-carlo: trait dispatch diverged from direct construction".to_string());
    }

    // Determinism of the observed path: same seed, same event stream.
    let first = RecordingObserver::new();
    scenario.run_algorithm_observed(Algorithm::Nasaic, &scenario.engine(), &first);
    let second = RecordingObserver::new();
    scenario.run_algorithm_observed(Algorithm::Nasaic, &scenario.engine(), &second);
    if first.events() != second.events() {
        failures.push("nasaic: event stream is not deterministic for a seed".to_string());
    }
    failures
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.validate_trace {
        let failures = trace_failures(path);
        if failures.is_empty() {
            println!("ok: {path} is a valid search trace");
            return;
        }
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }

    println!("== dispatch gate ==");
    let failures = dispatch_failures();
    if failures.is_empty() {
        println!("ok: factory/trait dispatch is bit-identical to direct construction");
    } else {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }

    let scenario = snapshot_scenario(args.quick);
    println!(
        "== whole-search measurement (w1, seed {}, {} episodes x (1 + {}) designs) ==",
        scenario.seed, scenario.search.episodes, scenario.search.hardware_trials
    );
    let engine = scenario.engine();
    let recorder = RecordingObserver::new();
    let start = Instant::now();
    let report = scenario.run_report_observed(Algorithm::Nasaic, &engine, &recorder);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let events = recorder.events().len();
    println!(
        "wall {wall_ms:.0} ms, {} explored, {} compliant, cache hit rate {:.1}% \
         (accuracy {:.1}%, hardware {:.1}%), {events} events",
        report.explored,
        report.spec_compliant,
        report.cache_hit_rate * 100.0,
        report.accuracy_hit_rate * 100.0,
        report.hardware_hit_rate * 100.0
    );

    let mut entry = ConfigValue::table();
    entry.insert("label", ConfigValue::Str(args.label.clone()));
    entry.insert(
        "mode",
        ConfigValue::Str(if args.quick { "quick" } else { "full" }.to_string()),
    );
    entry.insert("date", ConfigValue::Str(nasaic_bench::today_utc()));
    entry.insert("scenario", ConfigValue::Str(scenario.name.clone()));
    entry.insert("algorithm", ConfigValue::Str("nasaic".to_string()));
    entry.insert("seed", ConfigValue::Integer(scenario.seed as i64));
    entry.insert(
        "episodes",
        ConfigValue::Integer(scenario.search.episodes as i64),
    );
    entry.insert(
        "hardware_trials",
        ConfigValue::Integer(scenario.search.hardware_trials as i64),
    );
    entry.insert("wall_ms", ConfigValue::Float(wall_ms.round()));
    entry.insert("explored", ConfigValue::Integer(report.explored as i64));
    entry.insert(
        "spec_compliant",
        ConfigValue::Integer(report.spec_compliant as i64),
    );
    entry.insert(
        "cache_hit_rate",
        ConfigValue::Float((report.cache_hit_rate * 1e4).round() / 1e4),
    );
    entry.insert(
        "accuracy_hit_rate",
        ConfigValue::Float((report.accuracy_hit_rate * 1e4).round() / 1e4),
    );
    entry.insert(
        "hardware_hit_rate",
        ConfigValue::Float((report.hardware_hit_rate * 1e4).round() / 1e4),
    );
    entry.insert(
        "accuracy_entries",
        ConfigValue::Integer(report.accuracy_entries as i64),
    );
    entry.insert(
        "hardware_entries",
        ConfigValue::Integer(report.hardware_entries as i64),
    );
    match &report.best {
        Some(best) => entry.insert(
            "best_weighted_accuracy",
            ConfigValue::Float((best.weighted_accuracy * 1e6).round() / 1e6),
        ),
        None => entry.insert("best_weighted_accuracy", ConfigValue::Float(0.0)),
    }
    entry.insert("events", ConfigValue::Integer(events as i64));
    entry.insert("dispatch_gate", ConfigValue::Str("ok".to_string()));

    let mut root = match std::fs::read_to_string(&args.output) {
        Ok(existing) => value::parse_json(&existing).unwrap_or_else(|e| {
            eprintln!("cannot parse existing {}: {e}", args.output);
            std::process::exit(1);
        }),
        Err(_) => {
            let mut fresh = ConfigValue::table();
            fresh.insert("schema", ConfigValue::Integer(1));
            fresh.insert("bench", ConfigValue::Str("search_e2e".to_string()));
            fresh.insert("entries", ConfigValue::Array(Vec::new()));
            fresh
        }
    };
    let mut entries = root
        .get("entries")
        .and_then(|e| e.as_array())
        .map(<[ConfigValue]>::to_vec)
        .unwrap_or_default();
    entries.push(entry);
    root.insert("entries", ConfigValue::Array(entries));
    std::fs::write(&args.output, value::to_json(&root) + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.output);
        std::process::exit(1);
    });
    println!("wrote {}", args.output);
}
