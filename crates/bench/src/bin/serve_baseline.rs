//! `nasaic serve` perf snapshot: what the long-lived daemon's shared warm
//! engine buys over one-shot runs, and how job throughput scales with
//! concurrent clients —
//!
//! * warm payoff: wall-time of the first (cold) job on a fresh daemon
//!   versus repeat submissions of the same scenario against the
//!   now-warm shared engine;
//! * client fan-in: the same 8-job batch submitted by 1 sequential
//!   client versus 8 concurrent clients, as jobs/sec.
//!
//! ```text
//! serve_baseline [--quick] [--check] [--label <label>] [--output <path>]
//! ```
//!
//! * `--quick` — short budget (CI); default is the full budget used for
//!   committed trajectory points.
//! * `--check` — run the identity gate only and skip the timing write
//!   (the gate is deterministic; CI runners are too noisy for the timing
//!   numbers to be meaningful).
//! * `--label` — entry label (default `local`).
//! * `--output` — trajectory file to append to (default
//!   `BENCH_serve.json`), holding
//!   `{"schema": 1, "bench": "serve", "entries": [...]}`.
//!
//! The process exits non-zero when the identity gate fails: a job
//! submitted over the socket must produce the same search outcome as
//! `nasaic run` on the same scenario and seed, and a warm resubmission
//! must change wall time only, never the outcome.

use nasaic_core::prelude::*;
use nasaic_core::scenario::value::{self, ConfigValue};
use nasaic_serve::{Client, Daemon, DaemonHandle, ServeConfig};
use std::time::Instant;

struct Args {
    quick: bool,
    check: bool,
    label: String,
    output: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        check: false,
        label: "local".to_string(),
        output: "BENCH_serve.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--label" => args.label = it.next().expect("--label needs a value"),
            "--output" => args.output = it.next().expect("--output needs a value"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The scenario the snapshot measures: W1 at a fixed seed with a fixed
/// mid-sized budget (`--quick` shrinks it for CI).
fn snapshot_scenario(quick: bool) -> Scenario {
    let mut scenario = registry::get("w1").expect("w1 is built in");
    scenario.seed = 2020;
    if quick {
        scenario.search.episodes = 6;
        scenario.search.hardware_trials = 3;
        scenario.search.bound_samples = 5;
    } else {
        scenario.search.episodes = 40;
        scenario.search.hardware_trials = 5;
        scenario.search.bound_samples = 20;
    }
    scenario
}

/// Fields that legitimately differ between a daemon job and a direct run:
/// wall time always, cache statistics whenever the shared engine is warm.
const NONDETERMINISTIC_FIELDS: &[&str] = &[
    "wall_ms",
    "cache_hit_rate",
    "accuracy_hit_rate",
    "hardware_hit_rate",
    "accuracy_entries",
    "hardware_entries",
    "accuracy_evictions",
    "hardware_evictions",
    "accuracy_capacity",
    "hardware_capacity",
];

fn outcome_only(report: &ConfigValue) -> ConfigValue {
    let mut stripped = report.clone();
    for field in NONDETERMINISTIC_FIELDS {
        stripped.remove(field);
    }
    stripped
}

fn start_daemon(workers: usize) -> (DaemonHandle, String) {
    let handle = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// Submit one scenario over the socket (watching) and return its report.
fn submit(addr: &str, scenario: &Scenario) -> ConfigValue {
    let mut client = Client::connect(addr).expect("connect");
    let response = client
        .submit_watch(scenario.to_value(), |_| {})
        .expect("watched submit");
    assert_eq!(
        response.get("state").and_then(ConfigValue::as_str),
        Some("finished"),
        "job did not finish: {response:?}"
    );
    response.get("report").expect("report").clone()
}

fn shutdown(addr: &str, handle: DaemonHandle) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client
        .request(&nasaic_serve::Request::Shutdown)
        .expect("shutdown request");
    handle.join().expect("clean shutdown");
}

/// The identity gate on a shrunk W1: the socket round trip and a warm
/// resubmission must both match the direct in-process run bit for bit.
/// Returns the failures (empty = pass).
fn identity_failures() -> Vec<String> {
    let mut scenario = registry::get("w1").expect("w1 is built in");
    scenario.seed = 11;
    scenario.search.episodes = 3;
    scenario.search.hardware_trials = 2;
    scenario.search.bound_samples = 3;
    let mut failures = Vec::new();

    let direct = outcome_only(&scenario.run_report().to_value());
    let (handle, addr) = start_daemon(1);
    let over_socket = outcome_only(&submit(&addr, &scenario));
    if over_socket != direct {
        failures.push("socket round trip changed the search outcome".to_string());
    }
    let warm = outcome_only(&submit(&addr, &scenario));
    if warm != direct {
        failures.push("warm resubmission changed the search outcome".to_string());
    }
    shutdown(&addr, handle);
    failures
}

fn main() {
    let args = parse_args();

    println!("== serve identity gate ==");
    let failures = identity_failures();
    if failures.is_empty() {
        println!(
            "ok: the socket round trip and a warm resubmission are bit-identical \
             to the direct run"
        );
    } else {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    if args.check {
        return;
    }

    let scenario = snapshot_scenario(args.quick);
    println!(
        "== warm-engine measurement (w1, seed {}, {} episodes x (1 + {}) designs) ==",
        scenario.seed, scenario.search.episodes, scenario.search.hardware_trials
    );

    // Cold: the first job on a fresh daemon builds every value.  Warm:
    // repeat submissions of the same scenario are served from the shared
    // engine's caches.
    let warm_jobs = 4usize;
    let (handle, addr) = start_daemon(1);
    let start = Instant::now();
    let cold_report = submit(&addr, &scenario);
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    for _ in 0..warm_jobs {
        let warm_report = submit(&addr, &scenario);
        assert_eq!(
            outcome_only(&warm_report),
            outcome_only(&cold_report),
            "a warm job diverged from the cold one"
        );
    }
    let warm_ms = start.elapsed().as_secs_f64() * 1e3 / warm_jobs as f64;
    shutdown(&addr, handle);
    println!(
        "cold job {cold_ms:.0} ms; warm job {warm_ms:.1} ms averaged over {warm_jobs} \
         ({:.1}x)",
        cold_ms / warm_ms.max(f64::MIN_POSITIVE)
    );

    // Client fan-in: the same 8-job batch, 1 sequential client versus 8
    // concurrent clients against a daemon with 8 workers.  Each batch runs
    // on a fresh daemon so both start cold.
    let batch = 8usize;
    let seeds: Vec<u64> = (0..batch as u64).map(|i| 3000 + i).collect();
    let batch_scenarios: Vec<Scenario> = seeds
        .iter()
        .map(|&seed| {
            let mut s = snapshot_scenario(args.quick);
            s.seed = seed;
            s
        })
        .collect();

    let (handle, addr) = start_daemon(8);
    let start = Instant::now();
    for s in &batch_scenarios {
        submit(&addr, s);
    }
    let seq_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    shutdown(&addr, handle);

    let (handle, addr) = start_daemon(8);
    let start = Instant::now();
    let threads: Vec<_> = batch_scenarios
        .iter()
        .map(|s| {
            let addr = addr.clone();
            let s = s.clone();
            std::thread::spawn(move || submit(&addr, &s))
        })
        .collect();
    for thread in threads {
        thread.join().expect("client thread");
    }
    let conc_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    shutdown(&addr, handle);

    let seq_jobs_per_s = batch as f64 / (seq_wall_ms / 1e3).max(f64::MIN_POSITIVE);
    let conc_jobs_per_s = batch as f64 / (conc_wall_ms / 1e3).max(f64::MIN_POSITIVE);
    println!(
        "{batch} jobs: 1 client {seq_wall_ms:.0} ms ({seq_jobs_per_s:.2} jobs/s) vs \
         {batch} clients {conc_wall_ms:.0} ms ({conc_jobs_per_s:.2} jobs/s, {:.2}x)",
        seq_wall_ms / conc_wall_ms.max(f64::MIN_POSITIVE)
    );

    let mut entry = ConfigValue::table();
    entry.insert("label", ConfigValue::Str(args.label.clone()));
    entry.insert(
        "mode",
        ConfigValue::Str(if args.quick { "quick" } else { "full" }.to_string()),
    );
    entry.insert("date", ConfigValue::Str(nasaic_bench::today_utc()));
    entry.insert("scenario", ConfigValue::Str(scenario.name.clone()));
    entry.insert("seed", ConfigValue::Integer(scenario.seed as i64));
    entry.insert(
        "episodes",
        ConfigValue::Integer(scenario.search.episodes as i64),
    );
    entry.insert(
        "hardware_trials",
        ConfigValue::Integer(scenario.search.hardware_trials as i64),
    );
    entry.insert("cold_job_ms", ConfigValue::Float(cold_ms.round()));
    entry.insert(
        "warm_job_ms",
        ConfigValue::Float((warm_ms * 1e1).round() / 1e1),
    );
    entry.insert("warm_jobs", ConfigValue::Integer(warm_jobs as i64));
    entry.insert(
        "warm_speedup",
        ConfigValue::Float(((cold_ms / warm_ms.max(f64::MIN_POSITIVE)) * 1e1).round() / 1e1),
    );
    entry.insert("batch_jobs", ConfigValue::Integer(batch as i64));
    entry.insert("seq_wall_ms", ConfigValue::Float(seq_wall_ms.round()));
    entry.insert(
        "seq_jobs_per_s",
        ConfigValue::Float((seq_jobs_per_s * 1e2).round() / 1e2),
    );
    entry.insert("conc_clients", ConfigValue::Integer(batch as i64));
    entry.insert("conc_wall_ms", ConfigValue::Float(conc_wall_ms.round()));
    entry.insert(
        "conc_jobs_per_s",
        ConfigValue::Float((conc_jobs_per_s * 1e2).round() / 1e2),
    );
    entry.insert(
        "conc_speedup",
        ConfigValue::Float(
            ((seq_wall_ms / conc_wall_ms.max(f64::MIN_POSITIVE)) * 1e2).round() / 1e2,
        ),
    );
    entry.insert("identity_gate", ConfigValue::Str("ok".to_string()));

    let mut root = match std::fs::read_to_string(&args.output) {
        Ok(existing) => value::parse_json(&existing).unwrap_or_else(|e| {
            eprintln!("cannot parse existing {}: {e}", args.output);
            std::process::exit(1);
        }),
        Err(_) => {
            let mut fresh = ConfigValue::table();
            fresh.insert("schema", ConfigValue::Integer(1));
            fresh.insert("bench", ConfigValue::Str("serve".to_string()));
            fresh.insert("entries", ConfigValue::Array(Vec::new()));
            fresh
        }
    };
    let mut entries = root
        .get("entries")
        .and_then(|e| e.as_array())
        .map(<[ConfigValue]>::to_vec)
        .unwrap_or_default();
    entries.push(entry);
    root.insert("entries", ConfigValue::Array(entries));
    std::fs::write(&args.output, value::to_json(&root) + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.output);
        std::process::exit(1);
    });
    println!("wrote {}", args.output);
}
