//! Shared helpers for the NASAIC benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper and
//! prints it before running its Criterion measurements, so `cargo bench`
//! doubles as the experiment-reproduction entry point.  The regeneration
//! effort is controlled by the `NASAIC_BENCH_SCALE` environment variable:
//!
//! * `quick` (default) — seconds per artefact;
//! * `benchmark` — tens of seconds, the scale used for EXPERIMENTS.md;
//! * `paper` — the paper's full effort (500 episodes, 10,000 Monte-Carlo
//!   runs).

use nasaic_core::experiments::ExperimentScale;

/// Scale selected through the `NASAIC_BENCH_SCALE` environment variable.
pub fn scale_from_env() -> ExperimentScale {
    match std::env::var("NASAIC_BENCH_SCALE")
        .unwrap_or_default()
        .to_ascii_lowercase()
        .as_str()
    {
        "paper" => ExperimentScale::Paper,
        "benchmark" | "bench" => ExperimentScale::Benchmark,
        _ => ExperimentScale::Quick,
    }
}

/// Seed shared by all benchmark regenerations (override with
/// `NASAIC_BENCH_SEED`).
pub fn seed_from_env() -> u64 {
    std::env::var("NASAIC_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2020)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The variable is unlikely to be set during unit tests; accept any
        // valid parse but require a deterministic default when unset.
        if std::env::var("NASAIC_BENCH_SCALE").is_err() {
            assert_eq!(scale_from_env(), ExperimentScale::Quick);
        }
    }

    #[test]
    fn default_seed_is_stable() {
        if std::env::var("NASAIC_BENCH_SEED").is_err() {
            assert_eq!(seed_from_env(), 2020);
        }
    }
}
