//! Shared helpers for the NASAIC benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper and
//! prints it before running its Criterion measurements, so `cargo bench`
//! doubles as the experiment-reproduction entry point.  The regeneration
//! effort is controlled by the `NASAIC_BENCH_SCALE` environment variable:
//!
//! * `quick` (default) — seconds per artefact;
//! * `benchmark` — tens of seconds, the scale used for EXPERIMENTS.md;
//! * `paper` — the paper's full effort (500 episodes, 10,000 Monte-Carlo
//!   runs).

use nasaic_core::experiments::ExperimentScale;

/// Scale selected through the `NASAIC_BENCH_SCALE` environment variable.
pub fn scale_from_env() -> ExperimentScale {
    match std::env::var("NASAIC_BENCH_SCALE")
        .unwrap_or_default()
        .to_ascii_lowercase()
        .as_str()
    {
        "paper" => ExperimentScale::Paper,
        "benchmark" | "bench" => ExperimentScale::Benchmark,
        _ => ExperimentScale::Quick,
    }
}

/// Seed shared by all benchmark regenerations (override with
/// `NASAIC_BENCH_SEED`).
pub fn seed_from_env() -> u64 {
    std::env::var("NASAIC_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2020)
}

/// Today's UTC date as `YYYY-MM-DD`, for the `date` field every
/// `BENCH_*.json` entry carries (`scripts/lint_bench.sh` enforces it).
/// Pure `std`: days-since-epoch to civil date via the usual era/day-of-era
/// arithmetic.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("system clock before 1970")
        .as_secs();
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil-from-days: shift the epoch to 0000-03-01 so
    // leap days land at the end of the (shifted) year.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

pub mod sched_instances {
    //! Canonical HAP instances shared by the `micro_sched` benchmark and
    //! the `sched_baseline` snapshot binary, so every measurement runs
    //! the same workload.

    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};
    use nasaic_cost::{CostModel, WorkloadCosts};
    use nasaic_nn::backbone::Backbone;
    use nasaic_sched::HapProblem;

    /// W1-sized instance: ResNet-9 + U-Net (39 layers) on a two-dataflow
    /// accelerator under a tight latency constraint — the shape of the HAP
    /// solve inside every NASAIC episode.
    pub fn w1_problem() -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs = vec![
            Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2]),
            Backbone::UNetNuclei.materialize_values(&[4, 16, 32, 64, 128, 256]),
        ];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        HapProblem::new(WorkloadCosts::build(&model, &archs, &acc), 8.0e5)
    }

    /// Paper-sized single network (18 layers) — within the raised
    /// `EXACT_LAYER_LIMIT`, used for optimality-gap measurements.
    pub fn realistic_problem() -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs =
            vec![Backbone::ResNet9Cifar10.materialize_values(&[32, 128, 2, 256, 2, 256, 2])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 2048, 32),
            SubAccelerator::new(Dataflow::Shidiannao, 2048, 32),
        ]);
        HapProblem::new(WorkloadCosts::build(&model, &archs, &acc), 2.0e6)
    }

    /// The smallest ResNet-9 (9 layers) on a small two-dataflow design —
    /// the historical exact-solver benchmark instance.
    pub fn tiny_problem() -> HapProblem {
        let model = CostModel::paper_calibrated();
        let archs = vec![Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0])];
        let acc = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 1024, 16),
            SubAccelerator::new(Dataflow::Shidiannao, 1024, 16),
        ]);
        HapProblem::new(WorkloadCosts::build(&model, &archs, &acc), 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The variable is unlikely to be set during unit tests; accept any
        // valid parse but require a deterministic default when unset.
        if std::env::var("NASAIC_BENCH_SCALE").is_err() {
            assert_eq!(scale_from_env(), ExperimentScale::Quick);
        }
    }

    #[test]
    fn default_seed_is_stable() {
        if std::env::var("NASAIC_BENCH_SEED").is_err() {
            assert_eq!(seed_from_env(), 2020);
        }
    }
}
