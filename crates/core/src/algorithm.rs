//! The unified search-algorithm API: one trait for NASAIC and every
//! baseline, one context carrying the run inputs, and a streaming
//! observer for search telemetry.
//!
//! Before this module, the six search drivers had six incompatible entry
//! points (`Nasaic::run_with_engine(engine)`,
//! `MonteCarloSearch::run_with_engine(&workload, &hardware, engine)`, two
//! tuple-returning successive baselines, …) and
//! `Scenario::run_algorithm_with_engine` dispatched over their
//! construction details by hand.  Now:
//!
//! * [`SearchAlgorithm`] is the object-safe trait every driver implements:
//!   `run_checkpointed(&self, ctx, resume, sink) -> SearchOutcome`, with
//!   `run(&self, ctx)` as the plain no-resume case, plus shard-plan /
//!   run-shard / merge-shards hooks for deterministic multi-process
//!   execution (see [`crate::checkpoint`]).
//! * [`SearchContext`] bundles what the old signatures passed piecemeal —
//!   workload, design specs, hardware space, shared [`EvalEngine`], seed,
//!   a [`Budget`], and an optional [`SearchObserver`].
//! * [`Algorithm::instantiate`] is the one factory mapping an
//!   [`Algorithm`] name plus a [`SearchSpec`] budget onto a configured
//!   `Box<dyn SearchAlgorithm>`; the scenario runner, the `compare`
//!   experiment and the CLI all dispatch through it.
//! * [`SearchObserver`] receives [`SearchEvent`]s from every driver's
//!   episode loop: per-episode evaluation summaries, incumbent
//!   improvements, phase boundaries of the successive baselines, and a
//!   final summary with cache statistics.  [`NullObserver`] ignores
//!   everything (the default), [`RecordingObserver`] captures the stream
//!   for tests, [`TraceObserver`] writes JSON lines (the CLI's
//!   `nasaic run --trace`), [`ProgressObserver`] prints stderr progress
//!   lines, and [`MulticastObserver`] fans one stream out to several
//!   observers.
//!
//! Observation is passive: with any observer (including none), a seeded
//! run's [`SearchOutcome`] is bit-identical to the pre-trait direct-call
//! paths (asserted by `tests/algorithm_dispatch.rs`).
//!
//! # Running an algorithm through the trait
//!
//! ```
//! use nasaic_core::prelude::*;
//!
//! let mut scenario = registry::get("w3").unwrap();
//! scenario.search.episodes = 3;
//! scenario.search.hardware_trials = 2;
//! scenario.search.bound_samples = 3;
//! let workload = scenario.workload();
//! let hardware = scenario.hardware_space();
//! let engine = scenario.engine();
//!
//! let driver = Algorithm::MonteCarlo.instantiate(&scenario.search, scenario.seed);
//! let recorder = RecordingObserver::new();
//! let ctx = SearchContext::new(
//!     &workload,
//!     scenario.specs,
//!     &hardware,
//!     &engine,
//!     scenario.seed,
//!     scenario.search.budget(),
//! )
//! .with_observer(&recorder);
//! let outcome = driver.run(&ctx);
//! assert_eq!(outcome.explored.len(), scenario.search.budget().total_evaluations());
//! // The stream ends with a `SearchFinished` summary.
//! assert!(matches!(
//!     recorder.events().last(),
//!     Some(SearchEvent::SearchFinished { .. })
//! ));
//! ```

use crate::checkpoint::{
    merge_replay, CheckpointSink, NullCheckpointSink, SearchCheckpoint, ShardPartial, ShardPlan,
};
use crate::engine::{CacheStats, EvalEngine};
use crate::log::{PhaseSummary, SearchOutcome};
use crate::scenario::value::ConfigValue;
use crate::scenario::{Algorithm, SearchSpec};
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// The evaluation budget of a search, in the paper's canonical unit:
/// `episodes` (`beta`) joint steps, each followed by `hardware_trials`
/// (`phi`) hardware-only steps.
///
/// This struct owns the budget arithmetic that used to live in a doc
/// comment on `Scenario::run_algorithm_with_engine`: every algorithm maps
/// the same `(episodes, hardware_trials)` pair onto its own knobs so the
/// comparison spends comparable evaluation counts (the full per-algorithm
/// table lives in `docs/scenarios.md`).  [`Algorithm::instantiate`]
/// applies the mapping; custom [`SearchAlgorithm`]s can read the budget
/// from their [`SearchContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Episodes `beta`: joint (architecture + hardware) steps.
    pub episodes: usize,
    /// Hardware-only steps per episode `phi`.
    pub hardware_trials: usize,
}

impl Budget {
    /// A budget of `episodes` joint steps with `hardware_trials`
    /// hardware-only steps each.
    pub fn new(episodes: usize, hardware_trials: usize) -> Self {
        Self {
            episodes,
            hardware_trials,
        }
    }

    /// Total candidate evaluations the budget pays for:
    /// `episodes * (1 + hardware_trials)`.
    pub fn total_evaluations(&self) -> usize {
        self.episodes * (1 + self.hardware_trials)
    }

    /// The hardware-only share of the budget,
    /// `episodes * hardware_trials` (at least 1): what the successive
    /// baselines spend on accelerator sampling.
    pub fn hardware_budget(&self) -> usize {
        (self.episodes * self.hardware_trials).max(1)
    }
}

/// Everything a [`SearchAlgorithm`] needs to run: the problem (workload,
/// specs, hardware space), the shared evaluation engine, the seed and
/// budget, and an optional observer.
///
/// The built-in drivers returned by [`Algorithm::instantiate`] are fully
/// configured by the factory (the spec's budget and the seed are baked
/// into the driver), so for them the context's `seed` and `budget` are
/// descriptive — they feed observer events and let custom algorithms
/// derive their own budget mapping.
#[derive(Clone, Copy)]
pub struct SearchContext<'a> {
    /// The workload (task vector) being co-explored.
    pub workload: &'a Workload,
    /// The design specs (latency / energy / area upper bounds).
    pub specs: DesignSpecs,
    /// The hardware design space.
    pub hardware: &'a HardwareSpace,
    /// The shared evaluation engine (caches + batch parallelism).  Must
    /// wrap an evaluator for the same workload and specs.
    pub engine: &'a EvalEngine,
    /// RNG seed of the run.
    pub seed: u64,
    /// The declared evaluation budget.
    pub budget: Budget,
    observer: Option<&'a dyn SearchObserver>,
}

impl<'a> SearchContext<'a> {
    /// Bundle the run inputs into a context (no observer; add one with
    /// [`with_observer`](Self::with_observer)).
    pub fn new(
        workload: &'a Workload,
        specs: DesignSpecs,
        hardware: &'a HardwareSpace,
        engine: &'a EvalEngine,
        seed: u64,
        budget: Budget,
    ) -> Self {
        Self {
            workload,
            specs,
            hardware,
            engine,
            seed,
            budget,
            observer: None,
        }
    }

    /// Attach an observer that receives the run's [`SearchEvent`] stream.
    pub fn with_observer(mut self, observer: &'a dyn SearchObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The attached observer, or the no-op [`NullObserver`].
    pub fn observer(&self) -> &dyn SearchObserver {
        self.observer.unwrap_or(&NullObserver)
    }
}

impl std::fmt::Debug for SearchContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchContext")
            .field("workload", &self.workload.name)
            .field("specs", &self.specs)
            .field("seed", &self.seed)
            .field("budget", &self.budget)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

/// A co-exploration search algorithm: NASAIC, one of the five baselines,
/// or a user-defined driver.
///
/// The trait is object-safe; [`Algorithm::instantiate`] returns
/// `Box<dyn SearchAlgorithm>` and the scenario/CLI layers dispatch
/// through it.  Implementations must be deterministic for a context seed
/// and must route every candidate evaluation through the context's
/// [`EvalEngine`] so shared-cache runs stay bit-identical to isolated
/// ones.  See `docs/architecture.md` for a worked "add your own
/// algorithm" example.
///
/// # Checkpoint / resume
///
/// The one required entry point is
/// [`run_checkpointed`](Self::run_checkpointed): a run that can start
/// from a [`SearchCheckpoint`] and offers new checkpoints to a
/// [`CheckpointSink`] as it progresses.  [`run`](Self::run) is the plain
/// case (no resume, no sink).  The contract, gated by the resume-identity
/// tests in `tests/algorithm_dispatch.rs` and the resume proptest, is
/// *bit-identity*: resuming any checkpoint and running to the full budget
/// must produce exactly the outcome of the uninterrupted run.
///
/// # Sharding
///
/// [`shard_plan`](Self::shard_plan) partitions a run across `N`
/// deterministic workers, [`run_shard`](Self::run_shard) executes one
/// worker's share, and [`merge_shards`](Self::merge_shards) folds the
/// partials back into the single-process outcome — again bit-identically.
/// The defaults implement the *sequential fallback* (shard 0 runs
/// everything) used by the inherently serial drivers, where every unit of
/// work depends on the previous one's feedback: NASAIC and hardware-aware
/// NAS (the controller updates after every episode), hill climbing (each
/// step moves from the accepted neighbour) and the evolutionary search
/// (each generation breeds from the previous population).  Drivers whose
/// trials are independent (Monte-Carlo sampling, the successive
/// baselines' sweep phase) override all three with strided plans.
pub trait SearchAlgorithm {
    /// The algorithm's stable machine-readable name (matches
    /// [`Algorithm::name`] for the built-ins).
    fn name(&self) -> &str;

    /// Run the search, optionally resuming from a checkpoint, offering
    /// new checkpoints to `sink` at the driver's snapshot points.
    ///
    /// `resume` must come from the same algorithm, seed, workload and
    /// budget (drivers assert the first two).  With `resume == None` and
    /// a [`NullCheckpointSink`] this is exactly the plain run.
    fn run_checkpointed(
        &self,
        ctx: &SearchContext<'_>,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome;

    /// Run the search over the context's workload/specs/hardware through
    /// its engine, reporting progress to the context's observer.
    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        self.run_checkpointed(ctx, None, &NullCheckpointSink)
    }

    /// Resume a checkpointed run to completion.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint belongs to a different algorithm; the
    /// drivers additionally assert their own seed inside
    /// [`run_checkpointed`](Self::run_checkpointed).
    fn resume(
        &self,
        ctx: &SearchContext<'_>,
        checkpoint: &SearchCheckpoint,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        assert_eq!(
            checkpoint.algorithm,
            self.name(),
            "checkpoint belongs to algorithm `{}`, not `{}`",
            checkpoint.algorithm,
            self.name()
        );
        self.run_checkpointed(ctx, Some(checkpoint), sink)
    }

    /// How this driver splits one run across `shards` workers.  The
    /// default is the sequential fallback: shard 0 runs the whole search.
    fn shard_plan(&self, _ctx: &SearchContext<'_>, shards: usize) -> ShardPlan {
        ShardPlan::sequential(self.name(), shards)
    }

    /// Execute one shard of `plan`.  The default implements the
    /// sequential fallback; drivers that return strided plans from
    /// [`shard_plan`](Self::shard_plan) must override this accordingly.
    ///
    /// # Panics
    ///
    /// Panics if `shard_index` is out of range for the plan.
    fn run_shard(
        &self,
        ctx: &SearchContext<'_>,
        plan: &ShardPlan,
        shard_index: usize,
    ) -> ShardPartial {
        assert!(
            shard_index < plan.shards,
            "shard index {shard_index} out of range for {} shards",
            plan.shards
        );
        if shard_index == 0 {
            ShardPartial::completed(self.name(), plan.shards, self.run(ctx))
        } else {
            ShardPartial::empty(self.name(), plan.shards, shard_index)
        }
    }

    /// Merge every shard's partial back into the single-process outcome.
    /// The default replays keyed solutions in global order (strided
    /// plans) or short-circuits to shard 0's complete outcome
    /// (sequential plans); see [`merge_replay`].
    fn merge_shards(
        &self,
        _ctx: &SearchContext<'_>,
        plan: &ShardPlan,
        partials: Vec<ShardPartial>,
    ) -> SearchOutcome {
        merge_replay(plan, partials)
    }
}

impl Algorithm {
    /// Instantiate the configured driver for this algorithm: the one
    /// factory behind `Scenario::run_algorithm_with_engine`, the
    /// `compare` experiment and the CLI.
    ///
    /// The spec's `(episodes, hardware_trials)` budget is mapped onto each
    /// driver's own knobs here (see [`Budget`] and the table in
    /// `docs/scenarios.md`), and `seed` is baked into the driver, so the
    /// returned box only needs a [`SearchContext`] to run.
    pub fn instantiate(&self, spec: &SearchSpec, seed: u64) -> Box<dyn SearchAlgorithm> {
        use crate::baselines::{
            AsicThenHwNas, EvolutionarySearch, HillClimb, MonteCarloSearch, NasThenAsic,
        };
        let budget = spec.budget();
        match self {
            Algorithm::Nasaic => Box::new(crate::search::Nasaic::from_search_spec(spec, seed)),
            Algorithm::MonteCarlo => Box::new(MonteCarloSearch {
                runs: budget.total_evaluations(),
                seed,
            }),
            Algorithm::HillClimb => Box::new(HillClimb {
                max_steps: spec.episodes,
                rho: spec.rho,
            }),
            Algorithm::Evolutionary => {
                // The driver never runs fewer than 2 individuals, so clamp
                // before dividing or a (programmatic) population of 1 would
                // silently double the spent budget.
                let population = spec.population.max(2);
                Box::new(EvolutionarySearch {
                    population,
                    generations: (budget.total_evaluations() / population).max(1),
                    tournament: spec.tournament,
                    mutation_rate: spec.mutation_rate,
                    rho: spec.rho,
                    seed,
                })
            }
            Algorithm::NasThenAsic => Box::new(NasThenAsic {
                nas_episodes: spec.episodes,
                hardware_samples: budget.hardware_budget(),
                seed,
            }),
            Algorithm::AsicThenHwNas => Box::new(AsicThenHwNas {
                monte_carlo_runs: budget.hardware_budget(),
                nas_episodes: spec.episodes,
                rho: spec.rho,
                seed,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One telemetry event of a search run, streamed to the
/// [`SearchObserver`] as the drivers execute.
///
/// Event streams are deterministic for a seed (given a fresh engine): the
/// `RecordingObserver` determinism test in `tests/algorithm_dispatch.rs`
/// asserts byte-equality of repeated runs.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchEvent {
    /// A named phase of a multi-phase driver began (the successive
    /// baselines emit `nas`/`asic-sweep` and `asic-monte-carlo`/`hw-nas`).
    PhaseStarted {
        /// Phase name.
        phase: String,
        /// Episodes (or samples) the phase plans to spend.
        budget: usize,
    },
    /// A named phase finished; the summary is also appended to
    /// [`SearchOutcome::phases`].
    PhaseFinished {
        /// Phase name.
        phase: String,
        /// What the phase explored and what it decided.
        summary: PhaseSummary,
    },
    /// One episode (joint step + its hardware trials, one random sample,
    /// one local-search step, one generation, …) was evaluated.
    ///
    /// Episode indexing is per driver: NASAIC and the sampling drivers
    /// emit exactly `SearchFinished::episodes` events indexed
    /// `0..episodes`; drivers that evaluate an initial state before their
    /// loop (hill climbing's starting point, the evolutionary search's
    /// initial population) emit it as episode `0` and their steps /
    /// generations as `1..=episodes`, i.e. `episodes + 1` events; the
    /// successive baselines restart numbering per phase.
    EpisodeEvaluated {
        /// Episode index within the driver (or current phase).
        episode: usize,
        /// Candidates evaluated in this episode.
        evaluations: usize,
        /// The episode's weighted accuracy (Eq. 2), when the accuracy
        /// path ran (`None` for pruned episodes and accuracy-free
        /// phases).
        weighted_accuracy: Option<f64>,
        /// Whether any of the episode's designs met all specs.
        any_compliant: bool,
        /// The reward of the episode's primary step (Eq. 4 for the
        /// reward-driven drivers, raw accuracy for accuracy-only NAS,
        /// `0.0` for unrewarded sweeps).
        reward: f64,
        /// Mean policy entropy of the episode's controller sample
        /// (RL-driven episodes only).
        entropy: Option<f64>,
        /// The controller's REINFORCE baseline after this episode's
        /// feedback (RL-driven episodes only).
        baseline: Option<f64>,
    },
    /// A new best spec-compliant solution was found.
    NewIncumbent {
        /// Episode the incumbent was found at.
        episode: usize,
        /// Its weighted accuracy.
        weighted_accuracy: f64,
        /// Achieved latency in cycles.
        latency_cycles: f64,
        /// Achieved energy in nJ.
        energy_nj: f64,
        /// Achieved area in µm².
        area_um2: f64,
        /// The candidate in the paper's notation.
        candidate: String,
    },
    /// A checkpoint of the search state was handed to the run's
    /// [`CheckpointSink`] (only emitted when a sink wants checkpoints;
    /// plain runs never see this event).
    CheckpointSaved {
        /// Progress units completed when the snapshot was taken (the
        /// driver's own unit: samples, episodes, steps, generations).
        progress: usize,
    },
    /// The search finished (always the final event of a run).
    SearchFinished {
        /// Episodes executed.
        episodes: usize,
        /// Fully evaluated solutions.
        explored: usize,
        /// Spec-compliant solutions among them.
        spec_compliant: usize,
        /// Episodes skipped by early pruning.
        pruned_episodes: usize,
        /// Engine cache counters accumulated by this run (the delta on a
        /// shared engine).
        cache: CacheStats,
    },
}

impl SearchEvent {
    /// The event's stable machine-readable tag (the `event` field of the
    /// JSON-lines trace).
    pub fn kind(&self) -> &'static str {
        match self {
            SearchEvent::PhaseStarted { .. } => "phase_started",
            SearchEvent::PhaseFinished { .. } => "phase_finished",
            SearchEvent::EpisodeEvaluated { .. } => "episode_evaluated",
            SearchEvent::NewIncumbent { .. } => "new_incumbent",
            SearchEvent::CheckpointSaved { .. } => "checkpoint_saved",
            SearchEvent::SearchFinished { .. } => "search_finished",
        }
    }

    /// The event as a [`ConfigValue`] table (the JSON-lines trace format;
    /// `None` fields are omitted).
    pub fn to_value(&self) -> ConfigValue {
        let mut root = ConfigValue::table();
        root.insert("event", ConfigValue::Str(self.kind().to_string()));
        match self {
            SearchEvent::PhaseStarted { phase, budget } => {
                root.insert("phase", ConfigValue::Str(phase.clone()));
                root.insert("budget", ConfigValue::Integer(*budget as i64));
            }
            SearchEvent::PhaseFinished { phase, summary } => {
                root.insert("phase", ConfigValue::Str(phase.clone()));
                root.insert("summary", summary.to_value());
            }
            SearchEvent::EpisodeEvaluated {
                episode,
                evaluations,
                weighted_accuracy,
                any_compliant,
                reward,
                entropy,
                baseline,
            } => {
                root.insert("episode", ConfigValue::Integer(*episode as i64));
                root.insert("evaluations", ConfigValue::Integer(*evaluations as i64));
                if let Some(acc) = weighted_accuracy {
                    root.insert("weighted_accuracy", ConfigValue::Float(*acc));
                }
                root.insert("any_compliant", ConfigValue::Bool(*any_compliant));
                root.insert("reward", ConfigValue::Float(*reward));
                if let Some(entropy) = entropy {
                    root.insert("entropy", ConfigValue::Float(*entropy));
                }
                if let Some(baseline) = baseline {
                    root.insert("baseline", ConfigValue::Float(*baseline));
                }
            }
            SearchEvent::NewIncumbent {
                episode,
                weighted_accuracy,
                latency_cycles,
                energy_nj,
                area_um2,
                candidate,
            } => {
                root.insert("episode", ConfigValue::Integer(*episode as i64));
                root.insert("weighted_accuracy", ConfigValue::Float(*weighted_accuracy));
                root.insert("latency_cycles", ConfigValue::Float(*latency_cycles));
                root.insert("energy_nj", ConfigValue::Float(*energy_nj));
                root.insert("area_um2", ConfigValue::Float(*area_um2));
                root.insert("candidate", ConfigValue::Str(candidate.clone()));
            }
            SearchEvent::CheckpointSaved { progress } => {
                root.insert("progress", ConfigValue::Integer(*progress as i64));
            }
            SearchEvent::SearchFinished {
                episodes,
                explored,
                spec_compliant,
                pruned_episodes,
                cache,
            } => {
                root.insert("episodes", ConfigValue::Integer(*episodes as i64));
                root.insert("explored", ConfigValue::Integer(*explored as i64));
                root.insert(
                    "spec_compliant",
                    ConfigValue::Integer(*spec_compliant as i64),
                );
                root.insert(
                    "pruned_episodes",
                    ConfigValue::Integer(*pruned_episodes as i64),
                );
                root.insert(
                    "accuracy_hits",
                    ConfigValue::Integer(cache.accuracy_hits as i64),
                );
                root.insert(
                    "accuracy_misses",
                    ConfigValue::Integer(cache.accuracy_misses as i64),
                );
                root.insert(
                    "hardware_hits",
                    ConfigValue::Integer(cache.hardware_hits as i64),
                );
                root.insert(
                    "hardware_misses",
                    ConfigValue::Integer(cache.hardware_misses as i64),
                );
                root.insert(
                    "accuracy_entries",
                    ConfigValue::Integer(cache.accuracy_entries as i64),
                );
                root.insert(
                    "hardware_entries",
                    ConfigValue::Integer(cache.hardware_entries as i64),
                );
                root.insert(
                    "accuracy_evictions",
                    ConfigValue::Integer(cache.accuracy_evictions as i64),
                );
                root.insert(
                    "hardware_evictions",
                    ConfigValue::Integer(cache.hardware_evictions as i64),
                );
                root.insert(
                    "accuracy_capacity",
                    ConfigValue::Integer(cache.accuracy_capacity as i64),
                );
                root.insert(
                    "hardware_capacity",
                    ConfigValue::Integer(cache.hardware_capacity as i64),
                );
                root.insert(
                    "accuracy_hit_rate",
                    ConfigValue::Float(cache.accuracy_hit_rate()),
                );
                root.insert(
                    "hardware_hit_rate",
                    ConfigValue::Float(cache.hardware_hit_rate()),
                );
                root.insert("cache_hit_rate", ConfigValue::Float(cache.hit_rate()));
            }
        }
        root
    }
}

/// Emit the final [`SearchEvent::SearchFinished`] summary for an outcome.
///
/// Every driver — including custom [`SearchAlgorithm`] implementations —
/// must call this exactly once, at the very end of a run, with the
/// cache-stat delta of the run (`engine.stats().since(&snapshot_at_start)`);
/// trace consumers (and the CI `search_baseline --validate-trace` gate)
/// rely on `search_finished` being the stream's final event.
pub fn emit_search_finished(
    observer: &dyn SearchObserver,
    outcome: &SearchOutcome,
    cache: CacheStats,
) {
    observer.on_event(&SearchEvent::SearchFinished {
        episodes: outcome.episodes,
        explored: outcome.explored.len(),
        spec_compliant: outcome.spec_compliant.len(),
        pruned_episodes: outcome.pruned_episodes,
        cache,
    });
}

// ---------------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------------

/// A streaming consumer of search telemetry.
///
/// Drivers call `on_event` strictly sequentially (candidate *evaluation*
/// is batched in parallel, but bookkeeping — and therefore observation —
/// happens in deterministic draw order), so implementations only need
/// interior mutability, not lock-free concurrency.  Observers must not
/// influence the search: the seeded outcome is identical with or without
/// one.
pub trait SearchObserver {
    /// Receive one event.  Implementations should be cheap; they run on
    /// the search's hot path.
    fn on_event(&self, event: &SearchEvent);
}

/// The no-op observer (the default when a context has none).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SearchObserver for NullObserver {
    fn on_event(&self, _event: &SearchEvent) {}
}

/// An observer that records every event in order — the test harness for
/// event-stream determinism and budget accounting.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: Mutex<Vec<SearchEvent>>,
}

impl RecordingObserver {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the recorded stream, in emission order.
    pub fn events(&self) -> Vec<SearchEvent> {
        self.events.lock().expect("recording observer lock").clone()
    }

    /// Number of recorded events with the given [`SearchEvent::kind`].
    pub fn count(&self, kind: &str) -> usize {
        self.events
            .lock()
            .expect("recording observer lock")
            .iter()
            .filter(|e| e.kind() == kind)
            .count()
    }
}

impl SearchObserver for RecordingObserver {
    fn on_event(&self, event: &SearchEvent) {
        self.events
            .lock()
            .expect("recording observer lock")
            .push(event.clone());
    }
}

/// Version of the JSON-lines trace schema written by [`TraceObserver`].
///
/// History:
/// - **1** — one [`SearchEvent::to_value`] table per line.
/// - **2** — every line additionally carries `elapsed_ms`: whole
///   milliseconds on the observer's monotonic clock since it was
///   constructed.  The field is injected at the write layer —
///   `to_value()` itself stays deterministic, which is what the trace
///   determinism tests compare after stripping `elapsed_ms`.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

/// An observer that writes each event as one line of JSON (JSON lines):
/// the CLI's `nasaic run --trace <file>` sink.
///
/// Each line is the event's [`SearchEvent::to_value`] table plus an
/// `elapsed_ms` timestamp (see [`TRACE_SCHEMA_VERSION`]).  Each line is
/// flushed as it is written, so a run that dies mid-search (crash,
/// OOM-kill, ^C) leaves a parseable prefix of complete lines rather than
/// a truncated buffer.  Write errors after construction are swallowed
/// (the trace is telemetry, not the result); call
/// [`finish`](Self::finish) to surface the first I/O error, if any.
#[derive(Debug)]
pub struct TraceObserver<W: Write> {
    sink: Mutex<W>,
    started: std::time::Instant,
}

impl<W: Write> TraceObserver<W> {
    /// Trace into any writer (tests use `Vec<u8>`).
    pub fn new(sink: W) -> Self {
        Self {
            sink: Mutex::new(sink),
            started: std::time::Instant::now(),
        }
    }

    /// Flush and return the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the flush error, if any.
    pub fn finish(self) -> std::io::Result<W> {
        let mut sink = self.sink.into_inner().expect("trace observer lock");
        sink.flush()?;
        Ok(sink)
    }
}

impl TraceObserver<std::io::BufWriter<std::fs::File>> {
    /// Trace into a file (truncating an existing one), buffered.
    ///
    /// # Errors
    ///
    /// Returns the error of creating the file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> SearchObserver for TraceObserver<W> {
    fn on_event(&self, event: &SearchEvent) {
        let mut value = event.to_value();
        value.insert(
            "elapsed_ms",
            ConfigValue::Integer(self.started.elapsed().as_millis() as i64),
        );
        let line = crate::scenario::value::to_json_compact(&value);
        let mut sink = self.sink.lock().expect("trace observer lock");
        let _ = writeln!(sink, "{line}");
        // Flush per event: a run killed mid-search must leave a parseable
        // JSON-lines prefix behind, not a truncated buffer (the same
        // crash-safety contract checkpoints rely on).
        let _ = sink.flush();
    }
}

/// An observer that prints human-readable progress lines to stderr (new
/// incumbents, phase boundaries, and the final summary).
#[derive(Debug, Clone)]
pub struct ProgressObserver {
    label: String,
}

impl ProgressObserver {
    /// A progress printer prefixing every line with `label`.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
        }
    }
}

impl SearchObserver for ProgressObserver {
    fn on_event(&self, event: &SearchEvent) {
        match event {
            SearchEvent::PhaseStarted { phase, budget } => {
                eprintln!("[{}] phase {phase} started (budget {budget})", self.label);
            }
            SearchEvent::PhaseFinished { phase, summary } => {
                eprintln!(
                    "[{}] phase {phase} finished: {} explored, {} compliant",
                    self.label, summary.explored, summary.spec_compliant
                );
            }
            SearchEvent::NewIncumbent {
                episode,
                weighted_accuracy,
                latency_cycles,
                energy_nj,
                area_um2,
                ..
            } => {
                eprintln!(
                    "[{}] ep{episode}: new best {weighted_accuracy:.4} \
                     (lat {latency_cycles:.3e}, energy {energy_nj:.3e}, area {area_um2:.3e})",
                    self.label
                );
            }
            SearchEvent::SearchFinished {
                episodes,
                explored,
                spec_compliant,
                pruned_episodes,
                cache,
            } => {
                eprintln!(
                    "[{}] finished: {episodes} episodes, {explored} explored, \
                     {spec_compliant} compliant ({pruned_episodes} pruned), \
                     cache hit rate {:.1}% \
                     (accuracy {:.1}% over {} entries, hardware {:.1}% over {} entries, \
                     {} evicted)",
                    self.label,
                    cache.hit_rate() * 100.0,
                    cache.accuracy_hit_rate() * 100.0,
                    cache.accuracy_entries,
                    cache.hardware_hit_rate() * 100.0,
                    cache.hardware_entries,
                    cache.evictions(),
                );
            }
            SearchEvent::EpisodeEvaluated { .. } | SearchEvent::CheckpointSaved { .. } => {}
        }
    }
}

/// An observer that forwards every event to several observers in order
/// (the CLI composes trace + progress through it).
#[derive(Default)]
pub struct MulticastObserver<'a> {
    targets: Vec<&'a dyn SearchObserver>,
}

impl<'a> MulticastObserver<'a> {
    /// An empty multicast (events go nowhere until targets are added).
    pub fn new() -> Self {
        Self {
            targets: Vec::new(),
        }
    }

    /// Add a target; events are forwarded in insertion order.
    pub fn push(&mut self, target: &'a dyn SearchObserver) {
        self.targets.push(target);
    }
}

impl SearchObserver for MulticastObserver<'_> {
    fn on_event(&self, event: &SearchEvent) {
        for target in &self.targets {
            target.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::value;

    #[test]
    fn budget_owns_the_evaluation_arithmetic() {
        let budget = Budget::new(500, 10);
        assert_eq!(budget.total_evaluations(), 5500);
        assert_eq!(budget.hardware_budget(), 5000);
        // The hardware share never degenerates to zero.
        assert_eq!(Budget::new(3, 0).hardware_budget(), 1);
        assert_eq!(Budget::new(3, 0).total_evaluations(), 3);
    }

    #[test]
    fn search_spec_budget_matches_legacy_total() {
        let spec = SearchSpec::paper();
        assert_eq!(spec.budget().total_evaluations(), spec.total_evaluations());
    }

    #[test]
    fn instantiate_names_match_the_algorithm() {
        let spec = SearchSpec::paper();
        for algorithm in Algorithm::all() {
            let driver = algorithm.instantiate(&spec, 1);
            assert_eq!(driver.name(), algorithm.name());
        }
    }

    fn sample_events() -> Vec<SearchEvent> {
        vec![
            SearchEvent::PhaseStarted {
                phase: "nas".to_string(),
                budget: 10,
            },
            SearchEvent::EpisodeEvaluated {
                episode: 0,
                evaluations: 5,
                weighted_accuracy: Some(0.85),
                any_compliant: true,
                reward: 0.7,
                entropy: Some(1.2),
                baseline: None,
            },
            SearchEvent::NewIncumbent {
                episode: 0,
                weighted_accuracy: 0.85,
                latency_cycles: 1e5,
                energy_nj: 2e8,
                area_um2: 3e9,
                candidate: "x | y".to_string(),
            },
            SearchEvent::SearchFinished {
                episodes: 1,
                explored: 5,
                spec_compliant: 1,
                pruned_episodes: 0,
                cache: CacheStats {
                    accuracy_hits: 4,
                    accuracy_misses: 1,
                    hardware_hits: 0,
                    hardware_misses: 5,
                    accuracy_entries: 1,
                    hardware_entries: 5,
                    accuracy_evictions: 0,
                    hardware_evictions: 2,
                    accuracy_capacity: 0,
                    hardware_capacity: 7,
                },
            },
        ]
    }

    #[test]
    fn events_serialize_as_parseable_single_line_json() {
        for event in sample_events() {
            let line = value::to_json_compact(&event.to_value());
            assert!(!line.contains('\n'), "{line}");
            let parsed = value::parse_json(&line).unwrap();
            assert_eq!(parsed.get("event").unwrap().as_str(), Some(event.kind()));
        }
        // Optional fields are omitted, not null.
        let pruned = SearchEvent::EpisodeEvaluated {
            episode: 3,
            evaluations: 4,
            weighted_accuracy: None,
            any_compliant: false,
            reward: -1.0,
            entropy: None,
            baseline: None,
        };
        let line = value::to_json_compact(&pruned.to_value());
        assert!(!line.contains("weighted_accuracy"), "{line}");
    }

    #[test]
    fn trace_observer_writes_one_json_line_per_event() {
        let trace = TraceObserver::new(Vec::new());
        let events = sample_events();
        for event in &events {
            trace.on_event(event);
        }
        let bytes = trace.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            let parsed = value::parse_json(line).unwrap();
            assert_eq!(parsed.get("event").unwrap().as_str(), Some(event.kind()));
            // Schema v2: every line carries a monotonic timestamp.
            assert!(parsed.get("elapsed_ms").unwrap().as_integer().unwrap() >= 0);
        }
    }

    #[test]
    fn recording_and_multicast_observers_see_the_same_stream() {
        let a = RecordingObserver::new();
        let b = RecordingObserver::new();
        let mut fanout = MulticastObserver::new();
        fanout.push(&a);
        fanout.push(&b);
        for event in sample_events() {
            fanout.on_event(&event);
        }
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events(), sample_events());
        assert_eq!(a.count("episode_evaluated"), 1);
        assert_eq!(a.count("search_finished"), 1);
    }
}
