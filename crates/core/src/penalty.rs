//! The design-spec penalty of Eq. 3.

use crate::bounds::PenaltyBounds;
use crate::spec::DesignSpecs;
use nasaic_cost::HardwareMetrics;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The penalty `P` of Eq. 3: for each metric, the amount by which the
/// solution exceeds its spec, normalised by the gap between the metric's
/// upper bound and the spec; zero when every spec is met.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Penalty {
    /// Normalised latency excess.
    pub latency: f64,
    /// Normalised energy excess.
    pub energy: f64,
    /// Normalised area excess.
    pub area: f64,
}

impl Penalty {
    /// Compute the penalty of a solution's metrics under given specs and
    /// normalisation bounds.
    ///
    /// Infeasible (infinite) metrics are clamped to the corresponding upper
    /// bound, yielding a penalty contribution of 1 per metric — the maximum
    /// the normalisation allows — so completely broken designs are strictly
    /// worse than merely spec-violating ones but the reward stays finite.
    pub fn compute(metrics: &HardwareMetrics, specs: &DesignSpecs, bounds: &PenaltyBounds) -> Self {
        Self {
            latency: normalised_excess(
                metrics.latency_cycles,
                specs.latency_cycles,
                bounds.latency_cycles,
            ),
            energy: normalised_excess(metrics.energy_nj, specs.energy_nj, bounds.energy_nj),
            area: normalised_excess(metrics.area_um2, specs.area_um2, bounds.area_um2),
        }
    }

    /// The scalar penalty `P` (sum of the three terms).
    pub fn total(&self) -> f64 {
        self.latency + self.energy + self.area
    }

    /// `true` when the penalty is exactly zero, i.e. all specs are met.
    pub fn is_zero(&self) -> bool {
        self.total() == 0.0
    }
}

impl fmt::Display for Penalty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P = {:.4} (L {:.4}, E {:.4}, A {:.4})",
            self.total(),
            self.latency,
            self.energy,
            self.area
        )
    }
}

/// Cap applied to each normalised penalty component: beyond twice the
/// normalisation range, a worse metric no longer increases the penalty.
/// This keeps Eq. 4 rewards in a bounded range even for candidates that are
/// orders of magnitude over the specs (e.g. the largest STL-10 networks).
const COMPONENT_CAP: f64 = 2.0;

fn normalised_excess(value: f64, spec: f64, bound: f64) -> f64 {
    let clamped = if value.is_finite() {
        value
    } else {
        bound.max(spec)
    };
    let excess = (clamped - spec).max(0.0);
    if excess == 0.0 {
        return 0.0;
    }
    let denominator = (bound - spec).max(spec * 1e-3);
    (excess / denominator).min(COMPONENT_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> DesignSpecs {
        DesignSpecs::new(100.0, 1000.0, 10_000.0)
    }

    fn bounds() -> PenaltyBounds {
        PenaltyBounds {
            latency_cycles: 200.0,
            energy_nj: 3000.0,
            area_um2: 20_000.0,
        }
    }

    #[test]
    fn meeting_all_specs_gives_zero_penalty() {
        let p = Penalty::compute(
            &HardwareMetrics::new(90.0, 900.0, 9000.0),
            &specs(),
            &bounds(),
        );
        assert!(p.is_zero());
        assert_eq!(p.total(), 0.0);
    }

    #[test]
    fn exceeding_one_spec_penalises_only_that_metric() {
        let p = Penalty::compute(
            &HardwareMetrics::new(150.0, 900.0, 9000.0),
            &specs(),
            &bounds(),
        );
        assert!((p.latency - 0.5).abs() < 1e-12);
        assert_eq!(p.energy, 0.0);
        assert_eq!(p.area, 0.0);
        assert!((p.total() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hitting_the_upper_bound_gives_unit_penalty() {
        let p = Penalty::compute(
            &HardwareMetrics::new(200.0, 3000.0, 20_000.0),
            &specs(),
            &bounds(),
        );
        assert!((p.latency - 1.0).abs() < 1e-12);
        assert!((p.energy - 1.0).abs() < 1e-12);
        assert!((p.area - 1.0).abs() < 1e-12);
        assert!((p.total() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_metrics_are_clamped_to_bound() {
        let p = Penalty::compute(&HardwareMetrics::infeasible(), &specs(), &bounds());
        assert!(p.total().is_finite());
        assert!((p.total() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn exceeding_the_bound_scales_beyond_one() {
        let p = Penalty::compute(
            &HardwareMetrics::new(300.0, 900.0, 9000.0),
            &specs(),
            &bounds(),
        );
        assert!((p.latency - 2.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_value_is_not_penalised() {
        let p = Penalty::compute(
            &HardwareMetrics::new(100.0, 1000.0, 10_000.0),
            &specs(),
            &bounds(),
        );
        assert!(p.is_zero());
    }

    #[test]
    fn display_contains_components() {
        let p = Penalty::compute(
            &HardwareMetrics::new(150.0, 900.0, 9000.0),
            &specs(),
            &bounds(),
        );
        assert!(p.to_string().contains("P ="));
    }
}
