//! Evolutionary co-search over the joint (architecture, hardware) space.
//!
//! Section IV of the paper notes that, given the formulated reward, "other
//! optimization approaches, such as evolution algorithms, can also be
//! applied" in place of the reinforcement-learning controller.  This module
//! provides that alternative optimizer: a steady-state genetic algorithm
//! whose genome is the concatenation of the per-task architecture choice
//! indices and the per-sub-accelerator hardware choice indices, and whose
//! fitness is exactly the Eq. 4 reward.

use crate::algorithm::{
    emit_search_finished, NullObserver, SearchAlgorithm, SearchContext, SearchEvent, SearchObserver,
};
use crate::bounds::PenaltyBounds;
use crate::candidate::Candidate;
use crate::checkpoint::{self, CheckpointSink, NullCheckpointSink, SearchCheckpoint};
use crate::engine::EvalEngine;
use crate::log::{ExploredSolution, SearchOutcome};
use crate::scenario::value::ConfigValue;
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use nasaic_nn::space::SearchSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the evolutionary co-search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolutionarySearch {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Penalty scaling of the fitness (Eq. 4's `rho`).
    pub rho: f64,
    /// RNG seed.
    pub seed: u64,
}

impl EvolutionarySearch {
    /// A configuration with roughly the same evaluation budget as the
    /// paper's RL run (500 episodes x 11 designs).
    pub fn paper(seed: u64) -> Self {
        Self {
            population: 50,
            generations: 100,
            tournament: 3,
            mutation_rate: 0.15,
            rho: 10.0,
            seed,
        }
    }

    /// A configuration small enough for tests.
    pub fn fast(seed: u64) -> Self {
        Self {
            population: 24,
            generations: 12,
            tournament: 3,
            mutation_rate: 0.2,
            rho: 10.0,
            seed,
        }
    }

    /// Run through a shared engine: every generation's population is
    /// scored as one parallel batch, with elitism's surviving individuals
    /// re-scored from the caches for free.
    pub fn run_with_engine(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> SearchOutcome {
        self.run_observed(
            workload,
            specs,
            hardware,
            engine,
            &NullObserver,
            None,
            &NullCheckpointSink,
        )
    }

    /// The generation loop, shared by
    /// [`run_with_engine`](Self::run_with_engine) and the
    /// [`SearchAlgorithm`] trait path.
    ///
    /// Checkpoints fire after each scored generation: `progress` counts
    /// completed generations (the initial population is progress 0), and
    /// the state carries `{rng, population, fitness, outcome}` — enough to
    /// re-enter the loop at `progress` with the RNG stream, the live
    /// population and the full exploration record bit-identical to the
    /// uninterrupted run.
    #[allow(clippy::too_many_arguments)]
    fn run_observed(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        let stats_start = engine.stats();
        let scorer = engine.scorer(PenaltyBounds::from_specs(&specs, 3.0), self.rho);
        let arch_spaces: Vec<SearchSpace> = workload
            .tasks
            .iter()
            .map(|t| t.backbone.search_space())
            .collect();
        let hw_space = hardware.search_space();

        // Genome layout: per-task architecture indices followed by the flat
        // hardware indices.
        let genome_layout: Vec<usize> = arch_spaces
            .iter()
            .map(SearchSpace::num_choices)
            .chain(std::iter::once(hw_space.num_choices()))
            .collect();
        let genome_length: usize = genome_layout.iter().sum();
        let cardinalities: Vec<usize> = arch_spaces
            .iter()
            .flat_map(|s| s.cardinalities())
            .chain(hw_space.cardinalities())
            .collect();
        debug_assert_eq!(cardinalities.len(), genome_length);

        let decode = |genome: &[usize]| -> Option<Candidate> {
            let mut segments = Vec::with_capacity(workload.num_tasks() + 1);
            let mut offset = 0;
            for space in &arch_spaces {
                segments.push(genome[offset..offset + space.num_choices()].to_vec());
                offset += space.num_choices();
            }
            // Hardware indices are consumed 3 per sub-accelerator by
            // `Candidate::from_segments`.
            let hw = genome[offset..].to_vec();
            for chunk in hw.chunks(3) {
                segments.push(chunk.to_vec());
            }
            Candidate::from_segments(workload, hardware, &segments).ok()
        };

        let (mut rng, mut population, mut fitness, mut outcome, start_generation) = match resume {
            Some(cp) => {
                cp.expect_run(self.name(), self.seed);
                assert!(
                    cp.progress <= self.generations,
                    "evolutionary checkpoint progress {} exceeds the configured {} generations",
                    cp.progress,
                    self.generations
                );
                let rng = StdRng::from_state(
                    checkpoint::rng_state_from_value(
                        cp.state.get("rng").expect("evolutionary checkpoint: rng"),
                    )
                    .expect("evolutionary checkpoint: valid rng state"),
                );
                let population: Vec<Vec<usize>> = cp
                    .state
                    .get("population")
                    .and_then(ConfigValue::as_array)
                    .expect("evolutionary checkpoint: population")
                    .iter()
                    .map(|genome| {
                        checkpoint::usizes_from_value(genome)
                            .expect("evolutionary checkpoint: valid genome")
                    })
                    .collect();
                let fitness = checkpoint::floats_from_value(
                    cp.state
                        .get("fitness")
                        .expect("evolutionary checkpoint: fitness"),
                )
                .expect("evolutionary checkpoint: valid fitness");
                assert_eq!(
                    population.len(),
                    fitness.len(),
                    "evolutionary checkpoint: population and fitness lengths disagree"
                );
                let outcome = checkpoint::outcome_from_value(
                    cp.state
                        .get("outcome")
                        .expect("evolutionary checkpoint: outcome"),
                    workload,
                )
                .expect("evolutionary checkpoint: valid outcome");
                (rng, population, fitness, outcome, cp.progress)
            }
            None => (
                StdRng::seed_from_u64(self.seed ^ 0x5eed_5eed),
                Vec::new(),
                Vec::new(),
                SearchOutcome::empty(),
                0,
            ),
        };
        let mut evaluations = outcome.explored.len();
        // Score one whole generation: decode every genome, evaluate the
        // decodable ones as a parallel batch, and record them in genome
        // order (identical bookkeeping to the old one-at-a-time loop).
        let mut generation_fitness = |population: &[Vec<usize>],
                                      outcome: &mut SearchOutcome|
         -> Vec<f64> {
            let decoded: Vec<Option<Candidate>> = population.iter().map(|g| decode(g)).collect();
            let candidates: Vec<Candidate> = decoded.iter().flatten().cloned().collect();
            let mut scored = scorer.score_batch(&candidates).into_iter();
            decoded
                .into_iter()
                .map(|candidate| {
                    let Some(candidate) = candidate else {
                        return -self.rho * 10.0;
                    };
                    let (evaluation, reward) =
                        scored.next().expect("one score per decoded candidate");
                    outcome.record_observed(
                        ExploredSolution {
                            episode: evaluations,
                            candidate,
                            evaluation,
                            reward,
                        },
                        observer,
                    );
                    evaluations += 1;
                    reward
                })
                .collect()
        };

        // One `EpisodeEvaluated` event per scored generation (the initial
        // population is generation 0).
        let generation_event = |generation: usize,
                                population: usize,
                                fitness: &[f64],
                                compliant_before: usize,
                                outcome: &SearchOutcome| {
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode: generation,
                evaluations: population,
                weighted_accuracy: None,
                any_compliant: outcome.spec_compliant.len() > compliant_before,
                reward: fitness[argmax(fitness)],
                entropy: None,
                baseline: None,
            });
        };

        if resume.is_none() {
            // Initial population.
            population = (0..self.population.max(2))
                .map(|_| cardinalities.iter().map(|&c| rng.gen_range(0..c)).collect())
                .collect();
            fitness = generation_fitness(&population, &mut outcome);
            generation_event(0, population.len(), &fitness, 0, &outcome);
            self.offer(sink, observer, 0, &rng, &population, &fitness, &outcome);
        }

        for generation in start_generation..self.generations {
            let mut next_population = Vec::with_capacity(population.len());
            // Elitism: carry the best individual over unchanged.
            let best_index = argmax(&fitness);
            next_population.push(population[best_index].clone());
            while next_population.len() < population.len() {
                let parent_a = tournament_select(&population, &fitness, self.tournament, &mut rng);
                let parent_b = tournament_select(&population, &fitness, self.tournament, &mut rng);
                let mut child: Vec<usize> = parent_a
                    .iter()
                    .zip(parent_b)
                    .map(|(&a, &b)| if rng.gen_bool(0.5) { a } else { b })
                    .collect();
                for (gene, &card) in child.iter_mut().zip(&cardinalities) {
                    if rng.gen_bool(self.mutation_rate) {
                        *gene = rng.gen_range(0..card);
                    }
                }
                next_population.push(child);
            }
            population = next_population;
            let compliant_before = outcome.spec_compliant.len();
            fitness = generation_fitness(&population, &mut outcome);
            generation_event(
                generation + 1,
                population.len(),
                &fitness,
                compliant_before,
                &outcome,
            );
            self.offer(
                sink,
                observer,
                generation + 1,
                &rng,
                &population,
                &fitness,
                &outcome,
            );
        }

        outcome.episodes = self.generations;
        emit_search_finished(observer, &outcome, engine.stats().since(&stats_start));
        outcome
    }

    /// Offer a checkpoint after `generation` scored generations.
    #[allow(clippy::too_many_arguments)]
    fn offer(
        &self,
        sink: &dyn CheckpointSink,
        observer: &dyn SearchObserver,
        generation: usize,
        rng: &StdRng,
        population: &[Vec<usize>],
        fitness: &[f64],
        outcome: &SearchOutcome,
    ) {
        checkpoint::offer_checkpoint(sink, observer, self.name(), self.seed, generation, || {
            let mut state = ConfigValue::table();
            state.insert("rng", checkpoint::rng_state_to_value(&rng.state()));
            state.insert(
                "population",
                ConfigValue::Array(
                    population
                        .iter()
                        .map(|genome| checkpoint::usizes_to_value(genome))
                        .collect(),
                ),
            );
            state.insert("fitness", checkpoint::floats_to_value(fitness));
            state.insert("outcome", checkpoint::outcome_to_value(outcome));
            state
        });
    }
}

impl SearchAlgorithm for EvolutionarySearch {
    fn name(&self) -> &str {
        "evolutionary"
    }

    /// Run over the context's workload, specs and hardware space.  The
    /// genetic hyperparameters (population, tournament, mutation rate) and
    /// the generation count come from this instance
    /// ([`Algorithm::instantiate`](crate::scenario::Algorithm::instantiate)
    /// maps them from the scenario's `SearchSpec`).
    ///
    /// The search stays on the sequential shard fallback: every generation
    /// is bred from the previous one's fitness, so generations cannot be
    /// strided across workers without changing the evolutionary trajectory.
    fn run_checkpointed(
        &self,
        ctx: &SearchContext<'_>,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        self.run_observed(
            ctx.workload,
            ctx.specs,
            ctx.hardware,
            ctx.engine,
            ctx.observer(),
            resume,
            sink,
        )
    }
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn tournament_select<'a, R: Rng>(
    population: &'a [Vec<usize>],
    fitness: &[f64],
    tournament: usize,
    rng: &mut R,
) -> &'a Vec<usize> {
    let mut best = rng.gen_range(0..population.len());
    for _ in 1..tournament.max(1) {
        let challenger = rng.gen_range(0..population.len());
        if fitness[challenger] > fitness[best] {
            best = challenger;
        }
    }
    &population[best]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{AccuracyOracle, Evaluator};
    use crate::spec::WorkloadId;

    #[test]
    fn evolutionary_search_finds_compliant_w3_solutions() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let outcome =
            EvolutionarySearch::fast(3).run_with_engine(&workload, specs, &hardware, &engine);
        assert!(outcome.best.is_some(), "no compliant solution found");
        assert!(outcome.best_weighted_accuracy().unwrap() > 0.80);
        for s in &outcome.spec_compliant {
            assert!(s.evaluation.meets_specs());
        }
    }

    #[test]
    fn later_generations_do_not_regress_the_best_reward() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let config = EvolutionarySearch::fast(7);
        let outcome = config.run_with_engine(&workload, specs, &hardware, &engine);
        // Best-so-far reward over evaluation order must be non-decreasing by
        // construction (elitism); check the recorded rewards are consistent.
        let mut best = f64::NEG_INFINITY;
        let mut best_curve = Vec::new();
        for s in &outcome.explored {
            best = best.max(s.reward);
            best_curve.push(best);
        }
        let first_quarter = best_curve[best_curve.len() / 4];
        let last = *best_curve.last().unwrap();
        assert!(last >= first_quarter);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let hardware = HardwareSpace::paper_default(2);
        let config = EvolutionarySearch {
            population: 8,
            generations: 3,
            ..EvolutionarySearch::fast(11)
        };
        let a = config.run_with_engine(&workload, specs, &hardware, &EvalEngine::from(&evaluator));
        let b = config.run_with_engine(&workload, specs, &hardware, &EvalEngine::from(&evaluator));
        assert_eq!(a.best_weighted_accuracy(), b.best_weighted_accuracy());
        assert_eq!(a.explored.len(), b.explored.len());
    }
}
