//! The "ASIC→HW-NAS" baseline: hardware first, then hardware-aware NAS.
//!
//! Phase 1 runs a Monte-Carlo search over accelerator designs and keeps the
//! design *closest to the specs* (the paper uses 10,000 runs).  Phase 2
//! fixes that accelerator and runs hardware-aware NAS (MnasNet-style reward:
//! accuracy minus the spec penalty) over the architectures only.  The paper
//! shows this is feasible but leaves accuracy on the table compared to true
//! co-exploration.

use crate::algorithm::{
    emit_search_finished, NullObserver, SearchAlgorithm, SearchContext, SearchEvent, SearchObserver,
};
use crate::bounds::PenaltyBounds;
use crate::candidate::Candidate;
use crate::engine::EvalEngine;
use crate::evaluator::Evaluator;
use crate::log::{ExploredSolution, PhaseSummary, SearchOutcome};
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::{Accelerator, HardwareSpace};
use nasaic_nn::layer::Architecture;
use nasaic_rl::{Controller, ControllerConfig, Segment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the ASIC→HW-NAS baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsicThenHwNas {
    /// Monte-Carlo runs of the hardware phase.
    pub monte_carlo_runs: usize,
    /// Episodes of the hardware-aware NAS phase.
    pub nas_episodes: usize,
    /// Penalty scaling used in the NAS phase reward.
    pub rho: f64,
    /// RNG seed.
    pub seed: u64,
}

impl AsicThenHwNas {
    /// The paper's scale (10,000 Monte-Carlo runs).
    pub fn paper(seed: u64) -> Self {
        Self {
            monte_carlo_runs: 10_000,
            nas_episodes: 300,
            rho: 10.0,
            seed,
        }
    }

    /// A configuration small enough for tests.
    pub fn fast(seed: u64) -> Self {
        Self {
            monte_carlo_runs: 300,
            nas_episodes: 60,
            rho: 10.0,
            seed,
        }
    }

    /// Phase 1: Monte-Carlo hardware search for the design closest to the
    /// specs.  Distance is measured with mid-sized reference architectures
    /// (hardware cannot be judged without *some* network), as the relative
    /// deviation of each metric from its spec; designs exceeding a spec are
    /// penalised three-fold so "closest" designs are preferentially inside
    /// the spec region.
    ///
    /// Every call silently builds a throwaway [`EvalEngine`] whose caches
    /// start cold and die with the call.
    #[deprecated(
        note = "builds a throwaway cold EvalEngine per call; share one engine via \
                `run_monte_carlo_hardware_with_engine` or run the whole baseline through \
                `SearchAlgorithm::run`"
    )]
    pub fn run_monte_carlo_hardware(
        &self,
        workload: &Workload,
        specs: &DesignSpecs,
        hardware: &HardwareSpace,
        evaluator: &Evaluator,
    ) -> Accelerator {
        self.run_monte_carlo_hardware_with_engine(
            workload,
            specs,
            hardware,
            &EvalEngine::from(evaluator),
        )
    }

    /// [`run_monte_carlo_hardware`](Self::run_monte_carlo_hardware) through
    /// a shared engine: the sampled designs are evaluated as one parallel
    /// batch against the fixed reference architectures, and the distance
    /// scan stays sequential in sample order.
    pub fn run_monte_carlo_hardware_with_engine(
        &self,
        workload: &Workload,
        specs: &DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> Accelerator {
        self.run_monte_carlo_hardware_observed(workload, specs, hardware, engine, &NullObserver)
    }

    /// The hardware Monte-Carlo loop, shared by
    /// [`run_monte_carlo_hardware_with_engine`](Self::run_monte_carlo_hardware_with_engine)
    /// and the trait path.  Each sampled design is one `EpisodeEvaluated`
    /// event (accuracy-free: `weighted_accuracy` is `None`), so the trace
    /// covers the phase's engine work.
    fn run_monte_carlo_hardware_observed(
        &self,
        workload: &Workload,
        specs: &DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
    ) -> Accelerator {
        let reference: Vec<Architecture> = workload
            .tasks
            .iter()
            .map(|task| {
                let space = task.backbone.search_space();
                // Mid-point of every choice as the reference network.
                let mid: Vec<usize> = space.cardinalities().iter().map(|&c| c / 2).collect();
                task.backbone
                    .materialize(&mid)
                    .expect("mid-point candidate is always valid")
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xcccc);
        let accelerators: Vec<Accelerator> = (0..self.monte_carlo_runs.max(1))
            .map(|run| {
                if run % 2 == 0 {
                    hardware.sample(&mut rng)
                } else {
                    hardware.sample_fully_allocated(&mut rng)
                }
            })
            .collect();
        let metrics =
            crate::engine::parallel_map(&accelerators, engine.config().threads, |accelerator| {
                engine.hardware_metrics(&reference, accelerator)
            });
        let mut best: Option<(f64, Accelerator)> = None;
        for (run, (accelerator, metrics)) in accelerators.into_iter().zip(metrics).enumerate() {
            let feasible = metrics.is_feasible();
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode: run,
                evaluations: 1,
                weighted_accuracy: None,
                any_compliant: feasible && specs.check(&metrics).all(),
                reward: 0.0,
                entropy: None,
                baseline: None,
            });
            if !feasible {
                continue;
            }
            let distance = spec_distance(metrics.latency_cycles, specs.latency_cycles)
                + spec_distance(metrics.energy_nj, specs.energy_nj)
                + spec_distance(metrics.area_um2, specs.area_um2);
            if best.as_ref().is_none_or(|(d, _)| distance < *d) {
                best = Some((distance, accelerator));
            }
        }
        best.map(|(_, acc)| acc)
            .unwrap_or_else(|| hardware.sample_fully_allocated(&mut rng))
    }

    /// Phase 2: hardware-aware NAS on a fixed accelerator design.
    ///
    /// Every call silently builds a throwaway [`EvalEngine`] whose caches
    /// start cold and die with the call.
    #[deprecated(
        note = "builds a throwaway cold EvalEngine per call; share one engine via \
                `run_hardware_aware_nas_with_engine` or run the whole baseline through \
                `SearchAlgorithm::run`"
    )]
    pub fn run_hardware_aware_nas(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        accelerator: &Accelerator,
        evaluator: &Evaluator,
    ) -> SearchOutcome {
        self.run_hardware_aware_nas_with_engine(
            workload,
            specs,
            accelerator,
            &EvalEngine::from(evaluator),
        )
    }

    /// [`run_hardware_aware_nas`](Self::run_hardware_aware_nas) through a
    /// shared engine; revisited architectures hit both caches (the
    /// accelerator is fixed, so the hardware key only varies with the
    /// architectures).
    pub fn run_hardware_aware_nas_with_engine(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        accelerator: &Accelerator,
        engine: &EvalEngine,
    ) -> SearchOutcome {
        self.run_hardware_aware_nas_observed(workload, specs, accelerator, engine, &NullObserver)
    }

    /// The hardware-aware NAS loop, shared by
    /// [`run_hardware_aware_nas_with_engine`](Self::run_hardware_aware_nas_with_engine)
    /// and the trait path.
    fn run_hardware_aware_nas_observed(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        accelerator: &Accelerator,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
    ) -> SearchOutcome {
        let segments: Vec<Segment> = workload
            .tasks
            .iter()
            .enumerate()
            .map(|(i, task)| {
                Segment::new(
                    &format!("dnn{i}-{}", task.name),
                    task.backbone.search_space().cardinalities(),
                )
            })
            .collect();
        let mut controller =
            Controller::new(segments, ControllerConfig::default(), self.seed ^ 0xdddd);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xeeee);
        let scorer = engine.scorer(PenaltyBounds::from_specs(&specs, 3.0), self.rho);
        let mut outcome = SearchOutcome::empty();
        for episode in 0..self.nas_episodes {
            let sample = controller.sample(&mut rng);
            let architectures: Result<Vec<Architecture>, _> = workload
                .tasks
                .iter()
                .zip(&sample.segments)
                .map(|(task, segment)| task.backbone.materialize(segment))
                .collect();
            let Ok(architectures) = architectures else {
                controller.feedback(&sample, -self.rho);
                observer.on_event(&SearchEvent::EpisodeEvaluated {
                    episode,
                    evaluations: 0,
                    weighted_accuracy: None,
                    any_compliant: false,
                    reward: -self.rho,
                    entropy: Some(sample.mean_entropy),
                    baseline: controller.baseline(),
                });
                continue;
            };
            let candidate = Candidate::from_parts(architectures, accelerator.clone());
            let (evaluation, reward) = scorer.score(&candidate);
            controller.feedback(&sample, reward);
            let weighted_accuracy = evaluation.weighted_accuracy;
            let any_compliant = evaluation.meets_specs();
            outcome.record_observed(
                ExploredSolution {
                    episode,
                    candidate,
                    evaluation,
                    reward,
                },
                observer,
            );
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode,
                evaluations: 1,
                weighted_accuracy: Some(weighted_accuracy),
                any_compliant,
                reward,
                entropy: Some(sample.mean_entropy),
                baseline: controller.baseline(),
            });
        }
        outcome.episodes = self.nas_episodes;
        outcome.reward_history = controller.reward_history().to_vec();
        outcome
    }

    /// Run both phases; returns the chosen accelerator and the NAS outcome.
    ///
    /// Every call silently builds a throwaway [`EvalEngine`] whose caches
    /// start cold and die with the call.
    #[deprecated(
        note = "builds a throwaway cold EvalEngine per call; share one engine via \
                `run_with_engine` or run through `SearchAlgorithm::run` with a `SearchContext`"
    )]
    pub fn run(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        evaluator: &Evaluator,
    ) -> (Accelerator, SearchOutcome) {
        self.run_with_engine(workload, specs, hardware, &EvalEngine::from(evaluator))
    }

    /// [`run`](Self::run) through a shared engine.  The outcome carries
    /// both phases as [`SearchOutcome::phases`] summaries (the chosen
    /// accelerator is the `asic-monte-carlo` phase's detail), so it
    /// survives when only the outcome is kept.
    pub fn run_with_engine(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> (Accelerator, SearchOutcome) {
        self.run_observed(workload, specs, hardware, engine, &NullObserver)
    }

    /// Both phases with phase events and summaries; shared by
    /// [`run_with_engine`](Self::run_with_engine) and the trait path.
    fn run_observed(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
    ) -> (Accelerator, SearchOutcome) {
        let stats_start = engine.stats();
        observer.on_event(&SearchEvent::PhaseStarted {
            phase: "asic-monte-carlo".to_string(),
            budget: self.monte_carlo_runs,
        });
        let accelerator =
            self.run_monte_carlo_hardware_observed(workload, &specs, hardware, engine, observer);
        let hardware_summary = PhaseSummary {
            name: "asic-monte-carlo".to_string(),
            episodes: self.monte_carlo_runs,
            explored: 0,
            spec_compliant: 0,
            best_weighted_accuracy: None,
            detail: format!("selected accelerator: {accelerator}"),
        };
        observer.on_event(&SearchEvent::PhaseFinished {
            phase: "asic-monte-carlo".to_string(),
            summary: hardware_summary.clone(),
        });

        observer.on_event(&SearchEvent::PhaseStarted {
            phase: "hw-nas".to_string(),
            budget: self.nas_episodes,
        });
        let mut outcome =
            self.run_hardware_aware_nas_observed(workload, specs, &accelerator, engine, observer);
        let nas_summary = PhaseSummary {
            name: "hw-nas".to_string(),
            episodes: self.nas_episodes,
            explored: outcome.explored.len(),
            spec_compliant: outcome.spec_compliant.len(),
            best_weighted_accuracy: outcome.best_weighted_accuracy(),
            detail: format!("hardware-aware NAS on the fixed design {accelerator}"),
        };
        observer.on_event(&SearchEvent::PhaseFinished {
            phase: "hw-nas".to_string(),
            summary: nas_summary.clone(),
        });
        outcome.phases = vec![hardware_summary, nas_summary];
        emit_search_finished(observer, &outcome, engine.stats().since(&stats_start));
        (accelerator, outcome)
    }
}

impl SearchAlgorithm for AsicThenHwNas {
    fn name(&self) -> &str {
        "asic-then-hwnas"
    }

    /// Run both phases over the context's workload/specs/hardware.  The
    /// outcome is the hardware-aware NAS exploration log; the chosen
    /// accelerator survives in [`SearchOutcome::phases`] (and as
    /// `PhaseFinished` events).
    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        self.run_observed(
            ctx.workload,
            ctx.specs,
            ctx.hardware,
            ctx.engine,
            ctx.observer(),
        )
        .1
    }
}

fn spec_distance(value: f64, spec: f64) -> f64 {
    let ratio = value / spec;
    if ratio <= 1.0 {
        1.0 - ratio
    } else {
        // Any overshoot dominates the distance so "closest to the specs"
        // always prefers designs inside the spec region when one exists.
        100.0 + (ratio - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::AccuracyOracle;
    use crate::spec::WorkloadId;

    #[test]
    fn monte_carlo_hardware_is_close_to_specs() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let engine = EvalEngine::from(&evaluator);
        let hardware = HardwareSpace::paper_default(2);
        let baseline = AsicThenHwNas::fast(5);
        let accelerator =
            baseline.run_monte_carlo_hardware_with_engine(&workload, &specs, &hardware, &engine);
        // The chosen design must at least fit the area spec (area does not
        // depend on the reference architectures).
        let area = evaluator.cost_model().area_um2(&accelerator);
        assert!(area <= specs.area_um2, "area {area} exceeds the spec");
        assert!(accelerator.has_capacity());
    }

    #[test]
    fn hardware_aware_nas_finds_compliant_architectures_on_w1() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let baseline = AsicThenHwNas::fast(7);
        let (accelerator, outcome) = baseline.run_with_engine(&workload, specs, &hardware, &engine);
        assert!(accelerator.has_capacity());
        let best = outcome
            .best
            .expect("hardware-aware NAS found a compliant solution");
        assert!(best.evaluation.meets_specs());
        // Accuracy must exceed the smallest-network lower bound.
        assert!(best.evaluation.weighted_accuracy > 0.715);
        // The chosen accelerator survives in the phase summaries.
        assert_eq!(outcome.phases.len(), 2);
        assert_eq!(outcome.phases[0].name, "asic-monte-carlo");
        assert!(outcome.phases[0].detail.contains("selected accelerator"));
        assert_eq!(outcome.phases[1].name, "hw-nas");
    }

    #[test]
    fn spec_distance_penalises_overshoot() {
        assert!(spec_distance(1.2e5, 1e5) > spec_distance(0.8e5, 1e5));
        assert_eq!(spec_distance(1e5, 1e5), 0.0);
    }
}
