//! The "ASIC→HW-NAS" baseline: hardware first, then hardware-aware NAS.
//!
//! Phase 1 runs a Monte-Carlo search over accelerator designs and keeps the
//! design *closest to the specs* (the paper uses 10,000 runs).  Phase 2
//! fixes that accelerator and runs hardware-aware NAS (MnasNet-style reward:
//! accuracy minus the spec penalty) over the architectures only.  The paper
//! shows this is feasible but leaves accuracy on the table compared to true
//! co-exploration.

use crate::algorithm::{
    emit_search_finished, NullObserver, SearchAlgorithm, SearchContext, SearchEvent, SearchObserver,
};
use crate::bounds::PenaltyBounds;
use crate::candidate::Candidate;
use crate::checkpoint::{self, CheckpointSink, NullCheckpointSink, SearchCheckpoint};
use crate::engine::EvalEngine;
use crate::log::{ExploredSolution, PhaseSummary, SearchOutcome};
use crate::scenario::value::ConfigValue;
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::{Accelerator, Dataflow, HardwareSpace, SubAccelerator};
use nasaic_nn::layer::Architecture;
use nasaic_rl::{Controller, ControllerConfig, ControllerState, Segment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Pre-decoded phase-1 resume state: the Monte-Carlo RNG, the incumbent
/// `(distance, accelerator)` if any, and the samples completed.
type McResume = (StdRng, Option<(f64, Accelerator)>, usize);

/// Configuration of the ASIC→HW-NAS baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsicThenHwNas {
    /// Monte-Carlo runs of the hardware phase.
    pub monte_carlo_runs: usize,
    /// Episodes of the hardware-aware NAS phase.
    pub nas_episodes: usize,
    /// Penalty scaling used in the NAS phase reward.
    pub rho: f64,
    /// RNG seed.
    pub seed: u64,
}

impl AsicThenHwNas {
    /// The paper's scale (10,000 Monte-Carlo runs).
    pub fn paper(seed: u64) -> Self {
        Self {
            monte_carlo_runs: 10_000,
            nas_episodes: 300,
            rho: 10.0,
            seed,
        }
    }

    /// A configuration small enough for tests.
    pub fn fast(seed: u64) -> Self {
        Self {
            monte_carlo_runs: 300,
            nas_episodes: 60,
            rho: 10.0,
            seed,
        }
    }

    /// Phase 1 through a shared engine: Monte-Carlo hardware search for
    /// the design closest to the specs.  Distance is measured with
    /// mid-sized reference architectures (hardware cannot be judged
    /// without *some* network), as the relative deviation of each metric
    /// from its spec; designs exceeding a spec are penalised three-fold so
    /// "closest" designs are preferentially inside the spec region.  The
    /// sampled designs are evaluated as one parallel batch against the
    /// fixed reference architectures, and the distance scan stays
    /// sequential in sample order.
    pub fn run_monte_carlo_hardware_with_engine(
        &self,
        workload: &Workload,
        specs: &DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> Accelerator {
        self.run_monte_carlo_hardware_observed(
            workload,
            specs,
            hardware,
            engine,
            &NullObserver,
            None,
            &NullCheckpointSink,
        )
    }

    /// The hardware Monte-Carlo loop, shared by
    /// [`run_monte_carlo_hardware_with_engine`](Self::run_monte_carlo_hardware_with_engine)
    /// and the trait path.  Each sampled design is one `EpisodeEvaluated`
    /// event (accuracy-free: `weighted_accuracy` is `None`), so the trace
    /// covers the phase's engine work.
    ///
    /// Checkpoints fire between samples at `progress` = samples completed
    /// with state `{rng, best}`; the loop draws and evaluates in chunks
    /// delimited by the sink's next snapshot point, so the one-batch
    /// evaluation survives when no sink wants checkpoints.  `resume` is
    /// the pre-decoded `(rng, incumbent, samples completed)` triple.
    #[allow(clippy::too_many_arguments)]
    fn run_monte_carlo_hardware_observed(
        &self,
        workload: &Workload,
        specs: &DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<McResume>,
        sink: &dyn CheckpointSink,
    ) -> Accelerator {
        let reference: Vec<Architecture> = workload
            .tasks
            .iter()
            .map(|task| {
                let space = task.backbone.search_space();
                // Mid-point of every choice as the reference network.
                let mid: Vec<usize> = space.cardinalities().iter().map(|&c| c / 2).collect();
                task.backbone
                    .materialize(&mid)
                    .expect("mid-point candidate is always valid")
            })
            .collect();
        let runs = self.monte_carlo_runs.max(1);
        let (mut rng, mut best, mut run) =
            resume.unwrap_or_else(|| (StdRng::seed_from_u64(self.seed ^ 0xcccc), None, 0));
        assert!(
            run <= runs,
            "monte-carlo checkpoint has {run} samples, budget is {runs}"
        );
        while run < runs {
            let chunk_end = (run + 1..runs).find(|&r| sink.wants(r)).unwrap_or(runs);
            let accelerators: Vec<Accelerator> = (run..chunk_end)
                .map(|r| {
                    if r % 2 == 0 {
                        hardware.sample(&mut rng)
                    } else {
                        hardware.sample_fully_allocated(&mut rng)
                    }
                })
                .collect();
            let metrics = crate::engine::parallel_map(
                &accelerators,
                engine.config().threads,
                |accelerator| engine.hardware_metrics(&reference, accelerator),
            );
            for (r, (accelerator, metrics)) in
                (run..chunk_end).zip(accelerators.into_iter().zip(metrics))
            {
                let feasible = metrics.is_feasible();
                observer.on_event(&SearchEvent::EpisodeEvaluated {
                    episode: r,
                    evaluations: 1,
                    weighted_accuracy: None,
                    any_compliant: feasible && specs.check(&metrics).all(),
                    reward: 0.0,
                    entropy: None,
                    baseline: None,
                });
                if !feasible {
                    continue;
                }
                let distance = spec_distance(metrics.latency_cycles, specs.latency_cycles)
                    + spec_distance(metrics.energy_nj, specs.energy_nj)
                    + spec_distance(metrics.area_um2, specs.area_um2);
                if best.as_ref().is_none_or(|(d, _)| distance < *d) {
                    best = Some((distance, accelerator));
                }
            }
            run = chunk_end;
            checkpoint::offer_checkpoint(sink, observer, self.name(), self.seed, run, || {
                let mut state = ConfigValue::table();
                state.insert("phase", ConfigValue::Str("mc".to_string()));
                state.insert("rng", checkpoint::rng_state_to_value(&rng.state()));
                if let Some((distance, accelerator)) = &best {
                    let mut incumbent = ConfigValue::table();
                    incumbent.insert("distance", checkpoint::float_to_value(*distance));
                    incumbent.insert("accelerator", encode_accelerator(accelerator));
                    state.insert("best", incumbent);
                }
                state
            });
        }
        best.map(|(_, acc)| acc)
            .unwrap_or_else(|| hardware.sample_fully_allocated(&mut rng))
    }

    /// Phase 2 through a shared engine: hardware-aware NAS on a fixed
    /// accelerator design.  Revisited architectures hit both caches (the
    /// accelerator is fixed, so the hardware key only varies with the
    /// architectures).
    pub fn run_hardware_aware_nas_with_engine(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        accelerator: &Accelerator,
        engine: &EvalEngine,
    ) -> SearchOutcome {
        self.run_hardware_aware_nas_observed(
            workload,
            specs,
            accelerator,
            engine,
            &NullObserver,
            None,
            &NullCheckpointSink,
            0,
        )
    }

    /// The hardware-aware NAS loop, shared by
    /// [`run_hardware_aware_nas_with_engine`](Self::run_hardware_aware_nas_with_engine)
    /// and the trait path.
    ///
    /// Checkpoints fire per episode at `progress = progress_offset +
    /// episodes completed` (the trait path passes the Monte-Carlo run
    /// count as the offset so both phases share one progress axis) with
    /// state `{rng, controller, outcome, accelerator}`.  `resume` is the
    /// pre-decoded `(rng, controller state, outcome, episodes completed)`
    /// tuple.
    #[allow(clippy::too_many_arguments)]
    fn run_hardware_aware_nas_observed(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        accelerator: &Accelerator,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<(StdRng, ControllerState, SearchOutcome, usize)>,
        sink: &dyn CheckpointSink,
        progress_offset: usize,
    ) -> SearchOutcome {
        let segments: Vec<Segment> = workload
            .tasks
            .iter()
            .enumerate()
            .map(|(i, task)| {
                Segment::new(
                    &format!("dnn{i}-{}", task.name),
                    task.backbone.search_space().cardinalities(),
                )
            })
            .collect();
        let mut controller =
            Controller::new(segments, ControllerConfig::default(), self.seed ^ 0xdddd);
        let (mut rng, mut outcome, start_episode) = match resume {
            Some((rng, state, outcome, episode)) => {
                controller.restore_state(&state);
                (rng, outcome, episode)
            }
            None => (
                StdRng::seed_from_u64(self.seed ^ 0xeeee),
                SearchOutcome::empty(),
                0,
            ),
        };
        assert!(
            start_episode <= self.nas_episodes,
            "hw-nas checkpoint has {start_episode} episodes, budget is {}",
            self.nas_episodes
        );
        let scorer = engine.scorer(PenaltyBounds::from_specs(&specs, 3.0), self.rho);
        for episode in start_episode..self.nas_episodes {
            let sample = controller.sample(&mut rng);
            let architectures: Result<Vec<Architecture>, _> = workload
                .tasks
                .iter()
                .zip(&sample.segments)
                .map(|(task, segment)| task.backbone.materialize(segment))
                .collect();
            let Ok(architectures) = architectures else {
                controller.feedback(&sample, -self.rho);
                observer.on_event(&SearchEvent::EpisodeEvaluated {
                    episode,
                    evaluations: 0,
                    weighted_accuracy: None,
                    any_compliant: false,
                    reward: -self.rho,
                    entropy: Some(sample.mean_entropy),
                    baseline: controller.baseline(),
                });
                self.offer_nas(
                    sink,
                    observer,
                    progress_offset + episode + 1,
                    &rng,
                    &controller,
                    &outcome,
                    accelerator,
                );
                continue;
            };
            let candidate = Candidate::from_parts(architectures, accelerator.clone());
            let (evaluation, reward) = scorer.score(&candidate);
            controller.feedback(&sample, reward);
            let weighted_accuracy = evaluation.weighted_accuracy;
            let any_compliant = evaluation.meets_specs();
            outcome.record_observed(
                ExploredSolution {
                    episode,
                    candidate,
                    evaluation,
                    reward,
                },
                observer,
            );
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode,
                evaluations: 1,
                weighted_accuracy: Some(weighted_accuracy),
                any_compliant,
                reward,
                entropy: Some(sample.mean_entropy),
                baseline: controller.baseline(),
            });
            self.offer_nas(
                sink,
                observer,
                progress_offset + episode + 1,
                &rng,
                &controller,
                &outcome,
                accelerator,
            );
        }
        outcome.episodes = self.nas_episodes;
        outcome.reward_history = controller.reward_history().to_vec();
        outcome
    }

    /// Offer a NAS-phase checkpoint (see
    /// [`run_hardware_aware_nas_observed`](Self::run_hardware_aware_nas_observed)
    /// for the progress and state conventions).
    #[allow(clippy::too_many_arguments)]
    fn offer_nas(
        &self,
        sink: &dyn CheckpointSink,
        observer: &dyn SearchObserver,
        progress: usize,
        rng: &StdRng,
        controller: &Controller,
        outcome: &SearchOutcome,
        accelerator: &Accelerator,
    ) {
        checkpoint::offer_checkpoint(sink, observer, self.name(), self.seed, progress, || {
            let mut state = ConfigValue::table();
            state.insert("phase", ConfigValue::Str("nas".to_string()));
            state.insert("rng", checkpoint::rng_state_to_value(&rng.state()));
            state.insert(
                "controller",
                checkpoint::controller_state_to_value(&controller.export_state()),
            );
            state.insert("outcome", checkpoint::outcome_to_value(outcome));
            state.insert("accelerator", encode_accelerator(accelerator));
            state
        });
    }

    /// Run both phases through a shared engine; returns the chosen
    /// accelerator and the NAS outcome.  The outcome carries both phases
    /// as [`SearchOutcome::phases`] summaries (the chosen accelerator is
    /// the `asic-monte-carlo` phase's detail), so it survives when only
    /// the outcome is kept.
    pub fn run_with_engine(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> (Accelerator, SearchOutcome) {
        self.run_observed(
            workload,
            specs,
            hardware,
            engine,
            &NullObserver,
            None,
            &NullCheckpointSink,
        )
    }

    /// Both phases with phase events and summaries; shared by
    /// [`run_with_engine`](Self::run_with_engine) and the trait path.
    ///
    /// One progress axis spans both phases: `1..=max(monte_carlo_runs, 1)`
    /// are hardware samples, the rest are NAS episodes (the checkpoint's
    /// `phase` field disambiguates).  A run resumed mid-NAS skips the
    /// Monte-Carlo loop entirely — the chosen accelerator is rebuilt from
    /// the checkpoint.
    #[allow(clippy::too_many_arguments)]
    fn run_observed(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> (Accelerator, SearchOutcome) {
        let stats_start = engine.stats();
        let runs = self.monte_carlo_runs.max(1);
        let (mc_resume, nas_resume) = match resume {
            Some(cp) => {
                cp.expect_run(self.name(), self.seed);
                assert!(
                    cp.progress <= runs + self.nas_episodes,
                    "asic-then-hwnas checkpoint progress {} exceeds the total budget {}",
                    cp.progress,
                    runs + self.nas_episodes
                );
                if cp.progress <= runs {
                    (Some(cp), None)
                } else {
                    (None, Some(cp))
                }
            }
            None => (None, None),
        };

        let (accelerator, nas_state) = match nas_resume {
            Some(cp) => {
                let accelerator = decode_accelerator(
                    cp.state
                        .get("accelerator")
                        .expect("asic-then-hwnas checkpoint: accelerator"),
                );
                let rng = StdRng::from_state(
                    checkpoint::rng_state_from_value(
                        cp.state
                            .get("rng")
                            .expect("asic-then-hwnas checkpoint: rng"),
                    )
                    .expect("asic-then-hwnas checkpoint: valid rng state"),
                );
                let state = checkpoint::controller_state_from_value(
                    cp.state
                        .get("controller")
                        .expect("asic-then-hwnas checkpoint: controller"),
                )
                .expect("asic-then-hwnas checkpoint: valid controller state");
                let outcome = checkpoint::outcome_from_value(
                    cp.state
                        .get("outcome")
                        .expect("asic-then-hwnas checkpoint: outcome"),
                    workload,
                )
                .expect("asic-then-hwnas checkpoint: valid outcome");
                (accelerator, Some((rng, state, outcome, cp.progress - runs)))
            }
            None => {
                observer.on_event(&SearchEvent::PhaseStarted {
                    phase: "asic-monte-carlo".to_string(),
                    budget: self.monte_carlo_runs,
                });
                let mc_state = mc_resume.map(|cp| {
                    let rng = StdRng::from_state(
                        checkpoint::rng_state_from_value(
                            cp.state
                                .get("rng")
                                .expect("asic-then-hwnas checkpoint: rng"),
                        )
                        .expect("asic-then-hwnas checkpoint: valid rng state"),
                    );
                    let best = cp.state.get("best").map(|incumbent| {
                        let distance = checkpoint::float_from_value(
                            incumbent
                                .get("distance")
                                .expect("asic-then-hwnas checkpoint: incumbent distance"),
                        )
                        .expect("asic-then-hwnas checkpoint: valid incumbent distance");
                        let accelerator = decode_accelerator(
                            incumbent
                                .get("accelerator")
                                .expect("asic-then-hwnas checkpoint: incumbent accelerator"),
                        );
                        (distance, accelerator)
                    });
                    (rng, best, cp.progress)
                });
                let accelerator = self.run_monte_carlo_hardware_observed(
                    workload, &specs, hardware, engine, observer, mc_state, sink,
                );
                (accelerator, None)
            }
        };
        let hardware_summary = PhaseSummary {
            name: "asic-monte-carlo".to_string(),
            episodes: self.monte_carlo_runs,
            explored: 0,
            spec_compliant: 0,
            best_weighted_accuracy: None,
            detail: format!("selected accelerator: {accelerator}"),
        };
        if nas_resume.is_none() {
            observer.on_event(&SearchEvent::PhaseFinished {
                phase: "asic-monte-carlo".to_string(),
                summary: hardware_summary.clone(),
            });
            observer.on_event(&SearchEvent::PhaseStarted {
                phase: "hw-nas".to_string(),
                budget: self.nas_episodes,
            });
        }
        let mut outcome = self.run_hardware_aware_nas_observed(
            workload,
            specs,
            &accelerator,
            engine,
            observer,
            nas_state,
            sink,
            runs,
        );
        let nas_summary = PhaseSummary {
            name: "hw-nas".to_string(),
            episodes: self.nas_episodes,
            explored: outcome.explored.len(),
            spec_compliant: outcome.spec_compliant.len(),
            best_weighted_accuracy: outcome.best_weighted_accuracy(),
            detail: format!("hardware-aware NAS on the fixed design {accelerator}"),
        };
        observer.on_event(&SearchEvent::PhaseFinished {
            phase: "hw-nas".to_string(),
            summary: nas_summary.clone(),
        });
        outcome.phases = vec![hardware_summary, nas_summary];
        emit_search_finished(observer, &outcome, engine.stats().since(&stats_start));
        (accelerator, outcome)
    }
}

impl SearchAlgorithm for AsicThenHwNas {
    fn name(&self) -> &str {
        "asic-then-hwnas"
    }

    /// Run both phases over the context's workload/specs/hardware.  The
    /// outcome is the hardware-aware NAS exploration log; the chosen
    /// accelerator survives in [`SearchOutcome::phases`] (and as
    /// `PhaseFinished` events).
    ///
    /// The baseline stays on the sequential shard fallback: the NAS phase
    /// is serial (the controller learns from every episode), and the
    /// Monte-Carlo phase's output is a single accelerator whose selection
    /// scan is cheap next to the batched hardware evaluations it follows.
    fn run_checkpointed(
        &self,
        ctx: &SearchContext<'_>,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        self.run_observed(
            ctx.workload,
            ctx.specs,
            ctx.hardware,
            ctx.engine,
            ctx.observer(),
            resume,
            sink,
        )
        .1
    }
}

/// Encode an accelerator as its sub-accelerator `(dataflow, PEs,
/// bandwidth)` triples.
fn encode_accelerator(accelerator: &Accelerator) -> ConfigValue {
    ConfigValue::Array(
        accelerator
            .sub_accelerators()
            .iter()
            .map(|sub| {
                ConfigValue::Array(vec![
                    ConfigValue::Integer(sub.dataflow.index() as i64),
                    ConfigValue::Integer(sub.num_pes as i64),
                    ConfigValue::Integer(sub.bandwidth_gbps as i64),
                ])
            })
            .collect(),
    )
}

/// Decode an accelerator written by [`encode_accelerator`].
fn decode_accelerator(value: &ConfigValue) -> Accelerator {
    let subs = value
        .as_array()
        .expect("asic-then-hwnas checkpoint: accelerator is an array")
        .iter()
        .map(|sub| {
            let triple = checkpoint::usizes_from_value(sub)
                .expect("asic-then-hwnas checkpoint: valid sub-accelerator triple");
            assert_eq!(
                triple.len(),
                3,
                "asic-then-hwnas checkpoint: sub-accelerator triple must have 3 entries"
            );
            let dataflow = Dataflow::from_index(triple[0])
                .expect("asic-then-hwnas checkpoint: known dataflow index");
            SubAccelerator::new(dataflow, triple[1], triple[2])
        })
        .collect();
    Accelerator::new(subs)
}

fn spec_distance(value: f64, spec: f64) -> f64 {
    let ratio = value / spec;
    if ratio <= 1.0 {
        1.0 - ratio
    } else {
        // Any overshoot dominates the distance so "closest to the specs"
        // always prefers designs inside the spec region when one exists.
        100.0 + (ratio - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{AccuracyOracle, Evaluator};
    use crate::spec::WorkloadId;

    #[test]
    fn monte_carlo_hardware_is_close_to_specs() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let engine = EvalEngine::from(&evaluator);
        let hardware = HardwareSpace::paper_default(2);
        let baseline = AsicThenHwNas::fast(5);
        let accelerator =
            baseline.run_monte_carlo_hardware_with_engine(&workload, &specs, &hardware, &engine);
        // The chosen design must at least fit the area spec (area does not
        // depend on the reference architectures).
        let area = evaluator.cost_model().area_um2(&accelerator);
        assert!(area <= specs.area_um2, "area {area} exceeds the spec");
        assert!(accelerator.has_capacity());
    }

    #[test]
    fn hardware_aware_nas_finds_compliant_architectures_on_w1() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let baseline = AsicThenHwNas::fast(7);
        let (accelerator, outcome) = baseline.run_with_engine(&workload, specs, &hardware, &engine);
        assert!(accelerator.has_capacity());
        let best = outcome
            .best
            .expect("hardware-aware NAS found a compliant solution");
        assert!(best.evaluation.meets_specs());
        // Accuracy must exceed the smallest-network lower bound.
        assert!(best.evaluation.weighted_accuracy > 0.715);
        // The chosen accelerator survives in the phase summaries.
        assert_eq!(outcome.phases.len(), 2);
        assert_eq!(outcome.phases[0].name, "asic-monte-carlo");
        assert!(outcome.phases[0].detail.contains("selected accelerator"));
        assert_eq!(outcome.phases[1].name, "hw-nas");
    }

    #[test]
    fn spec_distance_penalises_overshoot() {
        assert!(spec_distance(1.2e5, 1e5) > spec_distance(0.8e5, 1e5));
        assert_eq!(spec_distance(1e5, 1e5), 0.0);
    }
}
