//! The "NAS→ASIC" baseline: successive NAS and ASIC design optimisation.
//!
//! Phase 1 runs conventional, accuracy-only NAS (Zoph & Le style) per task:
//! an RL controller whose reward is the architecture's accuracy with no
//! hardware term.  Phase 2 keeps the identified architectures fixed and
//! brute-forces accelerator designs, keeping the design that comes closest
//! to the specs.  Table I of the paper shows that no accelerator design can
//! rescue the architectures NAS picks — they violate the specs on every
//! workload.

use crate::algorithm::{
    emit_search_finished, NullObserver, SearchAlgorithm, SearchContext, SearchEvent, SearchObserver,
};
use crate::candidate::Candidate;
use crate::engine::EvalEngine;
use crate::evaluator::Evaluator;
use crate::log::{ExploredSolution, PhaseSummary, SearchOutcome};
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use nasaic_nn::layer::Architecture;
use nasaic_rl::{Controller, ControllerConfig, Segment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the NAS→ASIC baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NasThenAsic {
    /// Episodes of the accuracy-only NAS phase (per task).
    pub nas_episodes: usize,
    /// Number of random accelerator designs swept in the ASIC phase.
    pub hardware_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl NasThenAsic {
    /// A configuration comparable to the paper's baseline effort.
    pub fn paper(seed: u64) -> Self {
        Self {
            nas_episodes: 200,
            hardware_samples: 500,
            seed,
        }
    }

    /// A configuration small enough for tests.
    pub fn fast(seed: u64) -> Self {
        Self {
            nas_episodes: 60,
            hardware_samples: 60,
            seed,
        }
    }

    /// Phase 1: accuracy-only NAS for every task of the workload.
    /// Returns one architecture per task.
    ///
    /// Every call silently builds a throwaway [`EvalEngine`] whose caches
    /// start cold and die with the call.
    #[deprecated(
        note = "builds a throwaway cold EvalEngine per call; share one engine via \
                `run_nas_with_engine` or run the whole baseline through `SearchAlgorithm::run`"
    )]
    pub fn run_nas(&self, workload: &Workload, evaluator: &Evaluator) -> Vec<Architecture> {
        self.run_nas_with_engine(workload, &EvalEngine::from(evaluator))
    }

    /// [`run_nas`](Self::run_nas) through a shared engine: repeat visits to
    /// an architecture (common late in NAS convergence) hit the accuracy
    /// cache instead of re-querying the oracle.
    pub fn run_nas_with_engine(
        &self,
        workload: &Workload,
        engine: &EvalEngine,
    ) -> Vec<Architecture> {
        self.run_nas_observed(workload, engine, &NullObserver)
    }

    /// The NAS loop, shared by [`run_nas_with_engine`](Self::run_nas_with_engine)
    /// and the trait path.  Episode events are numbered
    /// `task_index * nas_episodes + episode` across the per-task searches.
    fn run_nas_observed(
        &self,
        workload: &Workload,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
    ) -> Vec<Architecture> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xaaaa);
        workload
            .tasks
            .iter()
            .enumerate()
            .map(|(task_index, task)| {
                let space = task.backbone.search_space();
                let segments = vec![Segment::new(&task.name, space.cardinalities())];
                let mut controller = Controller::new(
                    segments,
                    ControllerConfig::default(),
                    self.seed + task_index as u64,
                );
                let mut best: Option<(f64, Architecture)> = None;
                for episode in 0..self.nas_episodes {
                    let sample = controller.sample(&mut rng);
                    let (accuracy, evaluated) = match task.backbone.materialize(&sample.segments[0])
                    {
                        Ok(arch) => {
                            // Evaluate against the task whose backbone
                            // generated the architecture (a one-element
                            // `accuracies` slice would zip against task 0
                            // and score e.g. a U-Net with the CIFAR-10
                            // calibration curve).
                            let accuracy = engine.accuracy_for_task(task_index, &arch);
                            if best.as_ref().is_none_or(|(a, _)| accuracy > *a) {
                                best = Some((accuracy, arch));
                            }
                            (accuracy, 1)
                        }
                        Err(_) => (0.0, 0),
                    };
                    // Mono-objective reward: accuracy only (paper's NAS [1]);
                    // undecodable samples feed a flat zero.
                    controller.feedback(&sample, accuracy);
                    observer.on_event(&SearchEvent::EpisodeEvaluated {
                        episode: task_index * self.nas_episodes + episode,
                        evaluations: evaluated,
                        weighted_accuracy: None,
                        any_compliant: false,
                        reward: accuracy,
                        entropy: Some(sample.mean_entropy),
                        baseline: controller.baseline(),
                    });
                }
                best.expect("NAS explored at least one architecture").1
            })
            .collect()
    }

    /// Phase 2: brute-force hardware exploration for fixed architectures.
    /// Returns the full exploration log; the "result" of the baseline is
    /// the explored design with the smallest spec violation (or the most
    /// accurate compliant design if one exists).
    ///
    /// Every call silently builds a throwaway [`EvalEngine`] whose caches
    /// start cold and die with the call.
    #[deprecated(
        note = "builds a throwaway cold EvalEngine per call; share one engine via \
                `run_asic_sweep_with_engine` or run the whole baseline through \
                `SearchAlgorithm::run`"
    )]
    pub fn run_asic_sweep(
        &self,
        architectures: &[Architecture],
        hardware: &HardwareSpace,
        evaluator: &Evaluator,
    ) -> SearchOutcome {
        self.run_asic_sweep_with_engine(architectures, hardware, &EvalEngine::from(evaluator))
    }

    /// [`run_asic_sweep`](Self::run_asic_sweep) through a shared engine:
    /// the fixed architectures make every sweep sample share one accuracy
    /// query, and the hardware designs evaluate as one parallel batch.
    pub fn run_asic_sweep_with_engine(
        &self,
        architectures: &[Architecture],
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> SearchOutcome {
        self.run_asic_sweep_observed(architectures, hardware, engine, &NullObserver)
    }

    /// The sweep loop, shared by
    /// [`run_asic_sweep_with_engine`](Self::run_asic_sweep_with_engine)
    /// and the trait path.
    fn run_asic_sweep_observed(
        &self,
        architectures: &[Architecture],
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
    ) -> SearchOutcome {
        // Warm the accuracy cache once up front: every sweep sample shares
        // these fixed architectures, so the parallel batch below can never
        // race duplicate oracle queries for them.
        engine.accuracies(architectures);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xbbbb);
        let mut outcome = SearchOutcome::empty();
        let candidates: Vec<Candidate> = (0..self.hardware_samples)
            .map(|episode| {
                let accelerator = if episode % 2 == 0 {
                    hardware.sample_fully_allocated(&mut rng)
                } else {
                    hardware.sample(&mut rng)
                };
                Candidate::from_parts(architectures.to_vec(), accelerator)
            })
            .collect();
        let evaluations = engine.evaluate_batch(&candidates);
        for (episode, (candidate, evaluation)) in
            candidates.into_iter().zip(evaluations).enumerate()
        {
            let weighted_accuracy = evaluation.weighted_accuracy;
            let any_compliant = evaluation.meets_specs();
            outcome.record_observed(
                ExploredSolution {
                    episode,
                    candidate,
                    evaluation,
                    reward: 0.0,
                },
                observer,
            );
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode,
                evaluations: 1,
                weighted_accuracy: Some(weighted_accuracy),
                any_compliant,
                reward: 0.0,
                entropy: None,
                baseline: None,
            });
        }
        outcome.episodes = self.hardware_samples;
        outcome
    }

    /// Run both phases and return the exploration outcome together with the
    /// least-violating design (by number of violated specs, then by
    /// normalised excess), which is what the paper reports in Table I.
    ///
    /// Every call silently builds a throwaway [`EvalEngine`] whose caches
    /// start cold and die with the call.
    #[deprecated(
        note = "builds a throwaway cold EvalEngine per call; share one engine via \
                `run_with_engine` or run through `SearchAlgorithm::run` with a `SearchContext`"
    )]
    pub fn run(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        evaluator: &Evaluator,
    ) -> (SearchOutcome, Option<ExploredSolution>) {
        self.run_with_engine(workload, specs, hardware, &EvalEngine::from(evaluator))
    }

    /// [`run`](Self::run) through a shared engine.  The outcome (the ASIC
    /// sweep's exploration log) carries both phases as
    /// [`SearchOutcome::phases`] summaries, so the NAS result and the
    /// representative design are no longer lost when only the outcome is
    /// kept.
    pub fn run_with_engine(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> (SearchOutcome, Option<ExploredSolution>) {
        self.run_observed(workload, specs, hardware, engine, &NullObserver)
    }

    /// Both phases with phase events and summaries; shared by
    /// [`run_with_engine`](Self::run_with_engine) and the trait path.
    fn run_observed(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
    ) -> (SearchOutcome, Option<ExploredSolution>) {
        let stats_start = engine.stats();
        let nas_budget = self.nas_episodes * workload.num_tasks();
        observer.on_event(&SearchEvent::PhaseStarted {
            phase: "nas".to_string(),
            budget: nas_budget,
        });
        let architectures = self.run_nas_observed(workload, engine, observer);
        // The chosen architectures' accuracies are cached from the NAS
        // loop, so summarising them here is free.
        let nas_summary = PhaseSummary {
            name: "nas".to_string(),
            episodes: nas_budget,
            explored: 0,
            spec_compliant: 0,
            best_weighted_accuracy: Some(
                engine.weighted_accuracy(&engine.accuracies(&architectures)),
            ),
            detail: format!(
                "architectures: {}",
                architectures
                    .iter()
                    .map(Architecture::hyperparameter_string)
                    .collect::<Vec<_>>()
                    .join(" & ")
            ),
        };
        observer.on_event(&SearchEvent::PhaseFinished {
            phase: "nas".to_string(),
            summary: nas_summary.clone(),
        });

        observer.on_event(&SearchEvent::PhaseStarted {
            phase: "asic-sweep".to_string(),
            budget: self.hardware_samples,
        });
        let mut outcome = self.run_asic_sweep_observed(&architectures, hardware, engine, observer);
        let representative = outcome
            .best
            .clone()
            .or_else(|| least_violating(&outcome, &specs));
        let sweep_summary = PhaseSummary {
            name: "asic-sweep".to_string(),
            episodes: self.hardware_samples,
            explored: outcome.explored.len(),
            spec_compliant: outcome.spec_compliant.len(),
            best_weighted_accuracy: outcome.best_weighted_accuracy(),
            detail: match &representative {
                Some(solution) => format!(
                    "representative ({} violation(s)): {}",
                    solution.evaluation.spec_check.violations(),
                    solution.candidate.summary()
                ),
                None => "no design explored".to_string(),
            },
        };
        observer.on_event(&SearchEvent::PhaseFinished {
            phase: "asic-sweep".to_string(),
            summary: sweep_summary.clone(),
        });
        outcome.phases = vec![nas_summary, sweep_summary];
        emit_search_finished(observer, &outcome, engine.stats().since(&stats_start));
        (outcome, representative)
    }
}

impl SearchAlgorithm for NasThenAsic {
    fn name(&self) -> &str {
        "nas-then-asic"
    }

    /// Run both phases over the context's workload/specs/hardware.  The
    /// outcome is the ASIC sweep's exploration log; the NAS result and the
    /// least-violating representative survive in
    /// [`SearchOutcome::phases`] (and as `PhaseFinished` events).
    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        self.run_observed(
            ctx.workload,
            ctx.specs,
            ctx.hardware,
            ctx.engine,
            ctx.observer(),
        )
        .0
    }
}

/// The explored solution with the fewest violated specs, ties broken by the
/// smallest total relative excess over the specs.
pub fn least_violating(outcome: &SearchOutcome, specs: &DesignSpecs) -> Option<ExploredSolution> {
    outcome
        .explored
        .iter()
        .min_by(|a, b| {
            let key = |s: &ExploredSolution| {
                let v = s.evaluation.spec_check.violations() as f64;
                let m = &s.evaluation.metrics;
                let excess = (m.latency_cycles / specs.latency_cycles - 1.0).max(0.0)
                    + (m.energy_nj / specs.energy_nj - 1.0).max(0.0)
                    + (m.area_um2 / specs.area_um2 - 1.0).max(0.0);
                v * 10.0 + if excess.is_finite() { excess } else { 1e6 }
            };
            key(a).total_cmp(&key(b))
        })
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::AccuracyOracle;
    use crate::spec::WorkloadId;

    #[test]
    fn nas_phase_finds_high_accuracy_architectures() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let engine = EvalEngine::from(&evaluator);
        let baseline = NasThenAsic::fast(1);
        let architectures = baseline.run_nas_with_engine(&workload, &engine);
        assert_eq!(architectures.len(), 2);
        let accuracies = evaluator.accuracies(&architectures);
        // Accuracy-only NAS should land well above the mid-point of the
        // accuracy range (78.9% .. 94.6%).
        for acc in accuracies {
            assert!(acc > 0.90, "NAS accuracy too low: {acc}");
        }
    }

    #[test]
    fn asic_sweep_cannot_rescue_accuracy_optimal_architectures_on_w1() {
        // The paper's core claim for Table I: for the architectures that
        // NAS identifies, no explored accelerator design meets the specs.
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let baseline = NasThenAsic::fast(2);
        let (outcome, representative) =
            baseline.run_with_engine(&workload, specs, &hardware, &engine);
        assert!(
            outcome.best.is_none(),
            "NAS->ASIC unexpectedly met the specs"
        );
        let representative = representative.expect("sweep explored designs");
        assert!(!representative.evaluation.meets_specs());
        assert!(representative.evaluation.spec_check.violations() >= 1);
        // Both phases survive in the outcome instead of being dropped.
        assert_eq!(outcome.phases.len(), 2);
        assert_eq!(outcome.phases[0].name, "nas");
        assert_eq!(outcome.phases[1].name, "asic-sweep");
        assert!(outcome.phases[1].detail.contains("representative"));
    }

    #[test]
    fn least_violating_prefers_fewer_violations() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let baseline = NasThenAsic::fast(3);
        let architectures = baseline.run_nas_with_engine(&workload, &engine);
        let outcome = baseline.run_asic_sweep_with_engine(&architectures, &hardware, &engine);
        let best = least_violating(&outcome, &specs).unwrap();
        let min_violations = outcome
            .explored
            .iter()
            .map(|s| s.evaluation.spec_check.violations())
            .min()
            .unwrap();
        assert_eq!(best.evaluation.spec_check.violations(), min_violations);
    }
}
