//! The "NAS→ASIC" baseline: successive NAS and ASIC design optimisation.
//!
//! Phase 1 runs conventional, accuracy-only NAS (Zoph & Le style) per task:
//! an RL controller whose reward is the architecture's accuracy with no
//! hardware term.  Phase 2 keeps the identified architectures fixed and
//! brute-forces accelerator designs, keeping the design that comes closest
//! to the specs.  Table I of the paper shows that no accelerator design can
//! rescue the architectures NAS picks — they violate the specs on every
//! workload.

use crate::algorithm::{
    emit_search_finished, NullObserver, SearchAlgorithm, SearchContext, SearchEvent, SearchObserver,
};
use crate::candidate::Candidate;
use crate::checkpoint::{
    self, CheckpointSink, NullCheckpointSink, SearchCheckpoint, ShardMode, ShardPartial, ShardPlan,
};
use crate::engine::EvalEngine;
use crate::log::{ExploredSolution, PhaseSummary, SearchOutcome};
use crate::scenario::value::ConfigValue;
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use nasaic_nn::layer::Architecture;
use nasaic_rl::{Controller, ControllerConfig, Segment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the NAS→ASIC baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NasThenAsic {
    /// Episodes of the accuracy-only NAS phase (per task).
    pub nas_episodes: usize,
    /// Number of random accelerator designs swept in the ASIC phase.
    pub hardware_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl NasThenAsic {
    /// A configuration comparable to the paper's baseline effort.
    pub fn paper(seed: u64) -> Self {
        Self {
            nas_episodes: 200,
            hardware_samples: 500,
            seed,
        }
    }

    /// A configuration small enough for tests.
    pub fn fast(seed: u64) -> Self {
        Self {
            nas_episodes: 60,
            hardware_samples: 60,
            seed,
        }
    }

    /// Phase 1 through a shared engine: repeat visits to an architecture
    /// (common late in NAS convergence) hit the accuracy cache instead of
    /// re-querying the oracle.  Returns one architecture per task.
    pub fn run_nas_with_engine(
        &self,
        workload: &Workload,
        engine: &EvalEngine,
    ) -> Vec<Architecture> {
        self.run_nas_observed(workload, engine, &NullObserver, None, &NullCheckpointSink)
    }

    /// The NAS loop, shared by [`run_nas_with_engine`](Self::run_nas_with_engine)
    /// and the trait path.  Episode events are numbered
    /// `task_index * nas_episodes + episode` across the per-task searches.
    ///
    /// Checkpoints fire per NAS episode at `progress = task_index *
    /// nas_episodes + episode + 1` carrying the shared RNG, the finished
    /// tasks' architectures (`done`), and — mid-task — the live
    /// controller state and the incumbent; at a task boundary
    /// (`progress % nas_episodes == 0`) the controller and incumbent are
    /// dropped, and resume builds a fresh controller for the next task.
    fn run_nas_observed(
        &self,
        workload: &Workload,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> Vec<Architecture> {
        let (mut rng, mut architectures, start_task, start_episode, mut resume_controller) =
            match resume {
                Some(cp) => {
                    let nas_budget = self.nas_episodes * workload.num_tasks();
                    assert!(
                        cp.progress <= nas_budget,
                        "NAS checkpoint progress {} exceeds the {}-episode NAS budget",
                        cp.progress,
                        nas_budget
                    );
                    let rng = StdRng::from_state(
                        checkpoint::rng_state_from_value(
                            cp.state.get("rng").expect("nas-then-asic checkpoint: rng"),
                        )
                        .expect("nas-then-asic checkpoint: valid rng state"),
                    );
                    let task_index = cp.progress / self.nas_episodes.max(1);
                    let architectures = decode_architectures(
                        cp.state
                            .get("done")
                            .expect("nas-then-asic checkpoint: done architectures"),
                        workload,
                        task_index,
                    );
                    let controller = cp.state.get("controller").map(|value| {
                        checkpoint::controller_state_from_value(value)
                            .expect("nas-then-asic checkpoint: valid controller state")
                    });
                    let episode = cp.progress % self.nas_episodes.max(1);
                    (rng, architectures, task_index, episode, controller)
                }
                None => (
                    StdRng::seed_from_u64(self.seed ^ 0xaaaa),
                    Vec::new(),
                    0,
                    0,
                    None,
                ),
            };
        let mut resume_best = resume.and_then(|cp| {
            cp.state.get("best").map(|incumbent| {
                let accuracy = checkpoint::float_from_value(
                    incumbent
                        .get("accuracy")
                        .expect("nas-then-asic checkpoint: incumbent accuracy"),
                )
                .expect("nas-then-asic checkpoint: valid incumbent accuracy");
                let values = checkpoint::usizes_from_value(
                    incumbent
                        .get("values")
                        .expect("nas-then-asic checkpoint: incumbent values"),
                )
                .expect("nas-then-asic checkpoint: valid incumbent values");
                let arch = workload.tasks[start_task]
                    .backbone
                    .materialize_values(&values);
                (accuracy, arch)
            })
        });

        for task_index in start_task..workload.num_tasks() {
            let task = &workload.tasks[task_index];
            let space = task.backbone.search_space();
            let segments = vec![Segment::new(&task.name, space.cardinalities())];
            let mut controller = Controller::new(
                segments,
                ControllerConfig::default(),
                self.seed + task_index as u64,
            );
            let mut best: Option<(f64, Architecture)> = None;
            let mut first_episode = 0;
            if task_index == start_task {
                if let Some(state) = resume_controller.take() {
                    controller.restore_state(&state);
                }
                best = resume_best.take();
                first_episode = start_episode;
            }
            for episode in first_episode..self.nas_episodes {
                let sample = controller.sample(&mut rng);
                let (accuracy, evaluated) = match task.backbone.materialize(&sample.segments[0]) {
                    Ok(arch) => {
                        // Evaluate against the task whose backbone
                        // generated the architecture (a one-element
                        // `accuracies` slice would zip against task 0
                        // and score e.g. a U-Net with the CIFAR-10
                        // calibration curve).
                        let accuracy = engine.accuracy_for_task(task_index, &arch);
                        if best.as_ref().is_none_or(|(a, _)| accuracy > *a) {
                            best = Some((accuracy, arch));
                        }
                        (accuracy, 1)
                    }
                    Err(_) => (0.0, 0),
                };
                // Mono-objective reward: accuracy only (paper's NAS [1]);
                // undecodable samples feed a flat zero.
                controller.feedback(&sample, accuracy);
                observer.on_event(&SearchEvent::EpisodeEvaluated {
                    episode: task_index * self.nas_episodes + episode,
                    evaluations: evaluated,
                    weighted_accuracy: None,
                    any_compliant: false,
                    reward: accuracy,
                    entropy: Some(sample.mean_entropy),
                    baseline: controller.baseline(),
                });
                if episode + 1 < self.nas_episodes {
                    self.offer_nas(
                        sink,
                        observer,
                        task_index * self.nas_episodes + episode + 1,
                        &rng,
                        &architectures,
                        Some(&controller),
                        best.as_ref(),
                    );
                }
            }
            architectures.push(best.expect("NAS explored at least one architecture").1);
            self.offer_nas(
                sink,
                observer,
                (task_index + 1) * self.nas_episodes,
                &rng,
                &architectures,
                None,
                None,
            );
        }
        architectures
    }

    /// Offer a NAS-phase checkpoint (see
    /// [`run_nas_observed`](Self::run_nas_observed) for the progress and
    /// state conventions).
    #[allow(clippy::too_many_arguments)]
    fn offer_nas(
        &self,
        sink: &dyn CheckpointSink,
        observer: &dyn SearchObserver,
        progress: usize,
        rng: &StdRng,
        architectures: &[Architecture],
        controller: Option<&Controller>,
        best: Option<&(f64, Architecture)>,
    ) {
        checkpoint::offer_checkpoint(sink, observer, self.name(), self.seed, progress, || {
            let mut state = ConfigValue::table();
            state.insert("phase", ConfigValue::Str("nas".to_string()));
            state.insert("rng", checkpoint::rng_state_to_value(&rng.state()));
            state.insert("done", encode_architectures(architectures));
            if let Some(controller) = controller {
                state.insert(
                    "controller",
                    checkpoint::controller_state_to_value(&controller.export_state()),
                );
            }
            if let Some((accuracy, arch)) = best {
                let mut incumbent = ConfigValue::table();
                incumbent.insert("accuracy", checkpoint::float_to_value(*accuracy));
                incumbent.insert("values", checkpoint::usizes_to_value(&arch.hyperparameters));
                state.insert("best", incumbent);
            }
            state
        });
    }

    /// Phase 2 through a shared engine: brute-force hardware exploration
    /// for fixed architectures.  The fixed architectures make every sweep
    /// sample share one accuracy query, and the hardware designs evaluate
    /// as one parallel batch.  Returns the full exploration log; the
    /// "result" of the baseline is the explored design with the smallest
    /// spec violation (or the most accurate compliant design if one
    /// exists).
    pub fn run_asic_sweep_with_engine(
        &self,
        architectures: &[Architecture],
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> SearchOutcome {
        self.run_asic_sweep_observed(
            architectures,
            hardware,
            engine,
            &NullObserver,
            None,
            &NullCheckpointSink,
            0,
        )
    }

    /// The sweep loop, shared by
    /// [`run_asic_sweep_with_engine`](Self::run_asic_sweep_with_engine)
    /// and the trait path.
    ///
    /// Checkpoints fire between samples at `progress = progress_offset +
    /// samples completed` (the trait path passes the NAS budget as the
    /// offset so both phases share one progress axis) with state `{rng,
    /// done, outcome}`; the loop draws and evaluates in chunks delimited
    /// by the sink's next snapshot point, so the one-batch evaluation
    /// survives when no sink wants checkpoints.  `resume` is the
    /// pre-decoded `(rng, outcome, samples completed)` triple — the
    /// caller owns the workload needed to rebuild the outcome's
    /// candidates.
    #[allow(clippy::too_many_arguments)]
    fn run_asic_sweep_observed(
        &self,
        architectures: &[Architecture],
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<(StdRng, SearchOutcome, usize)>,
        sink: &dyn CheckpointSink,
        progress_offset: usize,
    ) -> SearchOutcome {
        // Warm the accuracy cache once up front: every sweep sample shares
        // these fixed architectures, so the parallel batch below can never
        // race duplicate oracle queries for them.
        engine.accuracies(architectures);
        let (mut rng, mut outcome, mut sample) = resume.unwrap_or_else(|| {
            (
                StdRng::seed_from_u64(self.seed ^ 0xbbbb),
                SearchOutcome::empty(),
                0,
            )
        });
        assert!(
            sample <= self.hardware_samples,
            "sweep checkpoint has {} samples, budget is {}",
            sample,
            self.hardware_samples
        );
        while sample < self.hardware_samples {
            let chunk_end = (sample + 1..self.hardware_samples)
                .find(|&s| sink.wants(progress_offset + s))
                .unwrap_or(self.hardware_samples);
            let candidates: Vec<Candidate> = (sample..chunk_end)
                .map(|episode| {
                    let accelerator = if episode % 2 == 0 {
                        hardware.sample_fully_allocated(&mut rng)
                    } else {
                        hardware.sample(&mut rng)
                    };
                    Candidate::from_parts(architectures.to_vec(), accelerator)
                })
                .collect();
            let evaluations = engine.evaluate_batch(&candidates);
            for (episode, (candidate, evaluation)) in
                (sample..chunk_end).zip(candidates.into_iter().zip(evaluations))
            {
                let weighted_accuracy = evaluation.weighted_accuracy;
                let any_compliant = evaluation.meets_specs();
                outcome.record_observed(
                    ExploredSolution {
                        episode,
                        candidate,
                        evaluation,
                        reward: 0.0,
                    },
                    observer,
                );
                observer.on_event(&SearchEvent::EpisodeEvaluated {
                    episode,
                    evaluations: 1,
                    weighted_accuracy: Some(weighted_accuracy),
                    any_compliant,
                    reward: 0.0,
                    entropy: None,
                    baseline: None,
                });
            }
            sample = chunk_end;
            outcome.episodes = sample;
            checkpoint::offer_checkpoint(
                sink,
                observer,
                self.name(),
                self.seed,
                progress_offset + sample,
                || {
                    let mut state = ConfigValue::table();
                    state.insert("phase", ConfigValue::Str("sweep".to_string()));
                    state.insert("rng", checkpoint::rng_state_to_value(&rng.state()));
                    state.insert("done", encode_architectures(architectures));
                    state.insert("outcome", checkpoint::outcome_to_value(&outcome));
                    state
                },
            );
        }
        outcome.episodes = self.hardware_samples;
        outcome
    }

    /// Run both phases through a shared engine.  The outcome (the ASIC
    /// sweep's exploration log) carries both phases as
    /// [`SearchOutcome::phases`] summaries, so the NAS result and the
    /// representative design are no longer lost when only the outcome is
    /// kept; the returned solution is the least-violating design (by
    /// number of violated specs, then by normalised excess), which is what
    /// the paper reports in Table I.
    pub fn run_with_engine(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> (SearchOutcome, Option<ExploredSolution>) {
        self.run_observed(
            workload,
            specs,
            hardware,
            engine,
            &NullObserver,
            None,
            &NullCheckpointSink,
        )
    }

    /// Both phases with phase events and summaries; shared by
    /// [`run_with_engine`](Self::run_with_engine) and the trait path.
    ///
    /// One progress axis spans both phases: `1..=nas_budget` are NAS
    /// episodes, `nas_budget+1..=nas_budget+hardware_samples` are sweep
    /// samples (the checkpoint's `phase` field disambiguates).  A run
    /// resumed mid-sweep skips the NAS loop entirely — the architectures
    /// are rebuilt from the checkpoint and the NAS phase summary is
    /// recomputed from them (a pure function of the engine's caches).
    #[allow(clippy::too_many_arguments)]
    fn run_observed(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> (SearchOutcome, Option<ExploredSolution>) {
        let stats_start = engine.stats();
        let nas_budget = self.nas_episodes * workload.num_tasks();
        let (nas_resume, sweep_resume) = match resume {
            Some(cp) => {
                cp.expect_run(self.name(), self.seed);
                assert!(
                    cp.progress <= nas_budget + self.hardware_samples,
                    "nas-then-asic checkpoint progress {} exceeds the total budget {}",
                    cp.progress,
                    nas_budget + self.hardware_samples
                );
                if cp.progress <= nas_budget {
                    (Some(cp), None)
                } else {
                    (None, Some(cp))
                }
            }
            None => (None, None),
        };

        let (architectures, sweep_state) = match sweep_resume {
            Some(cp) => {
                let architectures = decode_architectures(
                    cp.state
                        .get("done")
                        .expect("nas-then-asic checkpoint: done architectures"),
                    workload,
                    workload.num_tasks(),
                );
                let rng = StdRng::from_state(
                    checkpoint::rng_state_from_value(
                        cp.state.get("rng").expect("nas-then-asic checkpoint: rng"),
                    )
                    .expect("nas-then-asic checkpoint: valid rng state"),
                );
                let outcome = checkpoint::outcome_from_value(
                    cp.state
                        .get("outcome")
                        .expect("nas-then-asic checkpoint: outcome"),
                    workload,
                )
                .expect("nas-then-asic checkpoint: valid outcome");
                (
                    architectures,
                    Some((rng, outcome, cp.progress - nas_budget)),
                )
            }
            None => {
                observer.on_event(&SearchEvent::PhaseStarted {
                    phase: "nas".to_string(),
                    budget: nas_budget,
                });
                let architectures =
                    self.run_nas_observed(workload, engine, observer, nas_resume, sink);
                (architectures, None)
            }
        };
        // The chosen architectures' accuracies are cached from the NAS
        // loop, so summarising them here is free.
        let nas_summary = self.nas_summary(engine, nas_budget, &architectures);
        if sweep_resume.is_none() {
            observer.on_event(&SearchEvent::PhaseFinished {
                phase: "nas".to_string(),
                summary: nas_summary.clone(),
            });
            observer.on_event(&SearchEvent::PhaseStarted {
                phase: "asic-sweep".to_string(),
                budget: self.hardware_samples,
            });
        }
        let mut outcome = self.run_asic_sweep_observed(
            &architectures,
            hardware,
            engine,
            observer,
            sweep_state,
            sink,
            nas_budget,
        );
        let representative = outcome
            .best
            .clone()
            .or_else(|| least_violating(&outcome, &specs));
        let sweep_summary = self.sweep_summary(&outcome, representative.as_ref());
        observer.on_event(&SearchEvent::PhaseFinished {
            phase: "asic-sweep".to_string(),
            summary: sweep_summary.clone(),
        });
        outcome.phases = vec![nas_summary, sweep_summary];
        emit_search_finished(observer, &outcome, engine.stats().since(&stats_start));
        (outcome, representative)
    }

    /// The NAS phase summary — a pure function of the chosen architectures
    /// and the engine, so both the plain run and the shard merge compute
    /// the same one.
    fn nas_summary(
        &self,
        engine: &EvalEngine,
        nas_budget: usize,
        architectures: &[Architecture],
    ) -> PhaseSummary {
        PhaseSummary {
            name: "nas".to_string(),
            episodes: nas_budget,
            explored: 0,
            spec_compliant: 0,
            best_weighted_accuracy: Some(
                engine.weighted_accuracy(&engine.accuracies(architectures)),
            ),
            detail: format!(
                "architectures: {}",
                architectures
                    .iter()
                    .map(Architecture::hyperparameter_string)
                    .collect::<Vec<_>>()
                    .join(" & ")
            ),
        }
    }

    /// The sweep phase summary — a pure function of the (full) sweep
    /// outcome and its representative, shared by the plain run and
    /// [`SearchAlgorithm::merge_shards`].
    fn sweep_summary(
        &self,
        outcome: &SearchOutcome,
        representative: Option<&ExploredSolution>,
    ) -> PhaseSummary {
        PhaseSummary {
            name: "asic-sweep".to_string(),
            episodes: self.hardware_samples,
            explored: outcome.explored.len(),
            spec_compliant: outcome.spec_compliant.len(),
            best_weighted_accuracy: outcome.best_weighted_accuracy(),
            detail: match representative {
                Some(solution) => format!(
                    "representative ({} violation(s)): {}",
                    solution.evaluation.spec_check.violations(),
                    solution.candidate.summary()
                ),
                None => "no design explored".to_string(),
            },
        }
    }
}

impl SearchAlgorithm for NasThenAsic {
    fn name(&self) -> &str {
        "nas-then-asic"
    }

    /// Run both phases over the context's workload/specs/hardware.  The
    /// outcome is the ASIC sweep's exploration log; the NAS result and the
    /// least-violating representative survive in
    /// [`SearchOutcome::phases`] (and as `PhaseFinished` events).
    fn run_checkpointed(
        &self,
        ctx: &SearchContext<'_>,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        self.run_observed(
            ctx.workload,
            ctx.specs,
            ctx.hardware,
            ctx.engine,
            ctx.observer(),
            resume,
            sink,
        )
        .0
    }

    /// The sweep's samples are independent: stride them across the
    /// shards.  The NAS phase is *redundant* — every shard re-runs it
    /// (it is deterministic and cheap next to the sweep), so each worker
    /// holds the architectures without any cross-shard handoff.
    fn shard_plan(&self, _ctx: &SearchContext<'_>, shards: usize) -> ShardPlan {
        ShardPlan::strided(self.name(), shards, self.hardware_samples)
    }

    /// Re-run NAS, redraw the full sweep stream (keeping the RNG identical
    /// to the single-process run), evaluate only this shard's stride, and
    /// key the solutions by draw index for the replay merge.  Shard 0's
    /// partial carries the NAS phase summary; the sweep summary is
    /// rebuilt at merge time from the merged outcome.
    fn run_shard(
        &self,
        ctx: &SearchContext<'_>,
        plan: &ShardPlan,
        shard_index: usize,
    ) -> ShardPartial {
        assert!(
            shard_index < plan.shards,
            "shard index {shard_index} out of range for {} shards",
            plan.shards
        );
        assert_eq!(
            plan.mode,
            ShardMode::Strided,
            "nas-then-asic plans are strided"
        );
        let observer = ctx.observer();
        let stats_start = ctx.engine.stats();
        let nas_budget = self.nas_episodes * ctx.workload.num_tasks();
        observer.on_event(&SearchEvent::PhaseStarted {
            phase: "nas".to_string(),
            budget: nas_budget,
        });
        let architectures = self.run_nas_observed(
            ctx.workload,
            ctx.engine,
            observer,
            None,
            &NullCheckpointSink,
        );
        let nas_summary = self.nas_summary(ctx.engine, nas_budget, &architectures);
        observer.on_event(&SearchEvent::PhaseFinished {
            phase: "nas".to_string(),
            summary: nas_summary.clone(),
        });

        observer.on_event(&SearchEvent::PhaseStarted {
            phase: "asic-sweep".to_string(),
            budget: self.hardware_samples,
        });
        ctx.engine.accuracies(&architectures);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xbbbb);
        let mut assigned_episodes = Vec::new();
        let mut assigned = Vec::new();
        for episode in 0..self.hardware_samples {
            let accelerator = if episode % 2 == 0 {
                ctx.hardware.sample_fully_allocated(&mut rng)
            } else {
                ctx.hardware.sample(&mut rng)
            };
            if plan.assigns(episode, shard_index) {
                assigned_episodes.push(episode);
                assigned.push(Candidate::from_parts(architectures.to_vec(), accelerator));
            }
        }
        let evaluations = ctx.engine.evaluate_batch(&assigned);
        let mut partial = ShardPartial::empty(self.name(), plan.shards, shard_index);
        partial.episodes = self.hardware_samples;
        partial.phases = vec![nas_summary];
        // Shard-local telemetry mirrors the plain run over the assigned
        // stride (incumbents are relative to this shard only).
        let mut local = SearchOutcome::empty();
        for ((episode, candidate), evaluation) in
            assigned_episodes.into_iter().zip(assigned).zip(evaluations)
        {
            let solution = ExploredSolution {
                episode,
                candidate,
                evaluation,
                reward: 0.0,
            };
            partial.solutions.push((episode, solution.clone()));
            let weighted_accuracy = solution.evaluation.weighted_accuracy;
            let any_compliant = solution.evaluation.meets_specs();
            local.record_observed(solution, observer);
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode,
                evaluations: 1,
                weighted_accuracy: Some(weighted_accuracy),
                any_compliant,
                reward: 0.0,
                entropy: None,
                baseline: None,
            });
        }
        local.episodes = self.hardware_samples;
        emit_search_finished(observer, &local, ctx.engine.stats().since(&stats_start));
        partial
    }

    /// Replay-merge the sweep strides, then rebuild the sweep summary
    /// (explored counts, incumbent, representative) from the merged
    /// outcome — shard 0 only contributed the (shard-independent) NAS
    /// summary.
    fn merge_shards(
        &self,
        ctx: &SearchContext<'_>,
        plan: &ShardPlan,
        partials: Vec<ShardPartial>,
    ) -> SearchOutcome {
        let mut outcome = checkpoint::merge_replay(plan, partials);
        if plan.mode == ShardMode::Strided {
            let representative = outcome
                .best
                .clone()
                .or_else(|| least_violating(&outcome, &ctx.specs));
            let sweep_summary = self.sweep_summary(&outcome, representative.as_ref());
            outcome.phases.push(sweep_summary);
        }
        outcome
    }
}

/// Encode architectures as their hyperparameter-value arrays (rebuilt
/// against the workload's backbones by [`decode_architectures`]).
fn encode_architectures(architectures: &[Architecture]) -> ConfigValue {
    ConfigValue::Array(
        architectures
            .iter()
            .map(|arch| checkpoint::usizes_to_value(&arch.hyperparameters))
            .collect(),
    )
}

/// Decode `expected` architectures (one per leading workload task) from
/// their checkpointed hyperparameter values.
fn decode_architectures(
    value: &ConfigValue,
    workload: &Workload,
    expected: usize,
) -> Vec<Architecture> {
    let done = value
        .as_array()
        .expect("nas-then-asic checkpoint: done is an array");
    assert_eq!(
        done.len(),
        expected,
        "nas-then-asic checkpoint: {} finished architectures, expected {}",
        done.len(),
        expected
    );
    done.iter()
        .zip(&workload.tasks)
        .map(|(values, task)| {
            task.backbone.materialize_values(
                &checkpoint::usizes_from_value(values)
                    .expect("nas-then-asic checkpoint: valid architecture values"),
            )
        })
        .collect()
}

/// The explored solution with the fewest violated specs, ties broken by the
/// smallest total relative excess over the specs.
pub fn least_violating(outcome: &SearchOutcome, specs: &DesignSpecs) -> Option<ExploredSolution> {
    outcome
        .explored
        .iter()
        .min_by(|a, b| {
            let key = |s: &ExploredSolution| {
                let v = s.evaluation.spec_check.violations() as f64;
                let m = &s.evaluation.metrics;
                let excess = (m.latency_cycles / specs.latency_cycles - 1.0).max(0.0)
                    + (m.energy_nj / specs.energy_nj - 1.0).max(0.0)
                    + (m.area_um2 / specs.area_um2 - 1.0).max(0.0);
                v * 10.0 + if excess.is_finite() { excess } else { 1e6 }
            };
            key(a).total_cmp(&key(b))
        })
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{AccuracyOracle, Evaluator};
    use crate::spec::WorkloadId;

    #[test]
    fn nas_phase_finds_high_accuracy_architectures() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let engine = EvalEngine::from(&evaluator);
        let baseline = NasThenAsic::fast(1);
        let architectures = baseline.run_nas_with_engine(&workload, &engine);
        assert_eq!(architectures.len(), 2);
        let accuracies = evaluator.accuracies(&architectures);
        // Accuracy-only NAS should land well above the mid-point of the
        // accuracy range (78.9% .. 94.6%).
        for acc in accuracies {
            assert!(acc > 0.90, "NAS accuracy too low: {acc}");
        }
    }

    #[test]
    fn asic_sweep_cannot_rescue_accuracy_optimal_architectures_on_w1() {
        // The paper's core claim for Table I: for the architectures that
        // NAS identifies, no explored accelerator design meets the specs.
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let baseline = NasThenAsic::fast(2);
        let (outcome, representative) =
            baseline.run_with_engine(&workload, specs, &hardware, &engine);
        assert!(
            outcome.best.is_none(),
            "NAS->ASIC unexpectedly met the specs"
        );
        let representative = representative.expect("sweep explored designs");
        assert!(!representative.evaluation.meets_specs());
        assert!(representative.evaluation.spec_check.violations() >= 1);
        // Both phases survive in the outcome instead of being dropped.
        assert_eq!(outcome.phases.len(), 2);
        assert_eq!(outcome.phases[0].name, "nas");
        assert_eq!(outcome.phases[1].name, "asic-sweep");
        assert!(outcome.phases[1].detail.contains("representative"));
    }

    #[test]
    fn least_violating_prefers_fewer_violations() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let baseline = NasThenAsic::fast(3);
        let architectures = baseline.run_nas_with_engine(&workload, &engine);
        let outcome = baseline.run_asic_sweep_with_engine(&architectures, &hardware, &engine);
        let best = least_violating(&outcome, &specs).unwrap();
        let min_violations = outcome
            .explored
            .iter()
            .map(|s| s.evaluation.spec_check.violations())
            .min()
            .unwrap();
        assert_eq!(best.evaluation.spec_check.violations(), min_violations);
    }
}
