//! Joint Monte-Carlo search over architectures and hardware designs.
//!
//! Fig. 1 of the paper uses 10,000 Monte-Carlo runs of the joint space to
//! locate the "optimal" solution (the star) that successive optimisation
//! misses.  This baseline reproduces that experiment and doubles as a
//! sanity check for NASAIC: with enough samples, random search finds
//! spec-compliant solutions, but needs far more evaluations than the
//! guided search to reach the same accuracy.

use crate::algorithm::{
    emit_search_finished, NullObserver, SearchAlgorithm, SearchContext, SearchEvent, SearchObserver,
};
use crate::candidate::Candidate;
use crate::engine::EvalEngine;
use crate::evaluator::Evaluator;
use crate::log::{ExploredSolution, SearchOutcome};
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the joint Monte-Carlo baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloSearch {
    /// Number of random (architecture, hardware) samples.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MonteCarloSearch {
    /// The paper's scale: 10,000 runs.
    pub fn paper(seed: u64) -> Self {
        Self { runs: 10_000, seed }
    }

    /// A configuration small enough for tests.
    pub fn fast(seed: u64) -> Self {
        Self { runs: 200, seed }
    }

    /// Run the search through a borrowed evaluator.
    ///
    /// Every call silently builds a throwaway [`EvalEngine`] whose caches
    /// start cold and die with the call — repeated runs pay full price for
    /// every revisited candidate.
    #[deprecated(
        note = "builds a throwaway cold EvalEngine per call; share one engine via \
                `run_with_engine` or run through `SearchAlgorithm::run` with a `SearchContext`"
    )]
    pub fn run(
        &self,
        workload: &Workload,
        hardware: &HardwareSpace,
        evaluator: &Evaluator,
    ) -> SearchOutcome {
        self.run_with_engine(workload, hardware, &EvalEngine::from(evaluator))
    }

    /// Run the search through a shared evaluation engine: candidates are
    /// drawn sequentially (one RNG stream), evaluated as parallel cached
    /// batches, and recorded in draw order, so the outcome is identical to
    /// the serial loop.
    pub fn run_with_engine(
        &self,
        workload: &Workload,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> SearchOutcome {
        self.run_observed(workload, hardware, engine, &NullObserver)
    }

    /// The sampling loop, shared by [`run_with_engine`](Self::run_with_engine)
    /// and the [`SearchAlgorithm`] trait path.
    fn run_observed(
        &self,
        workload: &Workload,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
    ) -> SearchOutcome {
        let stats_start = engine.stats();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x1111_2222);
        let mut outcome = SearchOutcome::empty();
        let candidates: Vec<Candidate> = (0..self.runs)
            .map(|episode| {
                let architectures: Vec<_> = workload
                    .tasks
                    .iter()
                    .map(|task| {
                        let space = task.backbone.search_space();
                        let indices = space.sample(&mut rng);
                        task.backbone
                            .materialize(&indices)
                            .expect("sampled indices are always valid")
                    })
                    .collect();
                // Alternate between arbitrary allocations and fully
                // allocated designs so the sweep covers both the interior
                // and the boundary of the hardware space.
                let accelerator = if episode % 2 == 0 {
                    hardware.sample(&mut rng)
                } else {
                    hardware.sample_fully_allocated(&mut rng)
                };
                Candidate::from_parts(architectures, accelerator)
            })
            .collect();
        let evaluations = engine.evaluate_batch(&candidates);
        for (episode, (candidate, evaluation)) in
            candidates.into_iter().zip(evaluations).enumerate()
        {
            let weighted_accuracy = evaluation.weighted_accuracy;
            let any_compliant = evaluation.meets_specs();
            outcome.record_observed(
                ExploredSolution {
                    episode,
                    candidate,
                    evaluation,
                    reward: 0.0,
                },
                observer,
            );
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode,
                evaluations: 1,
                weighted_accuracy: Some(weighted_accuracy),
                any_compliant,
                reward: 0.0,
                entropy: None,
                baseline: None,
            });
        }
        outcome.episodes = self.runs;
        emit_search_finished(observer, &outcome, engine.stats().since(&stats_start));
        outcome
    }
}

impl SearchAlgorithm for MonteCarloSearch {
    fn name(&self) -> &str {
        "monte-carlo"
    }

    /// Run over the context's workload and hardware space.  The sample
    /// count and seed come from this instance
    /// ([`Algorithm::instantiate`](crate::scenario::Algorithm::instantiate)
    /// maps the budget's
    /// [`total_evaluations`](crate::algorithm::Budget::total_evaluations)
    /// onto `runs`).
    fn run(&self, ctx: &SearchContext<'_>) -> SearchOutcome {
        self.run_observed(ctx.workload, ctx.hardware, ctx.engine, ctx.observer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::AccuracyOracle;
    use crate::spec::{DesignSpecs, WorkloadId};

    #[test]
    fn monte_carlo_explores_the_requested_number_of_samples() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let outcome = MonteCarloSearch::fast(1).run_with_engine(&workload, &hardware, &engine);
        assert_eq!(outcome.explored.len(), 200);
        assert_eq!(outcome.episodes, 200);
    }

    #[test]
    fn monte_carlo_finds_compliant_solutions_on_w1() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let outcome = MonteCarloSearch::fast(3).run_with_engine(&workload, &hardware, &engine);
        assert!(
            outcome.best.is_some(),
            "random search found no compliant design"
        );
        let best = outcome.best.unwrap();
        assert!(best.evaluation.meets_specs());
        assert!(best.evaluation.weighted_accuracy > 0.715);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_cold_engine_wrapper_matches_the_engine_path() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let hardware = HardwareSpace::paper_default(2);
        let mc = MonteCarloSearch { runs: 30, seed: 9 };
        let a = mc.run(&workload, &hardware, &evaluator);
        let b = mc.run_with_engine(&workload, &hardware, &EvalEngine::from(&evaluator));
        assert_eq!(a, b);
    }
}
