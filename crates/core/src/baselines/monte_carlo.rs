//! Joint Monte-Carlo search over architectures and hardware designs.
//!
//! Fig. 1 of the paper uses 10,000 Monte-Carlo runs of the joint space to
//! locate the "optimal" solution (the star) that successive optimisation
//! misses.  This baseline reproduces that experiment and doubles as a
//! sanity check for NASAIC: with enough samples, random search finds
//! spec-compliant solutions, but needs far more evaluations than the
//! guided search to reach the same accuracy.
//!
//! # Checkpointing and sharding
//!
//! Samples are independent, so this is the fully externalizable driver:
//!
//! * **Checkpoints** are taken between samples.  The state is just the
//!   RNG position and the outcome so far; the loop draws and evaluates in
//!   chunks delimited by the sink's next snapshot point (one chunk — the
//!   whole run — when no sink wants checkpoints), so batching survives.
//! * **Shards** redraw the *entire* sample stream (keeping the one RNG
//!   stream identical to the single-process run) but evaluate only the
//!   samples assigned by the strided plan; the merge replays all shards'
//!   solutions in draw order, reconstructing the exact single-process
//!   outcome.

use crate::algorithm::{
    emit_search_finished, NullObserver, SearchAlgorithm, SearchContext, SearchEvent, SearchObserver,
};
use crate::candidate::Candidate;
use crate::checkpoint::{
    self, CheckpointSink, NullCheckpointSink, SearchCheckpoint, ShardMode, ShardPartial, ShardPlan,
};
use crate::engine::EvalEngine;
use crate::log::{ExploredSolution, SearchOutcome};
use crate::scenario::value::ConfigValue;
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the joint Monte-Carlo baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloSearch {
    /// Number of random (architecture, hardware) samples.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MonteCarloSearch {
    /// The paper's scale: 10,000 runs.
    pub fn paper(seed: u64) -> Self {
        Self { runs: 10_000, seed }
    }

    /// A configuration small enough for tests.
    pub fn fast(seed: u64) -> Self {
        Self { runs: 200, seed }
    }

    /// Run the search through a shared evaluation engine: candidates are
    /// drawn sequentially (one RNG stream), evaluated as parallel cached
    /// batches, and recorded in draw order, so the outcome is identical to
    /// the serial loop.
    pub fn run_with_engine(
        &self,
        workload: &Workload,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> SearchOutcome {
        self.run_observed(
            workload,
            hardware,
            engine,
            &NullObserver,
            None,
            &NullCheckpointSink,
        )
    }

    /// Draw the `episode`-th sample of the run's one RNG stream.
    fn draw(
        &self,
        workload: &Workload,
        hardware: &HardwareSpace,
        rng: &mut StdRng,
        episode: usize,
    ) -> Candidate {
        let architectures: Vec<_> = workload
            .tasks
            .iter()
            .map(|task| {
                let space = task.backbone.search_space();
                let indices = space.sample(rng);
                task.backbone
                    .materialize(&indices)
                    .expect("sampled indices are always valid")
            })
            .collect();
        // Alternate between arbitrary allocations and fully allocated
        // designs so the sweep covers both the interior and the boundary
        // of the hardware space.
        let accelerator = if episode.is_multiple_of(2) {
            hardware.sample(rng)
        } else {
            hardware.sample_fully_allocated(rng)
        };
        Candidate::from_parts(architectures, accelerator)
    }

    /// The sampling loop, shared by [`run_with_engine`](Self::run_with_engine)
    /// and the [`SearchAlgorithm`] trait path.
    ///
    /// Checkpoint state: `{rng, outcome}` at `progress` = samples
    /// completed.
    fn run_observed(
        &self,
        workload: &Workload,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        let stats_start = engine.stats();
        let (mut rng, mut outcome, mut episode) = match resume {
            Some(cp) => {
                cp.expect_run(self.name(), self.seed);
                assert!(
                    cp.progress <= self.runs,
                    "checkpoint progress {} exceeds the {}-sample budget",
                    cp.progress,
                    self.runs
                );
                let rng = checkpoint::rng_state_from_value(
                    cp.state.get("rng").expect("monte-carlo checkpoint: rng"),
                )
                .map(StdRng::from_state)
                .expect("monte-carlo checkpoint: valid rng state");
                let outcome = checkpoint::outcome_from_value(
                    cp.state
                        .get("outcome")
                        .expect("monte-carlo checkpoint: outcome"),
                    workload,
                )
                .expect("monte-carlo checkpoint: valid outcome");
                (rng, outcome, cp.progress)
            }
            None => (
                StdRng::seed_from_u64(self.seed ^ 0x1111_2222),
                SearchOutcome::empty(),
                0,
            ),
        };
        while episode < self.runs {
            // Evaluate up to the sink's next snapshot point as one batch;
            // with no snapshot points wanted, this is the whole run.
            let chunk_end = (episode + 1..self.runs)
                .find(|&progress| sink.wants(progress))
                .unwrap_or(self.runs);
            let candidates: Vec<Candidate> = (episode..chunk_end)
                .map(|e| self.draw(workload, hardware, &mut rng, e))
                .collect();
            let evaluations = engine.evaluate_batch(&candidates);
            for (e, (candidate, evaluation)) in
                (episode..chunk_end).zip(candidates.into_iter().zip(evaluations))
            {
                let weighted_accuracy = evaluation.weighted_accuracy;
                let any_compliant = evaluation.meets_specs();
                outcome.record_observed(
                    ExploredSolution {
                        episode: e,
                        candidate,
                        evaluation,
                        reward: 0.0,
                    },
                    observer,
                );
                observer.on_event(&SearchEvent::EpisodeEvaluated {
                    episode: e,
                    evaluations: 1,
                    weighted_accuracy: Some(weighted_accuracy),
                    any_compliant,
                    reward: 0.0,
                    entropy: None,
                    baseline: None,
                });
            }
            episode = chunk_end;
            outcome.episodes = episode;
            checkpoint::offer_checkpoint(sink, observer, self.name(), self.seed, episode, || {
                let mut state = ConfigValue::table();
                state.insert("rng", checkpoint::rng_state_to_value(&rng.state()));
                state.insert("outcome", checkpoint::outcome_to_value(&outcome));
                state
            });
        }
        outcome.episodes = self.runs;
        emit_search_finished(observer, &outcome, engine.stats().since(&stats_start));
        outcome
    }
}

impl SearchAlgorithm for MonteCarloSearch {
    fn name(&self) -> &str {
        "monte-carlo"
    }

    /// Run over the context's workload and hardware space.  The sample
    /// count and seed come from this instance
    /// ([`Algorithm::instantiate`](crate::scenario::Algorithm::instantiate)
    /// maps the budget's
    /// [`total_evaluations`](crate::algorithm::Budget::total_evaluations)
    /// onto `runs`).
    fn run_checkpointed(
        &self,
        ctx: &SearchContext<'_>,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        self.run_observed(
            ctx.workload,
            ctx.hardware,
            ctx.engine,
            ctx.observer(),
            resume,
            sink,
        )
    }

    /// Every sample is independent: stride them across the shards.
    fn shard_plan(&self, _ctx: &SearchContext<'_>, shards: usize) -> ShardPlan {
        ShardPlan::strided(self.name(), shards, self.runs)
    }

    /// Redraw the full sample stream (keeping the RNG identical to the
    /// single-process run), evaluate only this shard's stride, and key
    /// the solutions by draw index for the replay merge.
    fn run_shard(
        &self,
        ctx: &SearchContext<'_>,
        plan: &ShardPlan,
        shard_index: usize,
    ) -> ShardPartial {
        assert!(
            shard_index < plan.shards,
            "shard index {shard_index} out of range for {} shards",
            plan.shards
        );
        assert_eq!(
            plan.mode,
            ShardMode::Strided,
            "monte-carlo plans are strided"
        );
        let observer = ctx.observer();
        let stats_start = ctx.engine.stats();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x1111_2222);
        let mut assigned_episodes = Vec::new();
        let mut assigned = Vec::new();
        for episode in 0..self.runs {
            let candidate = self.draw(ctx.workload, ctx.hardware, &mut rng, episode);
            if plan.assigns(episode, shard_index) {
                assigned_episodes.push(episode);
                assigned.push(candidate);
            }
        }
        let evaluations = ctx.engine.evaluate_batch(&assigned);
        let mut partial = ShardPartial::empty(self.name(), plan.shards, shard_index);
        partial.episodes = self.runs;
        // Shard-local telemetry mirrors the plain run over the assigned
        // stride (incumbents are relative to this shard only).
        let mut local = SearchOutcome::empty();
        for ((episode, candidate), evaluation) in
            assigned_episodes.into_iter().zip(assigned).zip(evaluations)
        {
            let solution = ExploredSolution {
                episode,
                candidate,
                evaluation,
                reward: 0.0,
            };
            partial.solutions.push((episode, solution.clone()));
            let weighted_accuracy = solution.evaluation.weighted_accuracy;
            let any_compliant = solution.evaluation.meets_specs();
            local.record_observed(solution, observer);
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode,
                evaluations: 1,
                weighted_accuracy: Some(weighted_accuracy),
                any_compliant,
                reward: 0.0,
                entropy: None,
                baseline: None,
            });
        }
        local.episodes = self.runs;
        emit_search_finished(observer, &local, ctx.engine.stats().since(&stats_start));
        partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Budget;
    use crate::evaluator::{AccuracyOracle, Evaluator};
    use crate::spec::{DesignSpecs, WorkloadId};

    #[test]
    fn monte_carlo_explores_the_requested_number_of_samples() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let outcome = MonteCarloSearch::fast(1).run_with_engine(&workload, &hardware, &engine);
        assert_eq!(outcome.explored.len(), 200);
        assert_eq!(outcome.episodes, 200);
    }

    #[test]
    fn monte_carlo_finds_compliant_solutions_on_w1() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let outcome = MonteCarloSearch::fast(3).run_with_engine(&workload, &hardware, &engine);
        assert!(
            outcome.best.is_some(),
            "random search found no compliant design"
        );
        let best = outcome.best.unwrap();
        assert!(best.evaluation.meets_specs());
        assert!(best.evaluation.weighted_accuracy > 0.715);
    }

    #[test]
    fn trait_run_matches_the_engine_entry_point() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let hardware = HardwareSpace::paper_default(2);
        let mc = MonteCarloSearch { runs: 30, seed: 9 };
        let engine_a = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let a = mc.run_with_engine(&workload, &hardware, &engine_a);
        let engine_b = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let ctx = SearchContext::new(
            &workload,
            specs,
            &hardware,
            &engine_b,
            9,
            Budget::new(30, 0),
        );
        let b = mc.run(&ctx);
        assert_eq!(a, b);
    }
}
