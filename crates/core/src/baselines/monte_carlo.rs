//! Joint Monte-Carlo search over architectures and hardware designs.
//!
//! Fig. 1 of the paper uses 10,000 Monte-Carlo runs of the joint space to
//! locate the "optimal" solution (the star) that successive optimisation
//! misses.  This baseline reproduces that experiment and doubles as a
//! sanity check for NASAIC: with enough samples, random search finds
//! spec-compliant solutions, but needs far more evaluations than the
//! guided search to reach the same accuracy.

use crate::candidate::Candidate;
use crate::engine::EvalEngine;
use crate::evaluator::Evaluator;
use crate::log::{ExploredSolution, SearchOutcome};
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the joint Monte-Carlo baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloSearch {
    /// Number of random (architecture, hardware) samples.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MonteCarloSearch {
    /// The paper's scale: 10,000 runs.
    pub fn paper(seed: u64) -> Self {
        Self { runs: 10_000, seed }
    }

    /// A configuration small enough for tests.
    pub fn fast(seed: u64) -> Self {
        Self { runs: 200, seed }
    }

    /// Run the search through a borrowed evaluator (builds a transient
    /// [`EvalEngine`]; prefer [`run_with_engine`](Self::run_with_engine)
    /// when an engine is already available so caches are shared).
    pub fn run(
        &self,
        workload: &Workload,
        hardware: &HardwareSpace,
        evaluator: &Evaluator,
    ) -> SearchOutcome {
        self.run_with_engine(workload, hardware, &EvalEngine::from(evaluator))
    }

    /// Run the search through a shared evaluation engine: candidates are
    /// drawn sequentially (one RNG stream), evaluated as parallel cached
    /// batches, and recorded in draw order, so the outcome is identical to
    /// the serial loop.
    pub fn run_with_engine(
        &self,
        workload: &Workload,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x1111_2222);
        let mut outcome = SearchOutcome::empty();
        let candidates: Vec<Candidate> = (0..self.runs)
            .map(|episode| {
                let architectures: Vec<_> = workload
                    .tasks
                    .iter()
                    .map(|task| {
                        let space = task.backbone.search_space();
                        let indices = space.sample(&mut rng);
                        task.backbone
                            .materialize(&indices)
                            .expect("sampled indices are always valid")
                    })
                    .collect();
                // Alternate between arbitrary allocations and fully
                // allocated designs so the sweep covers both the interior
                // and the boundary of the hardware space.
                let accelerator = if episode % 2 == 0 {
                    hardware.sample(&mut rng)
                } else {
                    hardware.sample_fully_allocated(&mut rng)
                };
                Candidate::from_parts(architectures, accelerator)
            })
            .collect();
        let evaluations = engine.evaluate_batch(&candidates);
        for (episode, (candidate, evaluation)) in
            candidates.into_iter().zip(evaluations).enumerate()
        {
            outcome.record(ExploredSolution {
                episode,
                candidate,
                evaluation,
                reward: 0.0,
            });
        }
        outcome.episodes = self.runs;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::AccuracyOracle;
    use crate::spec::{DesignSpecs, WorkloadId};

    #[test]
    fn monte_carlo_explores_the_requested_number_of_samples() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let hardware = HardwareSpace::paper_default(2);
        let outcome = MonteCarloSearch::fast(1).run(&workload, &hardware, &evaluator);
        assert_eq!(outcome.explored.len(), 200);
        assert_eq!(outcome.episodes, 200);
    }

    #[test]
    fn monte_carlo_finds_compliant_solutions_on_w1() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let hardware = HardwareSpace::paper_default(2);
        let outcome = MonteCarloSearch::fast(3).run(&workload, &hardware, &evaluator);
        assert!(
            outcome.best.is_some(),
            "random search found no compliant design"
        );
        let best = outcome.best.unwrap();
        assert!(best.evaluation.meets_specs());
        assert!(best.evaluation.weighted_accuracy > 0.715);
    }

    #[test]
    fn runs_with_same_seed_are_identical() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let hardware = HardwareSpace::paper_default(2);
        let mc = MonteCarloSearch { runs: 30, seed: 9 };
        let a = mc.run(&workload, &hardware, &evaluator);
        let b = mc.run(&workload, &hardware, &evaluator);
        assert_eq!(a.best_weighted_accuracy(), b.best_weighted_accuracy());
        assert_eq!(a.spec_compliant.len(), b.spec_compliant.len());
    }
}
