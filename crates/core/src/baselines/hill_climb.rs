//! Greedy hill-climbing over the joint (architecture, hardware) space.
//!
//! Not part of the paper's evaluation — included as an ablation of the RL
//! controller: a purely local searcher that starts from the smallest
//! architectures on a balanced accelerator and greedily accepts single-step
//! moves that improve the Eq. 4 reward.

use crate::algorithm::{
    emit_search_finished, NullObserver, SearchAlgorithm, SearchContext, SearchEvent, SearchObserver,
};
use crate::bounds::PenaltyBounds;
use crate::candidate::Candidate;
use crate::checkpoint::{self, CheckpointSink, NullCheckpointSink, SearchCheckpoint};
use crate::engine::EvalEngine;
use crate::log::{ExploredSolution, SearchOutcome};
use crate::scenario::value::ConfigValue;
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use serde::{Deserialize, Serialize};

/// A candidate move of the local search: the architecture indices per task,
/// the hardware indices and the decoded candidate.
type Move = (Vec<Vec<usize>>, Vec<usize>, Candidate);

/// Configuration of the hill-climbing baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HillClimb {
    /// Maximum number of accepted moves.
    pub max_steps: usize,
    /// Penalty scaling of the reward.
    pub rho: f64,
}

impl HillClimb {
    /// Default configuration.
    pub fn new(max_steps: usize) -> Self {
        Self {
            max_steps,
            rho: 10.0,
        }
    }

    /// Run through a shared engine: each step's whole neighbourhood is
    /// scored as one parallel batch, and re-visited neighbours (common as
    /// the climb slows down) come from the caches.
    pub fn run_with_engine(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
    ) -> SearchOutcome {
        self.run_observed(
            workload,
            specs,
            hardware,
            engine,
            &NullObserver,
            None,
            &NullCheckpointSink,
        )
    }

    /// The climb loop, shared by [`run_with_engine`](Self::run_with_engine)
    /// and the [`SearchAlgorithm`] trait path.
    ///
    /// The climb has no RNG, so the checkpoint state is minimal:
    /// `{arch_indices, hw_indices, outcome}` at `progress` = accepted
    /// steps.  The current evaluation and reward are re-derived by
    /// re-scoring the current position on resume (the scorer is pure).
    #[allow(clippy::too_many_arguments)]
    fn run_observed(
        &self,
        workload: &Workload,
        specs: DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        let stats_start = engine.stats();
        let scorer = engine.scorer(PenaltyBounds::from_specs(&specs, 3.0), self.rho);

        let hw_space_search = hardware.search_space();
        let build = |arch_indices: &[Vec<usize>], hw_indices: &[usize]| -> Candidate {
            let architectures = workload
                .tasks
                .iter()
                .zip(arch_indices)
                .map(|(t, idx)| t.backbone.materialize(idx).expect("valid indices"))
                .collect();
            let accelerator = hardware.decode(hw_indices).expect("valid hardware indices");
            Candidate::from_parts(architectures, accelerator)
        };

        let (mut arch_indices, mut hw_indices, mut outcome, start_step) = match resume {
            Some(cp) => {
                cp.expect_run(self.name(), 0);
                let arch_indices: Vec<Vec<usize>> = cp
                    .state
                    .get("arch_indices")
                    .and_then(ConfigValue::as_array)
                    .expect("hill-climb checkpoint: arch_indices")
                    .iter()
                    .map(|indices| {
                        checkpoint::usizes_from_value(indices)
                            .expect("hill-climb checkpoint: valid arch indices")
                    })
                    .collect();
                let hw_indices = checkpoint::usizes_from_value(
                    cp.state
                        .get("hw_indices")
                        .expect("hill-climb checkpoint: hw_indices"),
                )
                .expect("hill-climb checkpoint: valid hw indices");
                let outcome = checkpoint::outcome_from_value(
                    cp.state
                        .get("outcome")
                        .expect("hill-climb checkpoint: outcome"),
                    workload,
                )
                .expect("hill-climb checkpoint: valid outcome");
                (arch_indices, hw_indices, outcome, cp.progress + 1)
            }
            None => {
                // Starting point: smallest architectures, balanced
                // mid-size design.
                let arch_indices: Vec<Vec<usize>> = workload
                    .tasks
                    .iter()
                    .map(|t| t.backbone.search_space().smallest())
                    .collect();
                let hw_indices: Vec<usize> = hw_space_search
                    .cardinalities()
                    .iter()
                    .map(|&c| c / 2)
                    .collect();
                (arch_indices, hw_indices, SearchOutcome::empty(), 1)
            }
        };

        let mut current = build(&arch_indices, &hw_indices);
        let (mut current_eval, mut current_reward) = scorer.score(&current);
        if resume.is_none() {
            let start_compliant = current_eval.meets_specs();
            let start_weighted = current_eval.weighted_accuracy;
            outcome.record_observed(
                ExploredSolution {
                    episode: 0,
                    candidate: current.clone(),
                    evaluation: current_eval.clone(),
                    reward: current_reward,
                },
                observer,
            );
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode: 0,
                evaluations: 1,
                weighted_accuracy: Some(start_weighted),
                any_compliant: start_compliant,
                reward: current_reward,
                entropy: None,
                baseline: None,
            });
            self.offer(sink, observer, 0, &arch_indices, &hw_indices, &outcome);
        }

        for step in start_step..=self.max_steps {
            // Enumerate the whole neighbourhood (architecture moves per
            // task, then hardware moves — the scan order is the tie-break,
            // so it must stay fixed), then score it as one batch.
            let mut moves: Vec<Move> = Vec::new();
            for (task_index, task) in workload.tasks.iter().enumerate() {
                let space = task.backbone.search_space();
                for neighbour in space.neighbours(&arch_indices[task_index]) {
                    let mut trial_arch = arch_indices.clone();
                    trial_arch[task_index] = neighbour;
                    let candidate = build(&trial_arch, &hw_indices);
                    moves.push((trial_arch, hw_indices.clone(), candidate));
                }
            }
            for neighbour in hw_space_search.neighbours(&hw_indices) {
                let candidate = build(&arch_indices, &neighbour);
                moves.push((arch_indices.clone(), neighbour, candidate));
            }
            let candidates: Vec<Candidate> = moves
                .iter()
                .map(|(_, _, candidate)| candidate.clone())
                .collect();
            let scored = scorer.score_batch(&candidates);

            let mut best_move: Option<(Move, f64)> = None;
            let mut any_compliant = false;
            for (move_, (evaluation, reward)) in moves.into_iter().zip(scored) {
                any_compliant |= evaluation.meets_specs();
                if best_move.as_ref().is_none_or(|(_, r)| reward > *r) {
                    best_move = Some((move_, reward));
                }
            }
            let Some(((next_arch, next_hw, candidate), reward)) = best_move else {
                break;
            };
            if reward <= current_reward {
                break; // local optimum; its rejected scan shows up only in the cache stats
            }
            arch_indices = next_arch;
            hw_indices = next_hw;
            current = candidate;
            let (evaluation, r) = scorer.score(&current);
            current_eval = evaluation;
            current_reward = r;
            outcome.record_observed(
                ExploredSolution {
                    episode: step,
                    candidate: current.clone(),
                    evaluation: current_eval.clone(),
                    reward: current_reward,
                },
                observer,
            );
            outcome.episodes = step;
            // One event per *accepted* step.  Like every driver with an
            // initial-state evaluation, the starting point is episode 0 and
            // accepted steps are 1..=episodes, so the trace carries
            // `SearchFinished.episodes + 1` episode events (rejected
            // neighbourhood scans show up only in the cache stats).
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode: step,
                evaluations: candidates.len(),
                weighted_accuracy: Some(current_eval.weighted_accuracy),
                any_compliant,
                reward,
                entropy: None,
                baseline: None,
            });
            self.offer(sink, observer, step, &arch_indices, &hw_indices, &outcome);
        }
        emit_search_finished(observer, &outcome, engine.stats().since(&stats_start));
        outcome
    }

    /// Offer a checkpoint after `step` accepted steps (the climb is
    /// seedless, so the envelope's seed is fixed at 0).
    fn offer(
        &self,
        sink: &dyn CheckpointSink,
        observer: &dyn SearchObserver,
        step: usize,
        arch_indices: &[Vec<usize>],
        hw_indices: &[usize],
        outcome: &SearchOutcome,
    ) {
        checkpoint::offer_checkpoint(sink, observer, self.name(), 0, step, || {
            let mut state = ConfigValue::table();
            state.insert(
                "arch_indices",
                ConfigValue::Array(
                    arch_indices
                        .iter()
                        .map(|indices| checkpoint::usizes_to_value(indices))
                        .collect(),
                ),
            );
            state.insert("hw_indices", checkpoint::usizes_to_value(hw_indices));
            state.insert("outcome", checkpoint::outcome_to_value(outcome));
            state
        });
    }
}

impl SearchAlgorithm for HillClimb {
    fn name(&self) -> &str {
        "hill-climb"
    }

    /// Run over the context's workload, specs and hardware space.  The
    /// step limit and `rho` come from this instance
    /// ([`Algorithm::instantiate`](crate::scenario::Algorithm::instantiate)
    /// maps the budget's `episodes` onto `max_steps`).
    ///
    /// The climb stays on the sequential shard fallback: each step moves
    /// from the previously accepted neighbour, so there is nothing
    /// independent to stride across workers.
    fn run_checkpointed(
        &self,
        ctx: &SearchContext<'_>,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        self.run_observed(
            ctx.workload,
            ctx.specs,
            ctx.hardware,
            ctx.engine,
            ctx.observer(),
            resume,
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{AccuracyOracle, Evaluator};
    use crate::spec::WorkloadId;

    #[test]
    fn hill_climbing_improves_over_its_starting_point() {
        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let outcome = HillClimb::new(12).run_with_engine(&workload, specs, &hardware, &engine);
        assert!(outcome.explored.len() >= 2, "no move was accepted");
        let first = outcome.explored.first().unwrap().reward;
        let last = outcome.explored.last().unwrap().reward;
        assert!(last > first, "reward did not improve: {first} -> {last}");
    }

    #[test]
    fn rewards_are_monotonically_non_decreasing() {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, AccuracyOracle::default()));
        let hardware = HardwareSpace::paper_default(2);
        let outcome = HillClimb::new(8).run_with_engine(&workload, specs, &hardware, &engine);
        for pair in outcome.explored.windows(2) {
            assert!(pair[1].reward >= pair[0].reward);
        }
    }
}
