//! Baseline approaches the paper compares NASAIC against.
//!
//! * [`nas_then_asic`] — successive optimisation: accuracy-only NAS first,
//!   then a brute-force sweep of accelerator designs ("NAS→ASIC" in
//!   Table I);
//! * [`asic_then_hwnas`] — a Monte-Carlo hardware search for the design
//!   closest to the specs, followed by hardware-aware NAS on that fixed
//!   design ("ASIC→HW-NAS" in Table I);
//! * [`monte_carlo`] — joint random search over architectures and hardware
//!   (the 10,000-run baseline that produces the "optimal" star of Fig. 1);
//! * [`hill_climb`] — a greedy local-search baseline over the joint space
//!   (not in the paper; used for ablations of the RL controller);
//! * [`evolutionary`] — the evolutionary-algorithm alternative optimizer the
//!   paper mentions can replace the RL controller on the same reward.

pub mod asic_then_hwnas;
pub mod evolutionary;
pub mod hill_climb;
pub mod monte_carlo;
pub mod nas_then_asic;

pub use asic_then_hwnas::AsicThenHwNas;
pub use evolutionary::EvolutionarySearch;
pub use hill_climb::HillClimb;
pub use monte_carlo::MonteCarloSearch;
pub use nas_then_asic::NasThenAsic;
