//! Design specifications (latency, energy, area upper bounds).

use nasaic_cost::HardwareMetrics;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of the paper's three application workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadId {
    /// W1: CIFAR-10 classification + Nuclei segmentation.
    W1,
    /// W2: CIFAR-10 + STL-10 classification.
    W2,
    /// W3: two CIFAR-10 classification tasks.
    W3,
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadId::W1 => f.write_str("W1"),
            WorkloadId::W2 => f.write_str("W2"),
            WorkloadId::W3 => f.write_str("W3"),
        }
    }
}

impl WorkloadId {
    /// Parse a paper workload identifier from a (case-insensitive) name.
    /// Returns `None` for anything that is not `w1`/`w2`/`w3` — custom
    /// workloads and scenarios have no paper identifier.
    pub fn from_name(name: &str) -> Option<WorkloadId> {
        match name.trim().to_ascii_lowercase().as_str() {
            "w1" => Some(WorkloadId::W1),
            "w2" => Some(WorkloadId::W2),
            "w3" => Some(WorkloadId::W3),
            _ => None,
        }
    }
}

/// User-given design specs: upper bounds on latency `LS`, energy `ES` and
/// area `AS`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignSpecs {
    /// Latency spec `LS` in cycles.
    pub latency_cycles: f64,
    /// Energy spec `ES` in nJ.
    pub energy_nj: f64,
    /// Area spec `AS` in µm².
    pub area_um2: f64,
}

impl DesignSpecs {
    /// Create specs.
    ///
    /// # Panics
    ///
    /// Panics if any bound is not strictly positive.
    pub fn new(latency_cycles: f64, energy_nj: f64, area_um2: f64) -> Self {
        assert!(latency_cycles > 0.0, "latency spec must be positive");
        assert!(energy_nj > 0.0, "energy spec must be positive");
        assert!(area_um2 > 0.0, "area spec must be positive");
        Self {
            latency_cycles,
            energy_nj,
            area_um2,
        }
    }

    /// The paper's specs for each workload (Section V-A):
    /// `<8e5, 2e9, 4e9>` for W1, `<1e6, 3.5e9, 4e9>` for W2,
    /// `<4e5, 1e9, 4e9>` for W3.
    pub fn for_workload(id: WorkloadId) -> Self {
        match id {
            WorkloadId::W1 => Self::new(8.0e5, 2.0e9, 4.0e9),
            WorkloadId::W2 => Self::new(1.0e6, 3.5e9, 4.0e9),
            WorkloadId::W3 => Self::new(4.0e5, 1.0e9, 4.0e9),
        }
    }

    /// Scale every bound by a factor (Table II halves latency/energy or
    /// energy/area constraints for the single / homogeneous studies).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(&self, latency_factor: f64, energy_factor: f64, area_factor: f64) -> Self {
        assert!(
            latency_factor > 0.0 && energy_factor > 0.0 && area_factor > 0.0,
            "scale factors must be positive"
        );
        Self::new(
            self.latency_cycles * latency_factor,
            self.energy_nj * energy_factor,
            self.area_um2 * area_factor,
        )
    }

    /// Per-metric satisfaction of the specs by a set of hardware metrics.
    pub fn check(&self, metrics: &HardwareMetrics) -> SpecCheck {
        SpecCheck {
            latency: metrics.latency_cycles <= self.latency_cycles,
            energy: metrics.energy_nj <= self.energy_nj,
            area: metrics.area_um2 <= self.area_um2,
        }
    }

    /// `true` when all three specs are satisfied.
    pub fn admits(&self, metrics: &HardwareMetrics) -> bool {
        self.check(metrics).all()
    }
}

impl fmt::Display for DesignSpecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "specs <{:.2e} cycles, {:.2e} nJ, {:.2e} um^2>",
            self.latency_cycles, self.energy_nj, self.area_um2
        )
    }
}

/// Per-metric spec satisfaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecCheck {
    /// Latency within spec.
    pub latency: bool,
    /// Energy within spec.
    pub energy: bool,
    /// Area within spec.
    pub area: bool,
}

impl SpecCheck {
    /// `true` when every metric is within spec.
    pub fn all(&self) -> bool {
        self.latency && self.energy && self.area
    }

    /// Number of violated specs (0..=3).
    pub fn violations(&self) -> usize {
        [self.latency, self.energy, self.area]
            .iter()
            .filter(|ok| !**ok)
            .count()
    }

    /// The paper's table notation: a check mark when all specs are met, a
    /// cross otherwise.
    pub fn symbol(&self) -> &'static str {
        if self.all() {
            "satisfied"
        } else {
            "violated"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_section_v() {
        let w1 = DesignSpecs::for_workload(WorkloadId::W1);
        assert_eq!(w1.latency_cycles, 8.0e5);
        assert_eq!(w1.energy_nj, 2.0e9);
        assert_eq!(w1.area_um2, 4.0e9);
        let w2 = DesignSpecs::for_workload(WorkloadId::W2);
        assert_eq!(w2.latency_cycles, 1.0e6);
        assert_eq!(w2.energy_nj, 3.5e9);
        let w3 = DesignSpecs::for_workload(WorkloadId::W3);
        assert_eq!(w3.latency_cycles, 4.0e5);
        assert_eq!(w3.energy_nj, 1.0e9);
    }

    #[test]
    fn check_flags_each_violation_independently() {
        let specs = DesignSpecs::new(100.0, 100.0, 100.0);
        let check = specs.check(&HardwareMetrics::new(150.0, 50.0, 100.0));
        assert!(!check.latency);
        assert!(check.energy);
        assert!(check.area);
        assert!(!check.all());
        assert_eq!(check.violations(), 1);
        assert_eq!(check.symbol(), "violated");
    }

    #[test]
    fn admits_requires_all_metrics() {
        let specs = DesignSpecs::new(100.0, 100.0, 100.0);
        assert!(specs.admits(&HardwareMetrics::new(100.0, 99.0, 1.0)));
        assert!(!specs.admits(&HardwareMetrics::new(100.1, 99.0, 1.0)));
        assert!(!specs.admits(&HardwareMetrics::infeasible()));
    }

    #[test]
    fn scaled_specs_multiply_each_bound() {
        let specs = DesignSpecs::for_workload(WorkloadId::W3).scaled(0.5, 0.5, 1.0);
        assert_eq!(specs.latency_cycles, 2.0e5);
        assert_eq!(specs.energy_nj, 5.0e8);
        assert_eq!(specs.area_um2, 4.0e9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(WorkloadId::W2.to_string(), "W2");
        assert!(DesignSpecs::for_workload(WorkloadId::W1)
            .to_string()
            .contains("specs"));
    }

    #[test]
    #[should_panic]
    fn zero_spec_rejected() {
        DesignSpecs::new(0.0, 1.0, 1.0);
    }
}
