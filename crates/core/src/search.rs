//! The NASAIC search loop.
//!
//! Ties together the controller (component ①), the optimizer selector
//! (component ②) and the evaluator (component ③) exactly as in Fig. 4 of
//! the paper: the controller predicts architectures and hardware
//! allocations, the selector interleaves joint and hardware-only steps with
//! early pruning, the evaluator produces accuracy and hardware cost, and
//! the reward of Eq. 4 updates the controller.

use crate::bounds::PenaltyBounds;
use crate::candidate::Candidate;
use crate::engine::EvalEngine;
use crate::evaluator::{AccuracyOracle, Evaluator};
use crate::log::{ExploredSolution, SearchOutcome};
use crate::penalty::Penalty;
use crate::reward::Reward;
use crate::selector::OptimizerSelector;
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use nasaic_rl::{Controller, ControllerConfig, ControllerSample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a NASAIC run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NasaicConfig {
    /// Number of episodes `beta`.
    pub episodes: usize,
    /// Hardware-only exploration steps per episode `phi`.
    pub hardware_trials: usize,
    /// Penalty scaling `rho` of Eq. 4.
    pub rho: f64,
    /// Number of sub-accelerators in the design.
    pub num_sub_accelerators: usize,
    /// When `true`, the controller predicts a single sub-accelerator
    /// configuration that is replicated across all sub-accelerators
    /// (the homogeneous study of Table II).
    pub homogeneous: bool,
    /// When `true` (default), hardware-only exploration steps keep the
    /// weighted accuracy of the episode's (fixed) architectures in their
    /// reward, so the joint and hardware-only rewards share one scale and
    /// the shared REINFORCE baseline stays meaningful.  Set to `false` for
    /// the literal paper behaviour (hardware-only steps ignore accuracy).
    pub accuracy_in_hardware_reward: bool,
    /// Random hardware samples used to estimate the penalty bounds.
    pub bound_samples: usize,
    /// RNG seed (controller initialisation and sampling).
    pub seed: u64,
    /// Controller hyperparameters.
    pub controller: ControllerConfig,
    /// Accuracy oracle (surrogate or proxy trainer).
    pub oracle: AccuracyOracle,
}

impl NasaicConfig {
    /// The paper's configuration: `beta = 500` episodes, `phi = 10`
    /// hardware designs per episode, `rho = 10`, two sub-accelerators.
    pub fn paper(seed: u64) -> Self {
        Self {
            episodes: 500,
            hardware_trials: 10,
            rho: 10.0,
            num_sub_accelerators: 2,
            homogeneous: false,
            accuracy_in_hardware_reward: true,
            bound_samples: 50,
            seed,
            controller: ControllerConfig::default(),
            oracle: AccuracyOracle::default(),
        }
    }

    /// A configuration small enough for unit tests and doc examples
    /// (a couple of seconds), with the same structure as the paper run.
    pub fn fast_demo(seed: u64) -> Self {
        Self {
            episodes: 40,
            hardware_trials: 4,
            bound_samples: 10,
            ..Self::paper(seed)
        }
    }

    /// A mid-sized configuration used by the benchmark harness: large
    /// enough for the search to converge on every workload, small enough to
    /// finish in seconds.
    pub fn benchmark(seed: u64) -> Self {
        Self {
            episodes: 120,
            hardware_trials: 6,
            bound_samples: 30,
            ..Self::paper(seed)
        }
    }
}

/// The NASAIC co-exploration search.
#[derive(Debug, Clone)]
pub struct Nasaic {
    workload: Workload,
    specs: DesignSpecs,
    config: NasaicConfig,
    hardware: HardwareSpace,
    engine: EvalEngine,
}

impl Nasaic {
    /// Create a search for a workload under design specs.
    pub fn new(workload: Workload, specs: DesignSpecs, config: NasaicConfig) -> Self {
        let hardware = HardwareSpace::paper_default(config.num_sub_accelerators);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, config.oracle));
        Self {
            workload,
            specs,
            config,
            hardware,
            engine,
        }
    }

    /// Replace the hardware space (restricted dataflows, different budget,
    /// fewer sub-accelerators — used by the Table II studies).
    ///
    /// The evaluator is untouched — it does not depend on the hardware
    /// space — so this builder composes with
    /// [`with_evaluator`](Self::with_evaluator) in either order.
    pub fn with_hardware_space(mut self, hardware: HardwareSpace) -> Self {
        self.hardware = hardware;
        self
    }

    /// Replace the evaluator (custom cost model or combiner).
    pub fn with_evaluator(mut self, evaluator: Evaluator) -> Self {
        let config = *self.engine.config();
        self.engine = EvalEngine::with_config(evaluator, config);
        self
    }

    /// Replace the engine configuration (worker-thread ceiling, caching).
    /// Composes with the other builders in any order.
    pub fn with_engine_config(mut self, config: crate::engine::EngineConfig) -> Self {
        self.engine = EvalEngine::with_config(self.engine.evaluator().clone(), config);
        self
    }

    /// The workload being searched.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The design specs.
    pub fn specs(&self) -> &DesignSpecs {
        &self.specs
    }

    /// The hardware space.
    pub fn hardware_space(&self) -> &HardwareSpace {
        &self.hardware
    }

    /// The evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        self.engine.evaluator()
    }

    /// The shared evaluation engine (caches + batch parallelism).
    pub fn engine(&self) -> &EvalEngine {
        &self.engine
    }

    fn controller_segments(&self) -> Vec<nasaic_rl::Segment> {
        if self.config.homogeneous {
            // One architecture segment per task + a single hardware segment
            // that is replicated over all sub-accelerators at decode time.
            let single_sub = HardwareSpace::paper_default(1)
                .with_budget(*self.hardware.budget())
                .with_dataflows(self.hardware.allowed_dataflows().to_vec());
            self.workload.controller_segments(&single_sub)
        } else {
            self.workload.controller_segments(&self.hardware)
        }
    }

    fn decode_candidate(
        &self,
        sample: &ControllerSample,
    ) -> Result<Candidate, nasaic_nn::space::DecodeError> {
        let m = self.workload.num_tasks();
        if self.config.homogeneous {
            // Duplicate the single hardware segment across the
            // sub-accelerators.
            let mut segments: Vec<Vec<usize>> = sample.segments[..m].to_vec();
            let hw_segment = sample.segments[m].clone();
            for _ in 0..self.hardware.num_sub_accelerators() {
                segments.push(hw_segment.clone());
            }
            Candidate::from_segments(&self.workload, &self.hardware, &segments)
        } else {
            Candidate::from_segments(&self.workload, &self.hardware, &sample.segments)
        }
    }

    /// Run the search and return the exploration outcome.
    ///
    /// Each episode's `1 + φ` candidates are evaluated concurrently through
    /// the [`EvalEngine`] (hardware metrics in one parallel batch, accuracy
    /// memoised across the episode's shared architectures and across
    /// episodes); controller feedback stays strictly sequential, so a run
    /// is bit-deterministic for a seed regardless of thread count.
    pub fn run(&self) -> SearchOutcome {
        self.run_with_engine(&self.engine)
    }

    /// [`run`](Self::run) through an external shared engine, so several
    /// searches (e.g. the algorithms of a `nasaic compare` run) reuse one
    /// warm cache.  The engine is observationally invisible: the outcome
    /// is bit-identical to [`run`](Self::run) regardless of what the
    /// caches already hold, as long as the engine wraps an evaluator for
    /// the same workload, specs and oracle.
    pub fn run_with_engine(&self, engine: &EvalEngine) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x00c0_ffee);
        let bounds = PenaltyBounds::estimate_with_engine(
            &self.workload,
            &self.hardware,
            engine,
            &self.specs,
            self.config.bound_samples,
            self.config.seed,
        );
        let selector = OptimizerSelector::new(self.config.hardware_trials);
        let mut controller = Controller::new(
            self.controller_segments(),
            self.config.controller,
            self.config.seed,
        );
        let mut outcome = SearchOutcome::empty();
        let m = self.workload.num_tasks();

        for episode in 0..self.config.episodes {
            // Step 1: joint architecture + hardware prediction.
            let joint_sample = controller.sample(&mut rng);
            // Steps 2..: hardware-only predictions for the same architectures.
            let plan = selector.plan_episode();
            let mut episode_samples: Vec<ControllerSample> = vec![joint_sample.clone()];
            for _ in 1..plan.len() {
                let mut hw_sample = controller.sample(&mut rng);
                // Architecture switch open: reuse the joint step's
                // architecture decisions.
                let arch_len: usize = joint_sample.segments[..m].iter().map(Vec::len).sum();
                hw_sample.actions[..arch_len].copy_from_slice(&joint_sample.actions[..arch_len]);
                for (segment, joint_segment) in hw_sample.segments[..m]
                    .iter_mut()
                    .zip(&joint_sample.segments[..m])
                {
                    segment.clone_from(joint_segment);
                }
                episode_samples.push(hw_sample);
            }

            // Decode and evaluate the hardware of every step.
            let mut candidates = Vec::with_capacity(episode_samples.len());
            for sample in &episode_samples {
                match self.decode_candidate(sample) {
                    Ok(candidate) => candidates.push(Some(candidate)),
                    Err(_) => candidates.push(None),
                }
            }
            let architectures = candidates
                .iter()
                .flatten()
                .next()
                .map(|c| c.architectures.clone());
            // All of the episode's hardware designs are independent:
            // evaluate them as one parallel, cached batch.
            let hardware_evaluations = engine.evaluate_hardware_batch(&candidates);
            let any_meets_specs = hardware_evaluations
                .iter()
                .flatten()
                .any(|(_, check)| check.all());

            // Early pruning: skip the accuracy evaluation when no hardware
            // design of the episode can satisfy the specs.
            let accuracies = if selector.should_train(any_meets_specs) {
                architectures.as_ref().map(|archs| engine.accuracies(archs))
            } else {
                None
            };
            if accuracies.is_none() {
                outcome.pruned_episodes += 1;
            }
            let weighted = accuracies.as_ref().map(|a| engine.weighted_accuracy(a));

            for (step, (sample, candidate)) in episode_samples.iter().zip(candidates).enumerate() {
                let Some(candidate) = candidate else {
                    // Undecodable sample: strongly discourage it.
                    controller.feedback(sample, -self.config.rho);
                    continue;
                };
                let (metrics, check) = hardware_evaluations[step]
                    .expect("hardware evaluation exists for decodable candidates");
                let penalty = Penalty::compute(&metrics, &self.specs, &bounds);
                let reward = match (step, &weighted) {
                    // Joint step with accuracy available: full Eq. 4 reward.
                    (0, Some(w)) => Reward::new(*w, &penalty, self.config.rho),
                    // Hardware-only steps: the paper ignores accuracy here;
                    // by default we keep the (fixed) architectures' accuracy
                    // in the reward so both step kinds share one scale.
                    (_, Some(w)) if self.config.accuracy_in_hardware_reward => {
                        Reward::new(*w, &penalty, self.config.rho)
                    }
                    (_, Some(_)) => Reward::hardware_only(&penalty, self.config.rho),
                    // Pruned episode: penalty-only signal for every step.
                    (_, None) => Reward::hardware_only(&penalty, self.config.rho),
                };
                controller.feedback(sample, reward.value());

                if let (Some(accs), Some(w)) = (&accuracies, &weighted) {
                    let evaluation = crate::evaluator::Evaluation {
                        accuracies: accs.clone(),
                        weighted_accuracy: *w,
                        metrics,
                        spec_check: check,
                        mapping_feasible: metrics.latency_cycles <= self.specs.latency_cycles,
                    };
                    outcome.record(ExploredSolution {
                        episode,
                        candidate,
                        evaluation,
                        reward: reward.value(),
                    });
                }
            }
            outcome.episodes = episode + 1;
        }
        outcome.reward_history = controller.reward_history().to_vec();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadId;

    fn run_fast(workload: Workload, id: WorkloadId, seed: u64) -> SearchOutcome {
        let specs = DesignSpecs::for_workload(id);
        Nasaic::new(workload, specs, NasaicConfig::fast_demo(seed)).run()
    }

    #[test]
    fn w1_search_finds_spec_compliant_solutions() {
        let outcome = run_fast(Workload::w1(), WorkloadId::W1, 11);
        assert!(outcome.best.is_some(), "no compliant solution found");
        assert!(!outcome.spec_compliant.is_empty());
        for solution in &outcome.spec_compliant {
            assert!(solution.evaluation.meets_specs());
        }
        assert_eq!(outcome.episodes, 40);
    }

    #[test]
    fn w3_search_finds_spec_compliant_solutions() {
        // W3's energy spec is the tightest of the three workloads, so give
        // this check a slightly larger episode budget than fast_demo.
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let config = NasaicConfig {
            episodes: 60,
            ..NasaicConfig::fast_demo(13)
        };
        let outcome = Nasaic::new(Workload::w3(), specs, config).run();
        assert!(outcome.best.is_some());
        let best = outcome.best.as_ref().unwrap();
        // Accuracy of compliant solutions must beat the smallest-network
        // lower bound of 78.93%.
        assert!(best.evaluation.weighted_accuracy > 0.7893);
    }

    #[test]
    fn best_solution_accuracy_is_above_lower_bound_and_below_nas_best() {
        let outcome = run_fast(Workload::w1(), WorkloadId::W1, 17);
        let best = outcome.best.as_ref().expect("a compliant solution exists");
        // Lower bound: (78.93% + 0.642) / 2; NAS upper bound: (94.2% + 0.84) / 2.
        assert!(best.evaluation.weighted_accuracy > 0.715);
        assert!(best.evaluation.weighted_accuracy < 0.895);
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let a = run_fast(Workload::w3(), WorkloadId::W3, 5);
        let b = run_fast(Workload::w3(), WorkloadId::W3, 5);
        assert_eq!(a.best_weighted_accuracy(), b.best_weighted_accuracy());
        assert_eq!(a.explored.len(), b.explored.len());
    }

    #[test]
    fn homogeneous_mode_produces_identical_sub_accelerators() {
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let config = NasaicConfig {
            homogeneous: true,
            ..NasaicConfig::fast_demo(3)
        };
        let outcome = Nasaic::new(Workload::w3(), specs, config).run();
        for solution in &outcome.explored {
            let subs = solution.candidate.accelerator.sub_accelerators();
            assert_eq!(subs.len(), 2);
            assert_eq!(
                subs[0], subs[1],
                "homogeneous design must replicate the sub-accelerator"
            );
        }
    }

    #[test]
    fn builder_order_does_not_discard_a_custom_evaluator() {
        // Regression: `with_hardware_space` used to rebuild the evaluator
        // from the config, silently dropping a custom cost model/combiner
        // installed by an earlier `with_evaluator` call.
        use nasaic_accel::HardwareSpace;
        use nasaic_accuracy::AccuracyCombiner;

        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let config = NasaicConfig::fast_demo(1);
        let custom = Evaluator::new(&workload, specs, AccuracyOracle::default())
            .with_combiner(AccuracyCombiner::Minimum);
        let hardware = HardwareSpace::paper_default(1);

        let evaluator_first = Nasaic::new(workload.clone(), specs, config)
            .with_evaluator(custom.clone())
            .with_hardware_space(hardware.clone());
        let hardware_first = Nasaic::new(workload, specs, config)
            .with_hardware_space(hardware)
            .with_evaluator(custom);

        // The Minimum combiner must survive in both orders.
        let accuracies = [0.25, 0.75];
        assert_eq!(
            evaluator_first.evaluator().weighted_accuracy(&accuracies),
            0.25
        );
        assert_eq!(
            hardware_first.evaluator().weighted_accuracy(&accuracies),
            0.25
        );
        assert_eq!(evaluator_first.hardware_space().num_sub_accelerators(), 1);
        assert_eq!(hardware_first.hardware_space().num_sub_accelerators(), 1);
    }

    #[test]
    fn reward_history_length_matches_feedback_count() {
        let outcome = run_fast(Workload::w3(), WorkloadId::W3, 19);
        // Every episode gives (1 + hardware_trials) feedbacks.
        assert_eq!(outcome.reward_history.len(), 40 * (1 + 4));
    }
}
