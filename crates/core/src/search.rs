//! The NASAIC search loop.
//!
//! Ties together the controller (component ①), the optimizer selector
//! (component ②) and the evaluator (component ③) exactly as in Fig. 4 of
//! the paper: the controller predicts architectures and hardware
//! allocations, the selector interleaves joint and hardware-only steps with
//! early pruning, the evaluator produces accuracy and hardware cost, and
//! the reward of Eq. 4 updates the controller.

use crate::algorithm::{
    emit_search_finished, NullObserver, SearchAlgorithm, SearchContext, SearchEvent, SearchObserver,
};
use crate::bounds::PenaltyBounds;
use crate::candidate::Candidate;
use crate::checkpoint::{self, CheckpointSink, NullCheckpointSink, SearchCheckpoint};
use crate::engine::EvalEngine;
use crate::evaluator::{AccuracyOracle, Evaluator};
use crate::log::{ExploredSolution, SearchOutcome};
use crate::penalty::Penalty;
use crate::reward::Reward;
use crate::scenario::value::ConfigValue;
use crate::scenario::SearchSpec;
use crate::selector::OptimizerSelector;
use crate::spec::DesignSpecs;
use crate::workload::Workload;
use nasaic_accel::HardwareSpace;
use nasaic_rl::{Controller, ControllerConfig, ControllerSample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a NASAIC run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NasaicConfig {
    /// Number of episodes `beta`.
    pub episodes: usize,
    /// Hardware-only exploration steps per episode `phi`.
    pub hardware_trials: usize,
    /// Penalty scaling `rho` of Eq. 4.
    pub rho: f64,
    /// Number of sub-accelerators in the design.
    pub num_sub_accelerators: usize,
    /// When `true`, the controller predicts a single sub-accelerator
    /// configuration that is replicated across all sub-accelerators
    /// (the homogeneous study of Table II).
    pub homogeneous: bool,
    /// When `true` (default), hardware-only exploration steps keep the
    /// weighted accuracy of the episode's (fixed) architectures in their
    /// reward, so the joint and hardware-only rewards share one scale and
    /// the shared REINFORCE baseline stays meaningful.  Set to `false` for
    /// the literal paper behaviour (hardware-only steps ignore accuracy).
    pub accuracy_in_hardware_reward: bool,
    /// Random hardware samples used to estimate the penalty bounds.
    pub bound_samples: usize,
    /// RNG seed (controller initialisation and sampling).
    pub seed: u64,
    /// Controller hyperparameters.
    pub controller: ControllerConfig,
    /// Accuracy oracle (surrogate or proxy trainer).
    pub oracle: AccuracyOracle,
}

impl NasaicConfig {
    /// The paper's configuration: `beta = 500` episodes, `phi = 10`
    /// hardware designs per episode, `rho = 10`, two sub-accelerators.
    pub fn paper(seed: u64) -> Self {
        Self {
            episodes: 500,
            hardware_trials: 10,
            rho: 10.0,
            num_sub_accelerators: 2,
            homogeneous: false,
            accuracy_in_hardware_reward: true,
            bound_samples: 50,
            seed,
            controller: ControllerConfig::default(),
            oracle: AccuracyOracle::default(),
        }
    }

    /// A configuration small enough for unit tests and doc examples
    /// (a couple of seconds), with the same structure as the paper run.
    pub fn fast_demo(seed: u64) -> Self {
        Self {
            episodes: 40,
            hardware_trials: 4,
            bound_samples: 10,
            ..Self::paper(seed)
        }
    }

    /// A mid-sized configuration used by the benchmark harness: large
    /// enough for the search to converge on every workload, small enough to
    /// finish in seconds.
    pub fn benchmark(seed: u64) -> Self {
        Self {
            episodes: 120,
            hardware_trials: 6,
            bound_samples: 30,
            ..Self::paper(seed)
        }
    }
}

/// The run inputs a [`Nasaic::new`]-built search owns (the legacy direct
/// API); context-driven instances take them from the [`SearchContext`]
/// instead.
#[derive(Debug, Clone)]
struct BoundInputs {
    workload: Workload,
    specs: DesignSpecs,
    hardware: HardwareSpace,
    engine: EvalEngine,
}

/// The NASAIC co-exploration search.
#[derive(Debug, Clone)]
pub struct Nasaic {
    config: NasaicConfig,
    bound: Option<BoundInputs>,
}

impl Nasaic {
    /// Create a search for a workload under design specs.
    pub fn new(workload: Workload, specs: DesignSpecs, config: NasaicConfig) -> Self {
        let hardware = HardwareSpace::paper_default(config.num_sub_accelerators);
        let engine = EvalEngine::new(Evaluator::new(&workload, specs, config.oracle));
        Self {
            config,
            bound: Some(BoundInputs {
                workload,
                specs,
                hardware,
                engine,
            }),
        }
    }

    /// Create the context-driven form [`Algorithm::instantiate`] returns:
    /// the search hyperparameters come from the spec and `seed`, while the
    /// workload, specs, hardware space and engine are taken from the
    /// [`SearchContext`] at [`SearchAlgorithm::run`] time.  The legacy
    /// direct entry points ([`run`](Self::run),
    /// [`run_with_engine`](Self::run_with_engine), the builders and the
    /// input accessors) panic on an instance built this way.
    ///
    /// [`Algorithm::instantiate`]: crate::scenario::Algorithm::instantiate
    pub fn from_search_spec(spec: &SearchSpec, seed: u64) -> Self {
        Self {
            config: NasaicConfig {
                episodes: spec.episodes,
                hardware_trials: spec.hardware_trials,
                rho: spec.rho,
                // Only consulted by `Nasaic::new` when building the default
                // hardware space; the context path uses the context's space.
                num_sub_accelerators: 2,
                homogeneous: spec.homogeneous,
                accuracy_in_hardware_reward: spec.accuracy_in_hardware_reward,
                bound_samples: spec.bound_samples,
                seed,
                controller: ControllerConfig::default(),
                oracle: AccuracyOracle::default(),
            },
            bound: None,
        }
    }

    fn bound(&self, entry: &str) -> &BoundInputs {
        self.bound.as_ref().unwrap_or_else(|| {
            panic!(
                "`Nasaic::{entry}` needs the owned run inputs of `Nasaic::new`; this instance \
                 was built with `Nasaic::from_search_spec` and must run through \
                 `SearchAlgorithm::run` with a `SearchContext`"
            )
        })
    }

    fn bound_mut(&mut self, entry: &str) -> &mut BoundInputs {
        self.bound.as_mut().unwrap_or_else(|| {
            panic!(
                "`Nasaic::{entry}` needs the owned run inputs of `Nasaic::new`; this instance \
                 was built with `Nasaic::from_search_spec` and must run through \
                 `SearchAlgorithm::run` with a `SearchContext`"
            )
        })
    }

    /// Replace the hardware space (restricted dataflows, different budget,
    /// fewer sub-accelerators — used by the Table II studies).
    ///
    /// The evaluator is untouched — it does not depend on the hardware
    /// space — so this builder composes with
    /// [`with_evaluator`](Self::with_evaluator) in either order.
    ///
    /// # Panics
    ///
    /// Panics on a context-driven instance
    /// (see [`from_search_spec`](Self::from_search_spec)).
    pub fn with_hardware_space(mut self, hardware: HardwareSpace) -> Self {
        self.bound_mut("with_hardware_space").hardware = hardware;
        self
    }

    /// Replace the evaluator (custom cost model or combiner).
    ///
    /// # Panics
    ///
    /// Panics on a context-driven instance
    /// (see [`from_search_spec`](Self::from_search_spec)).
    pub fn with_evaluator(mut self, evaluator: Evaluator) -> Self {
        let bound = self.bound_mut("with_evaluator");
        let config = *bound.engine.config();
        bound.engine = EvalEngine::with_config(evaluator, config);
        self
    }

    /// Replace the engine configuration (worker-thread ceiling, caching).
    /// Composes with the other builders in any order.
    ///
    /// # Panics
    ///
    /// Panics on a context-driven instance
    /// (see [`from_search_spec`](Self::from_search_spec)).
    pub fn with_engine_config(mut self, config: crate::engine::EngineConfig) -> Self {
        let bound = self.bound_mut("with_engine_config");
        bound.engine = EvalEngine::with_config(bound.engine.evaluator().clone(), config);
        self
    }

    /// The workload being searched.
    ///
    /// # Panics
    ///
    /// Panics on a context-driven instance
    /// (see [`from_search_spec`](Self::from_search_spec)).
    pub fn workload(&self) -> &Workload {
        &self.bound("workload").workload
    }

    /// The design specs.
    ///
    /// # Panics
    ///
    /// Panics on a context-driven instance
    /// (see [`from_search_spec`](Self::from_search_spec)).
    pub fn specs(&self) -> &DesignSpecs {
        &self.bound("specs").specs
    }

    /// The hardware space.
    ///
    /// # Panics
    ///
    /// Panics on a context-driven instance
    /// (see [`from_search_spec`](Self::from_search_spec)).
    pub fn hardware_space(&self) -> &HardwareSpace {
        &self.bound("hardware_space").hardware
    }

    /// The evaluator.
    ///
    /// # Panics
    ///
    /// Panics on a context-driven instance
    /// (see [`from_search_spec`](Self::from_search_spec)).
    pub fn evaluator(&self) -> &Evaluator {
        self.bound("evaluator").engine.evaluator()
    }

    /// The shared evaluation engine (caches + batch parallelism).
    ///
    /// # Panics
    ///
    /// Panics on a context-driven instance
    /// (see [`from_search_spec`](Self::from_search_spec)).
    pub fn engine(&self) -> &EvalEngine {
        &self.bound("engine").engine
    }

    fn controller_segments(
        workload: &Workload,
        hardware: &HardwareSpace,
        config: &NasaicConfig,
    ) -> Vec<nasaic_rl::Segment> {
        if config.homogeneous {
            // One architecture segment per task + a single hardware segment
            // that is replicated over all sub-accelerators at decode time.
            let single_sub = HardwareSpace::paper_default(1)
                .with_budget(*hardware.budget())
                .with_dataflows(hardware.allowed_dataflows().to_vec());
            workload.controller_segments(&single_sub)
        } else {
            workload.controller_segments(hardware)
        }
    }

    fn decode_candidate(
        workload: &Workload,
        hardware: &HardwareSpace,
        config: &NasaicConfig,
        sample: &ControllerSample,
    ) -> Result<Candidate, nasaic_nn::space::DecodeError> {
        let m = workload.num_tasks();
        if config.homogeneous {
            // Duplicate the single hardware segment across the
            // sub-accelerators.
            let mut segments: Vec<Vec<usize>> = sample.segments[..m].to_vec();
            let hw_segment = sample.segments[m].clone();
            for _ in 0..hardware.num_sub_accelerators() {
                segments.push(hw_segment.clone());
            }
            Candidate::from_segments(workload, hardware, &segments)
        } else {
            Candidate::from_segments(workload, hardware, &sample.segments)
        }
    }

    /// Run the search and return the exploration outcome.
    ///
    /// Each episode's `1 + φ` candidates are evaluated concurrently through
    /// the [`EvalEngine`] (hardware metrics in one parallel batch, accuracy
    /// memoised across the episode's shared architectures and across
    /// episodes); controller feedback stays strictly sequential, so a run
    /// is bit-deterministic for a seed regardless of thread count.
    ///
    /// # Panics
    ///
    /// Panics on a context-driven instance
    /// (see [`from_search_spec`](Self::from_search_spec)).
    pub fn run(&self) -> SearchOutcome {
        let bound = self.bound("run");
        self.run_with_engine(&bound.engine)
    }

    /// [`run`](Self::run) through an external shared engine, so several
    /// searches (e.g. the algorithms of a `nasaic compare` run) reuse one
    /// warm cache.  The engine is observationally invisible: the outcome
    /// is bit-identical to [`run`](Self::run) regardless of what the
    /// caches already hold, as long as the engine wraps an evaluator for
    /// the same workload, specs and oracle.
    ///
    /// # Panics
    ///
    /// Panics on a context-driven instance
    /// (see [`from_search_spec`](Self::from_search_spec)).
    pub fn run_with_engine(&self, engine: &EvalEngine) -> SearchOutcome {
        let bound = self.bound("run_with_engine");
        Self::run_search(
            &bound.workload,
            &bound.specs,
            &bound.hardware,
            engine,
            &self.config,
            &NullObserver,
            None,
            &NullCheckpointSink,
        )
    }

    /// The NASAIC episode loop, shared by the legacy entry points and the
    /// [`SearchAlgorithm`] trait path.  Observation is passive: the
    /// outcome is bit-identical with any observer.
    ///
    /// Checkpoints fire per completed episode with state `{rng,
    /// controller, outcome}`; the penalty bounds and the optimizer
    /// selector are re-derived on resume (both are deterministic functions
    /// of the configuration and the engine's pure evaluations), and the
    /// controller is rebuilt from its configuration before its weights,
    /// optimizer accumulators and trainer counters are restored.
    #[allow(clippy::too_many_arguments)]
    fn run_search(
        workload: &Workload,
        specs: &DesignSpecs,
        hardware: &HardwareSpace,
        engine: &EvalEngine,
        config: &NasaicConfig,
        observer: &dyn SearchObserver,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        let stats_start = engine.stats();
        let bounds = PenaltyBounds::estimate_with_engine(
            workload,
            hardware,
            engine,
            specs,
            config.bound_samples,
            config.seed,
        );
        let selector = OptimizerSelector::new(config.hardware_trials);
        let mut controller = Controller::new(
            Self::controller_segments(workload, hardware, config),
            config.controller,
            config.seed,
        );
        let (mut rng, mut outcome, start_episode) = match resume {
            Some(cp) => {
                cp.expect_run("nasaic", config.seed);
                assert!(
                    cp.progress <= config.episodes,
                    "nasaic checkpoint progress {} exceeds the configured {} episodes",
                    cp.progress,
                    config.episodes
                );
                let rng = StdRng::from_state(
                    checkpoint::rng_state_from_value(
                        cp.state.get("rng").expect("nasaic checkpoint: rng"),
                    )
                    .expect("nasaic checkpoint: valid rng state"),
                );
                let state = checkpoint::controller_state_from_value(
                    cp.state
                        .get("controller")
                        .expect("nasaic checkpoint: controller"),
                )
                .expect("nasaic checkpoint: valid controller state");
                controller.restore_state(&state);
                let outcome = checkpoint::outcome_from_value(
                    cp.state.get("outcome").expect("nasaic checkpoint: outcome"),
                    workload,
                )
                .expect("nasaic checkpoint: valid outcome");
                (rng, outcome, cp.progress)
            }
            None => (
                StdRng::seed_from_u64(config.seed ^ 0x00c0_ffee),
                SearchOutcome::empty(),
                0,
            ),
        };
        let m = workload.num_tasks();

        for episode in start_episode..config.episodes {
            // Step 1: joint architecture + hardware prediction.
            let joint_sample = {
                let _span = crate::metrics::maybe_time(crate::metrics::controller_wall);
                controller.sample(&mut rng)
            };
            // Steps 2..: hardware-only predictions for the same architectures.
            let plan = selector.plan_episode();
            let mut episode_samples: Vec<ControllerSample> = vec![joint_sample.clone()];
            for _ in 1..plan.len() {
                let mut hw_sample = {
                    let _span = crate::metrics::maybe_time(crate::metrics::controller_wall);
                    controller.sample(&mut rng)
                };
                // Architecture switch open: reuse the joint step's
                // architecture decisions.
                let arch_len: usize = joint_sample.segments[..m].iter().map(Vec::len).sum();
                hw_sample.actions[..arch_len].copy_from_slice(&joint_sample.actions[..arch_len]);
                for (segment, joint_segment) in hw_sample.segments[..m]
                    .iter_mut()
                    .zip(&joint_sample.segments[..m])
                {
                    segment.clone_from(joint_segment);
                }
                episode_samples.push(hw_sample);
            }

            // Decode and evaluate the hardware of every step.
            let mut candidates = Vec::with_capacity(episode_samples.len());
            for sample in &episode_samples {
                match Self::decode_candidate(workload, hardware, config, sample) {
                    Ok(candidate) => candidates.push(Some(candidate)),
                    Err(_) => candidates.push(None),
                }
            }
            let architectures = candidates
                .iter()
                .flatten()
                .next()
                .map(|c| c.architectures.clone());
            // All of the episode's hardware designs are independent:
            // evaluate them as one parallel, cached batch.
            let hardware_evaluations = engine.evaluate_hardware_batch(&candidates);
            let any_meets_specs = hardware_evaluations
                .iter()
                .flatten()
                .any(|(_, check)| check.all());

            // Early pruning: skip the accuracy evaluation when no hardware
            // design of the episode can satisfy the specs.
            let accuracies = if selector.should_train(any_meets_specs) {
                architectures.as_ref().map(|archs| engine.accuracies(archs))
            } else {
                None
            };
            if accuracies.is_none() {
                outcome.pruned_episodes += 1;
            }
            let weighted = accuracies.as_ref().map(|a| engine.weighted_accuracy(a));

            let mut joint_reward = 0.0;
            for (step, (sample, candidate)) in episode_samples.iter().zip(candidates).enumerate() {
                let Some(candidate) = candidate else {
                    // Undecodable sample: strongly discourage it.
                    let _span = crate::metrics::maybe_time(crate::metrics::controller_wall);
                    controller.feedback(sample, -config.rho);
                    if step == 0 {
                        joint_reward = -config.rho;
                    }
                    continue;
                };
                let (metrics, check) = hardware_evaluations[step]
                    .expect("hardware evaluation exists for decodable candidates");
                let penalty = Penalty::compute(&metrics, specs, &bounds);
                let reward = match (step, &weighted) {
                    // Joint step with accuracy available: full Eq. 4 reward.
                    (0, Some(w)) => Reward::new(*w, &penalty, config.rho),
                    // Hardware-only steps: the paper ignores accuracy here;
                    // by default we keep the (fixed) architectures' accuracy
                    // in the reward so both step kinds share one scale.
                    (_, Some(w)) if config.accuracy_in_hardware_reward => {
                        Reward::new(*w, &penalty, config.rho)
                    }
                    (_, Some(_)) => Reward::hardware_only(&penalty, config.rho),
                    // Pruned episode: penalty-only signal for every step.
                    (_, None) => Reward::hardware_only(&penalty, config.rho),
                };
                {
                    let _span = crate::metrics::maybe_time(crate::metrics::controller_wall);
                    controller.feedback(sample, reward.value());
                }
                if step == 0 {
                    joint_reward = reward.value();
                }

                if let (Some(accs), Some(w)) = (&accuracies, &weighted) {
                    let evaluation = crate::evaluator::Evaluation {
                        accuracies: accs.clone(),
                        weighted_accuracy: *w,
                        metrics,
                        spec_check: check,
                        mapping_feasible: metrics.latency_cycles <= specs.latency_cycles,
                    };
                    outcome.record_observed(
                        ExploredSolution {
                            episode,
                            candidate,
                            evaluation,
                            reward: reward.value(),
                        },
                        observer,
                    );
                }
            }
            outcome.episodes = episode + 1;
            observer.on_event(&SearchEvent::EpisodeEvaluated {
                episode,
                evaluations: episode_samples.len(),
                weighted_accuracy: weighted,
                any_compliant: any_meets_specs,
                reward: joint_reward,
                entropy: Some(joint_sample.mean_entropy),
                baseline: controller.baseline(),
            });
            checkpoint::offer_checkpoint(
                sink,
                observer,
                "nasaic",
                config.seed,
                episode + 1,
                || {
                    let mut state = ConfigValue::table();
                    state.insert("rng", checkpoint::rng_state_to_value(&rng.state()));
                    state.insert(
                        "controller",
                        checkpoint::controller_state_to_value(&controller.export_state()),
                    );
                    state.insert("outcome", checkpoint::outcome_to_value(&outcome));
                    state
                },
            );
        }
        outcome.reward_history = controller.reward_history().to_vec();
        emit_search_finished(observer, &outcome, engine.stats().since(&stats_start));
        outcome
    }
}

impl SearchAlgorithm for Nasaic {
    fn name(&self) -> &str {
        "nasaic"
    }

    /// Run over the context's workload/specs/hardware through its engine.
    /// The search hyperparameters (including budget and seed) come from
    /// this instance's [`NasaicConfig`]; the context's `seed`/`budget`
    /// fields are descriptive (see
    /// [`Algorithm::instantiate`](crate::scenario::Algorithm::instantiate)).
    ///
    /// The search stays on the sequential shard fallback: the controller
    /// learns from every episode's reward before sampling the next one, so
    /// episodes cannot be strided across workers without changing the
    /// policy trajectory.
    fn run_checkpointed(
        &self,
        ctx: &SearchContext<'_>,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> SearchOutcome {
        Self::run_search(
            ctx.workload,
            &ctx.specs,
            ctx.hardware,
            ctx.engine,
            &self.config,
            ctx.observer(),
            resume,
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadId;

    fn run_fast(workload: Workload, id: WorkloadId, seed: u64) -> SearchOutcome {
        let specs = DesignSpecs::for_workload(id);
        Nasaic::new(workload, specs, NasaicConfig::fast_demo(seed)).run()
    }

    #[test]
    fn w1_search_finds_spec_compliant_solutions() {
        let outcome = run_fast(Workload::w1(), WorkloadId::W1, 11);
        assert!(outcome.best.is_some(), "no compliant solution found");
        assert!(!outcome.spec_compliant.is_empty());
        for solution in &outcome.spec_compliant {
            assert!(solution.evaluation.meets_specs());
        }
        assert_eq!(outcome.episodes, 40);
    }

    #[test]
    fn w3_search_finds_spec_compliant_solutions() {
        // W3's energy spec is the tightest of the three workloads, so give
        // this check a slightly larger episode budget than fast_demo.
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let config = NasaicConfig {
            episodes: 60,
            ..NasaicConfig::fast_demo(13)
        };
        let outcome = Nasaic::new(Workload::w3(), specs, config).run();
        assert!(outcome.best.is_some());
        let best = outcome.best.as_ref().unwrap();
        // Accuracy of compliant solutions must beat the smallest-network
        // lower bound of 78.93%.
        assert!(best.evaluation.weighted_accuracy > 0.7893);
    }

    #[test]
    fn best_solution_accuracy_is_above_lower_bound_and_below_nas_best() {
        let outcome = run_fast(Workload::w1(), WorkloadId::W1, 17);
        let best = outcome.best.as_ref().expect("a compliant solution exists");
        // Lower bound: (78.93% + 0.642) / 2; NAS upper bound: (94.2% + 0.84) / 2.
        assert!(best.evaluation.weighted_accuracy > 0.715);
        assert!(best.evaluation.weighted_accuracy < 0.895);
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let a = run_fast(Workload::w3(), WorkloadId::W3, 5);
        let b = run_fast(Workload::w3(), WorkloadId::W3, 5);
        assert_eq!(a.best_weighted_accuracy(), b.best_weighted_accuracy());
        assert_eq!(a.explored.len(), b.explored.len());
    }

    #[test]
    fn homogeneous_mode_produces_identical_sub_accelerators() {
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let config = NasaicConfig {
            homogeneous: true,
            ..NasaicConfig::fast_demo(3)
        };
        let outcome = Nasaic::new(Workload::w3(), specs, config).run();
        for solution in &outcome.explored {
            let subs = solution.candidate.accelerator.sub_accelerators();
            assert_eq!(subs.len(), 2);
            assert_eq!(
                subs[0], subs[1],
                "homogeneous design must replicate the sub-accelerator"
            );
        }
    }

    #[test]
    fn builder_order_does_not_discard_a_custom_evaluator() {
        // Regression: `with_hardware_space` used to rebuild the evaluator
        // from the config, silently dropping a custom cost model/combiner
        // installed by an earlier `with_evaluator` call.
        use nasaic_accel::HardwareSpace;
        use nasaic_accuracy::AccuracyCombiner;

        let workload = Workload::w3();
        let specs = DesignSpecs::for_workload(WorkloadId::W3);
        let config = NasaicConfig::fast_demo(1);
        let custom = Evaluator::new(&workload, specs, AccuracyOracle::default())
            .with_combiner(AccuracyCombiner::Minimum);
        let hardware = HardwareSpace::paper_default(1);

        let evaluator_first = Nasaic::new(workload.clone(), specs, config)
            .with_evaluator(custom.clone())
            .with_hardware_space(hardware.clone());
        let hardware_first = Nasaic::new(workload, specs, config)
            .with_hardware_space(hardware)
            .with_evaluator(custom);

        // The Minimum combiner must survive in both orders.
        let accuracies = [0.25, 0.75];
        assert_eq!(
            evaluator_first.evaluator().weighted_accuracy(&accuracies),
            0.25
        );
        assert_eq!(
            hardware_first.evaluator().weighted_accuracy(&accuracies),
            0.25
        );
        assert_eq!(evaluator_first.hardware_space().num_sub_accelerators(), 1);
        assert_eq!(hardware_first.hardware_space().num_sub_accelerators(), 1);
    }

    #[test]
    fn reward_history_length_matches_feedback_count() {
        let outcome = run_fast(Workload::w3(), WorkloadId::W3, 19);
        // Every episode gives (1 + hardware_trials) feedbacks.
        assert_eq!(outcome.reward_history.len(), 40 * (1 + 4));
    }
}
