//! Exploration logging: every evaluated solution, the spec-compliant
//! subset, the best solution found, and per-phase summaries of the
//! successive baselines.

use crate::algorithm::{SearchEvent, SearchObserver};
use crate::candidate::Candidate;
use crate::evaluator::Evaluation;
use crate::scenario::value::ConfigValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One evaluated (candidate, evaluation, reward) triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploredSolution {
    /// Episode at which the solution was evaluated.
    pub episode: usize,
    /// The candidate (architectures + accelerator).
    pub candidate: Candidate,
    /// Its evaluation (accuracies + hardware metrics + spec check).
    pub evaluation: Evaluation,
    /// The reward fed back to the controller.
    pub reward: f64,
}

impl fmt::Display for ExploredSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ep{:04} {} -> {} (R {:.4})",
            self.episode,
            self.candidate.summary(),
            self.evaluation,
            self.reward
        )
    }
}

/// The summary of one named phase of a multi-phase search (the successive
/// baselines run two: NAS then an ASIC sweep, or a hardware search then
/// hardware-aware NAS).  Phase summaries keep the intermediate results the
/// old tuple-returning APIs used to discard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase name (`nas`, `asic-sweep`, `asic-monte-carlo`, `hw-nas`).
    pub name: String,
    /// Episodes (or samples) the phase spent.
    pub episodes: usize,
    /// Fully evaluated solutions the phase recorded into the outcome.
    pub explored: usize,
    /// Spec-compliant solutions among them.
    pub spec_compliant: usize,
    /// The best weighted accuracy the phase saw, if the accuracy path ran.
    pub best_weighted_accuracy: Option<f64>,
    /// Free-form phase result: the NAS-chosen architectures, the selected
    /// accelerator, or the sweep's least-violating representative.
    pub detail: String,
}

impl PhaseSummary {
    /// The summary as a [`ConfigValue`] table (used by the report JSON and
    /// the trace observer).
    pub fn to_value(&self) -> ConfigValue {
        let mut root = ConfigValue::table();
        root.insert("name", ConfigValue::Str(self.name.clone()));
        root.insert("episodes", ConfigValue::Integer(self.episodes as i64));
        root.insert("explored", ConfigValue::Integer(self.explored as i64));
        root.insert(
            "spec_compliant",
            ConfigValue::Integer(self.spec_compliant as i64),
        );
        if let Some(acc) = self.best_weighted_accuracy {
            root.insert("best_weighted_accuracy", ConfigValue::Float(acc));
        }
        root.insert("detail", ConfigValue::Str(self.detail.clone()));
        root
    }
}

/// The outcome of one NASAIC (or baseline) search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The best spec-compliant solution by weighted accuracy, if any.
    pub best: Option<ExploredSolution>,
    /// Every spec-compliant solution found (the green diamonds of Fig. 6).
    pub spec_compliant: Vec<ExploredSolution>,
    /// Every fully evaluated solution (capped by the search configuration).
    pub explored: Vec<ExploredSolution>,
    /// Number of episodes executed.
    pub episodes: usize,
    /// Reward history over the run (for convergence plots).
    pub reward_history: Vec<f64>,
    /// Number of episodes whose accuracy evaluation was skipped by early
    /// pruning (no feasible hardware design found).
    pub pruned_episodes: usize,
    /// Per-phase summaries, in execution order (empty for single-phase
    /// algorithms).
    pub phases: Vec<PhaseSummary>,
}

impl SearchOutcome {
    /// Create an empty outcome (used incrementally by searches).
    pub fn empty() -> Self {
        Self {
            best: None,
            spec_compliant: Vec::new(),
            explored: Vec::new(),
            episodes: 0,
            reward_history: Vec::new(),
            pruned_episodes: 0,
            phases: Vec::new(),
        }
    }

    /// Record one evaluated solution, updating the compliant set and the
    /// incumbent best.  Returns `true` when the solution became the new
    /// best spec-compliant solution.
    pub fn record(&mut self, solution: ExploredSolution) -> bool {
        let mut improved = false;
        if solution.evaluation.meets_specs() {
            let better = match &self.best {
                None => true,
                Some(best) => {
                    solution.evaluation.weighted_accuracy > best.evaluation.weighted_accuracy
                }
            };
            if better {
                self.best = Some(solution.clone());
                improved = true;
            }
            self.spec_compliant.push(solution.clone());
        }
        self.explored.push(solution);
        improved
    }

    /// [`record`](Self::record) with observation: emits a
    /// [`SearchEvent::NewIncumbent`] when the solution improves on the
    /// best spec-compliant solution so far.  Observation is passive — the
    /// recorded outcome is identical to plain `record`.
    pub fn record_observed(&mut self, solution: ExploredSolution, observer: &dyn SearchObserver) {
        if self.record(solution) {
            let best = self.best.as_ref().expect("record reported a new incumbent");
            observer.on_event(&SearchEvent::NewIncumbent {
                episode: best.episode,
                weighted_accuracy: best.evaluation.weighted_accuracy,
                latency_cycles: best.evaluation.metrics.latency_cycles,
                energy_nj: best.evaluation.metrics.energy_nj,
                area_um2: best.evaluation.metrics.area_um2,
                candidate: best.candidate.summary(),
            });
        }
    }

    /// The best weighted accuracy among spec-compliant solutions, if any.
    pub fn best_weighted_accuracy(&self) -> Option<f64> {
        self.best.as_ref().map(|s| s.evaluation.weighted_accuracy)
    }

    /// Fraction of explored solutions that satisfy all specs.
    pub fn compliance_rate(&self) -> f64 {
        if self.explored.is_empty() {
            return 0.0;
        }
        self.spec_compliant.len() as f64 / self.explored.len() as f64
    }
}

impl Default for SearchOutcome {
    fn default() -> Self {
        Self::empty()
    }
}

impl fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "search outcome: {} episodes, {} explored, {} spec-compliant ({} pruned)",
            self.episodes,
            self.explored.len(),
            self.spec_compliant.len(),
            self.pruned_episodes
        )?;
        match &self.best {
            Some(best) => write!(f, "best: {best}"),
            None => write!(f, "best: none found"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{AccuracyOracle, Evaluator};
    use crate::spec::{DesignSpecs, WorkloadId};
    use crate::workload::Workload;
    use nasaic_accel::{Accelerator, Dataflow, SubAccelerator};

    fn make_solution(episode: usize, big: bool) -> ExploredSolution {
        let workload = Workload::w1();
        let specs = DesignSpecs::for_workload(WorkloadId::W1);
        let evaluator = Evaluator::new(&workload, specs, AccuracyOracle::default());
        let architectures: Vec<_> = workload
            .tasks
            .iter()
            .map(|t| {
                if big {
                    t.backbone.largest_architecture()
                } else {
                    t.backbone.smallest_architecture()
                }
            })
            .collect();
        let accelerator = Accelerator::new(vec![
            SubAccelerator::new(Dataflow::Nvdla, 1760, 40),
            SubAccelerator::new(Dataflow::Shidiannao, 1152, 24),
        ]);
        let candidate = Candidate::from_parts(architectures, accelerator);
        let evaluation = evaluator.evaluate(&candidate);
        ExploredSolution {
            episode,
            candidate,
            evaluation,
            reward: 0.0,
        }
    }

    #[test]
    fn record_tracks_compliant_and_best() {
        let mut outcome = SearchOutcome::empty();
        let compliant = make_solution(0, false);
        let violating = make_solution(1, true);
        assert!(compliant.evaluation.meets_specs());
        assert!(!violating.evaluation.meets_specs());
        outcome.record(compliant.clone());
        outcome.record(violating);
        assert_eq!(outcome.explored.len(), 2);
        assert_eq!(outcome.spec_compliant.len(), 1);
        assert_eq!(outcome.best.as_ref().unwrap().episode, 0);
        assert!(outcome.best_weighted_accuracy().unwrap() > 0.5);
        assert!((outcome.compliance_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn better_compliant_solution_replaces_best() {
        let mut outcome = SearchOutcome::empty();
        let mut first = make_solution(0, false);
        first.evaluation.weighted_accuracy = 0.80;
        let mut second = make_solution(1, false);
        second.evaluation.weighted_accuracy = 0.90;
        let mut worse = make_solution(2, false);
        worse.evaluation.weighted_accuracy = 0.70;
        outcome.record(first);
        outcome.record(second);
        outcome.record(worse);
        assert_eq!(outcome.best.as_ref().unwrap().episode, 1);
        assert_eq!(outcome.spec_compliant.len(), 3);
    }

    #[test]
    fn empty_outcome_has_no_best() {
        let outcome = SearchOutcome::empty();
        assert!(outcome.best.is_none());
        assert_eq!(outcome.compliance_rate(), 0.0);
        assert!(outcome.to_string().contains("none found"));
    }

    #[test]
    fn display_mentions_counts() {
        let mut outcome = SearchOutcome::empty();
        outcome.record(make_solution(0, false));
        outcome.episodes = 1;
        let text = outcome.to_string();
        assert!(text.contains("1 explored"));
        assert!(text.contains("best:"));
    }
}
