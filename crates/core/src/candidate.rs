//! A co-exploration candidate: one architecture per task plus a hardware
//! design.

use crate::workload::Workload;
use nasaic_accel::{Accelerator, HardwareSpace};
use nasaic_nn::layer::Architecture;
use nasaic_nn::space::DecodeError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully decoded candidate solution: the `nas(D_i)` outputs for every
/// task and the `alloc(aic_k)` outputs for every sub-accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// One concrete architecture per task, in workload order.
    pub architectures: Vec<Architecture>,
    /// The heterogeneous accelerator design.
    pub accelerator: Accelerator,
    /// The controller index vectors that produced the architectures
    /// (one per task).
    pub architecture_indices: Vec<Vec<usize>>,
    /// The controller index vector that produced the accelerator.
    pub hardware_indices: Vec<usize>,
}

impl Candidate {
    /// Decode a candidate from controller segments: the first `m` segments
    /// are per-task architecture choices, the rest are per-sub-accelerator
    /// hardware choices.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if a segment does not fit its search space.
    ///
    /// # Panics
    ///
    /// Panics if the number of segments differs from
    /// `workload.num_tasks() + hardware.num_sub_accelerators()`.
    pub fn from_segments(
        workload: &Workload,
        hardware: &HardwareSpace,
        segments: &[Vec<usize>],
    ) -> Result<Self, DecodeError> {
        let m = workload.num_tasks();
        let k = hardware.num_sub_accelerators();
        assert_eq!(
            segments.len(),
            m + k,
            "expected {m} architecture segments + {k} hardware segments, got {}",
            segments.len()
        );
        let mut architectures = Vec::with_capacity(m);
        let mut architecture_indices = Vec::with_capacity(m);
        for (task, segment) in workload.tasks.iter().zip(&segments[..m]) {
            architectures.push(task.backbone.materialize(segment)?);
            architecture_indices.push(segment.clone());
        }
        let hardware_indices: Vec<usize> = segments[m..].iter().flatten().copied().collect();
        let accelerator = hardware.decode(&hardware_indices)?;
        Ok(Self {
            architectures,
            accelerator,
            architecture_indices,
            hardware_indices,
        })
    }

    /// Build a candidate directly from concrete parts (used by baselines
    /// that do not go through the controller).
    pub fn from_parts(architectures: Vec<Architecture>, accelerator: Accelerator) -> Self {
        let architecture_indices = architectures
            .iter()
            .map(|a| a.hyperparameters.clone())
            .collect();
        Self {
            architectures,
            accelerator,
            architecture_indices,
            hardware_indices: Vec::new(),
        }
    }

    /// Replace the accelerator while keeping the architectures (used by the
    /// hardware-only exploration steps of the optimizer selector).
    pub fn with_accelerator(
        mut self,
        accelerator: Accelerator,
        hardware_indices: Vec<usize>,
    ) -> Self {
        self.accelerator = accelerator;
        self.hardware_indices = hardware_indices;
        self
    }

    /// Compact summary of the candidate in the paper's notation.
    pub fn summary(&self) -> String {
        let archs: Vec<String> = self
            .architectures
            .iter()
            .map(|a| a.hyperparameter_string())
            .collect();
        format!(
            "{} | {}",
            archs.join(" & "),
            self.accelerator.paper_notation()
        )
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use nasaic_accel::{Dataflow, SubAccelerator};
    use nasaic_nn::backbone::Backbone;

    #[test]
    fn decodes_segments_into_architectures_and_accelerator() {
        let workload = Workload::w1();
        let hardware = HardwareSpace::paper_default(2);
        let segments = vec![
            vec![2, 2, 2, 3, 2, 3, 2], // CIFAR ResNet
            vec![2, 1, 1, 1, 1, 1],    // Nuclei U-Net
            vec![1, 8, 4],             // aic0: nvdla, mid PEs, mid BW
            vec![0, 8, 4],             // aic1: shidiannao
        ];
        let candidate = Candidate::from_segments(&workload, &hardware, &segments).unwrap();
        assert_eq!(candidate.architectures.len(), 2);
        assert_eq!(candidate.architectures[0].name, "resnet9-cifar10");
        assert_eq!(candidate.architectures[1].name, "unet-nuclei");
        assert_eq!(candidate.accelerator.sub_accelerators().len(), 2);
        assert!(candidate.accelerator.has_capacity());
        assert!(candidate.summary().contains("dla") || candidate.summary().contains("shi"));
    }

    #[test]
    fn invalid_segment_indices_are_reported() {
        let workload = Workload::w3();
        let hardware = HardwareSpace::paper_default(2);
        let segments = vec![
            vec![9, 0, 0, 0, 0, 0, 0], // index 9 out of range
            vec![0, 0, 0, 0, 0, 0, 0],
            vec![0, 0, 0],
            vec![0, 0, 0],
        ];
        assert!(Candidate::from_segments(&workload, &hardware, &segments).is_err());
    }

    #[test]
    #[should_panic]
    fn wrong_segment_count_panics() {
        let workload = Workload::w3();
        let hardware = HardwareSpace::paper_default(2);
        let _ = Candidate::from_segments(&workload, &hardware, &[vec![0; 7]]);
    }

    #[test]
    fn from_parts_and_with_accelerator() {
        let arch = Backbone::ResNet9Cifar10.materialize_values(&[8, 32, 0, 32, 0, 32, 0]);
        let acc = Accelerator::single(SubAccelerator::new(Dataflow::Nvdla, 1024, 32));
        let candidate = Candidate::from_parts(vec![arch.clone()], acc);
        assert_eq!(candidate.architectures[0], arch);
        let other = Accelerator::single(SubAccelerator::new(Dataflow::Shidiannao, 512, 16));
        let replaced = candidate.with_accelerator(other.clone(), vec![0, 2, 2]);
        assert_eq!(replaced.accelerator, other);
        assert_eq!(replaced.hardware_indices, vec![0, 2, 2]);
        assert_eq!(replaced.architectures[0], arch);
    }
}
