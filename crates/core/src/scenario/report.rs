//! Result summaries the CLI emits: one [`RunReport`] per (scenario,
//! algorithm) run, serializable as JSON, CSV or human-readable text.

use super::value::{self, ConfigValue};
use super::{Algorithm, Scenario};
use crate::algorithm::{NullObserver, SearchObserver};
use crate::checkpoint::{CheckpointSink, NullCheckpointSink, SearchCheckpoint};
use crate::engine::{CacheStats, EvalEngine};
use crate::log::{PhaseSummary, SearchOutcome};
use std::fmt;
use std::time::Instant;

/// The spec-compliant best solution of a run, flattened for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct BestSolution {
    /// Episode (or sample index) the solution was found at.
    pub episode: usize,
    /// Combined accuracy of Eq. 2.
    pub weighted_accuracy: f64,
    /// Per-task accuracies, in task order.
    pub accuracies: Vec<f64>,
    /// Achieved latency in cycles.
    pub latency_cycles: f64,
    /// Achieved energy in nJ.
    pub energy_nj: f64,
    /// Achieved area in µm².
    pub area_um2: f64,
    /// The candidate in the paper's notation
    /// (hyperparameters | per-sub-accelerator allocations).
    pub candidate: String,
}

/// The summary of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Algorithm that produced the outcome.
    pub algorithm: Algorithm,
    /// Seed of the run.
    pub seed: u64,
    /// Episodes (or generations/samples) executed.
    pub episodes: usize,
    /// Fully evaluated solutions.
    pub explored: usize,
    /// Spec-compliant solutions among them.
    pub spec_compliant: usize,
    /// Episodes skipped by early pruning (NASAIC only; 0 for baselines).
    pub pruned_episodes: usize,
    /// `spec_compliant / explored` (0 when nothing was explored).
    pub compliance_rate: f64,
    /// The best spec-compliant solution, if any.
    pub best: Option<BestSolution>,
    /// Per-phase summaries of multi-phase algorithms (the successive
    /// baselines' intermediate results; empty otherwise).
    pub phases: Vec<PhaseSummary>,
    /// Fraction of evaluator queries served from the engine caches.
    pub cache_hit_rate: f64,
    /// Fraction of accuracy queries served from the accuracy cache.
    pub accuracy_hit_rate: f64,
    /// Fraction of hardware queries served from the hardware cache.
    pub hardware_hit_rate: f64,
    /// Accuracy-cache entries resident at the end of the run.
    pub accuracy_entries: u64,
    /// Hardware-cache entries resident at the end of the run.
    pub hardware_entries: u64,
    /// Accuracy-cache entries evicted during the run (0 on an unbounded
    /// cache).
    pub accuracy_evictions: u64,
    /// Hardware-cache entries evicted during the run (0 on an unbounded
    /// cache).
    pub hardware_evictions: u64,
    /// Configured accuracy-cache capacity (0 = unbounded).
    pub accuracy_capacity: u64,
    /// Configured hardware-cache capacity (0 = unbounded).
    pub hardware_capacity: u64,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// The scenario's scheduler policy (`heuristic`, `auto`, `beam`,
    /// `exact`).
    pub sched_policy: String,
    /// The solver tier that covers this scenario's hardware evaluations
    /// (decided on the largest instance the task vector can produce).
    pub sched_tier: String,
    /// Why that tier was selected — names the crossed layer limit, so an
    /// instance past `EXACT_LAYER_LIMIT` is diagnosed instead of silently
    /// downgraded.
    pub sched_tier_reason: String,
}

impl RunReport {
    /// Summarise a search outcome.  `cache` must be the cache counters of
    /// *this run only* — on a shared engine, the delta of
    /// [`EvalEngine::stats`](crate::engine::EvalEngine::stats) snapshots
    /// taken around the run (see
    /// [`CacheStats::since`](crate::engine::CacheStats::since)), so
    /// per-algorithm rates in a `compare` stay comparable.
    pub fn new(
        scenario: &Scenario,
        algorithm: Algorithm,
        outcome: &SearchOutcome,
        cache: CacheStats,
        wall_ms: u64,
    ) -> Self {
        let best = outcome.best.as_ref().map(|solution| BestSolution {
            episode: solution.episode,
            weighted_accuracy: solution.evaluation.weighted_accuracy,
            accuracies: solution.evaluation.accuracies.clone(),
            latency_cycles: solution.evaluation.metrics.latency_cycles,
            energy_nj: solution.evaluation.metrics.energy_nj,
            area_um2: solution.evaluation.metrics.area_um2,
            candidate: solution.candidate.summary(),
        });
        let decision = scenario.scheduler_decision();
        Self {
            scenario: scenario.name.clone(),
            algorithm,
            seed: scenario.seed,
            episodes: outcome.episodes,
            explored: outcome.explored.len(),
            spec_compliant: outcome.spec_compliant.len(),
            pruned_episodes: outcome.pruned_episodes,
            compliance_rate: outcome.compliance_rate(),
            best,
            phases: outcome.phases.clone(),
            cache_hit_rate: cache.hit_rate(),
            accuracy_hit_rate: cache.accuracy_hit_rate(),
            hardware_hit_rate: cache.hardware_hit_rate(),
            accuracy_entries: cache.accuracy_entries,
            hardware_entries: cache.hardware_entries,
            accuracy_evictions: cache.accuracy_evictions,
            hardware_evictions: cache.hardware_evictions,
            accuracy_capacity: cache.accuracy_capacity,
            hardware_capacity: cache.hardware_capacity,
            wall_ms,
            sched_policy: scenario.search.scheduler.name().to_string(),
            sched_tier: decision.tier.name().to_string(),
            sched_tier_reason: decision.reason,
        }
    }

    /// The report as a [`ConfigValue`] table (backing the JSON form).
    pub fn to_value(&self) -> ConfigValue {
        let mut root = ConfigValue::table();
        root.insert("scenario", ConfigValue::Str(self.scenario.clone()));
        root.insert(
            "algorithm",
            ConfigValue::Str(self.algorithm.name().to_string()),
        );
        root.insert("seed", ConfigValue::Integer(self.seed as i64));
        root.insert("episodes", ConfigValue::Integer(self.episodes as i64));
        root.insert("explored", ConfigValue::Integer(self.explored as i64));
        root.insert(
            "spec_compliant",
            ConfigValue::Integer(self.spec_compliant as i64),
        );
        root.insert(
            "pruned_episodes",
            ConfigValue::Integer(self.pruned_episodes as i64),
        );
        root.insert("compliance_rate", ConfigValue::Float(self.compliance_rate));
        root.insert("cache_hit_rate", ConfigValue::Float(self.cache_hit_rate));
        root.insert(
            "accuracy_hit_rate",
            ConfigValue::Float(self.accuracy_hit_rate),
        );
        root.insert(
            "hardware_hit_rate",
            ConfigValue::Float(self.hardware_hit_rate),
        );
        root.insert(
            "accuracy_entries",
            ConfigValue::Integer(self.accuracy_entries as i64),
        );
        root.insert(
            "hardware_entries",
            ConfigValue::Integer(self.hardware_entries as i64),
        );
        root.insert(
            "accuracy_evictions",
            ConfigValue::Integer(self.accuracy_evictions as i64),
        );
        root.insert(
            "hardware_evictions",
            ConfigValue::Integer(self.hardware_evictions as i64),
        );
        root.insert(
            "accuracy_capacity",
            ConfigValue::Integer(self.accuracy_capacity as i64),
        );
        root.insert(
            "hardware_capacity",
            ConfigValue::Integer(self.hardware_capacity as i64),
        );
        root.insert("wall_ms", ConfigValue::Integer(self.wall_ms as i64));
        root.insert("sched_policy", ConfigValue::Str(self.sched_policy.clone()));
        root.insert("sched_tier", ConfigValue::Str(self.sched_tier.clone()));
        root.insert(
            "sched_tier_reason",
            ConfigValue::Str(self.sched_tier_reason.clone()),
        );
        if !self.phases.is_empty() {
            root.insert(
                "phases",
                ConfigValue::Array(self.phases.iter().map(PhaseSummary::to_value).collect()),
            );
        }
        match &self.best {
            None => {}
            Some(best) => {
                let mut b = ConfigValue::table();
                b.insert("episode", ConfigValue::Integer(best.episode as i64));
                b.insert(
                    "weighted_accuracy",
                    ConfigValue::Float(best.weighted_accuracy),
                );
                b.insert(
                    "accuracies",
                    ConfigValue::Array(
                        best.accuracies
                            .iter()
                            .map(|a| ConfigValue::Float(*a))
                            .collect(),
                    ),
                );
                b.insert("latency_cycles", ConfigValue::Float(best.latency_cycles));
                b.insert("energy_nj", ConfigValue::Float(best.energy_nj));
                b.insert("area_um2", ConfigValue::Float(best.area_um2));
                b.insert("candidate", ConfigValue::Str(best.candidate.clone()));
                root.insert("best", b);
            }
        }
        root
    }

    /// The report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        value::to_json(&self.to_value())
    }

    /// Header row matching [`RunReport::to_csv_row`].
    pub const CSV_HEADER: &'static str = "scenario,algorithm,seed,episodes,explored,\
        spec_compliant,pruned_episodes,compliance_rate,best_weighted_accuracy,\
        best_latency_cycles,best_energy_nj,best_area_um2,cache_hit_rate,\
        accuracy_hit_rate,hardware_hit_rate,accuracy_entries,hardware_entries,\
        accuracy_evictions,hardware_evictions,accuracy_capacity,hardware_capacity,\
        wall_ms,sched_policy,sched_tier,sched_tier_reason";

    /// The report as one CSV row (best-solution columns are empty when no
    /// spec-compliant solution was found).  The free-form scenario name is
    /// quoted when it would break the column grid.
    pub fn to_csv_row(&self) -> String {
        let (acc, lat, energy, area) = match &self.best {
            Some(b) => (
                format!("{:.6}", b.weighted_accuracy),
                format!("{:.1}", b.latency_cycles),
                format!("{:.1}", b.energy_nj),
                format!("{:.1}", b.area_um2),
            ),
            None => Default::default(),
        };
        format!(
            "{},{},{},{},{},{},{},{:.4},{},{},{},{},{:.4},{:.4},{:.4},{},{},{},{},{},{},{},{},{},{}",
            csv_field(&self.scenario),
            self.algorithm.name(),
            self.seed,
            self.episodes,
            self.explored,
            self.spec_compliant,
            self.pruned_episodes,
            self.compliance_rate,
            acc,
            lat,
            energy,
            area,
            self.cache_hit_rate,
            self.accuracy_hit_rate,
            self.hardware_hit_rate,
            self.accuracy_entries,
            self.hardware_entries,
            self.accuracy_evictions,
            self.hardware_evictions,
            self.accuracy_capacity,
            self.hardware_capacity,
            self.wall_ms,
            csv_field(&self.sched_policy),
            csv_field(&self.sched_tier),
            csv_field(&self.sched_tier_reason)
        )
    }
}

/// RFC-4180 quoting for a free-form CSV field: wrapped in double quotes
/// (with `"` doubled) when it contains a separator, quote or newline.
fn csv_field(text: &str) -> String {
    if text.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", text.replace('"', "\"\""))
    } else {
        text.to_string()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}] seed {}: {} episodes, {} explored, {} spec-compliant \
             ({} pruned), cache hit rate {:.1}% \
             (accuracy {:.1}%, hardware {:.1}%, {} evicted), {} ms",
            self.scenario,
            self.algorithm,
            self.seed,
            self.episodes,
            self.explored,
            self.spec_compliant,
            self.pruned_episodes,
            self.cache_hit_rate * 100.0,
            self.accuracy_hit_rate * 100.0,
            self.hardware_hit_rate * 100.0,
            self.accuracy_evictions + self.hardware_evictions,
            self.wall_ms
        )?;
        if self.accuracy_capacity > 0 || self.hardware_capacity > 0 {
            writeln!(
                f,
                "cache bounds: accuracy {} / {}, hardware {} / {} \
                 (evicted {} + {})",
                self.accuracy_entries,
                self.accuracy_capacity,
                self.hardware_entries,
                self.hardware_capacity,
                self.accuracy_evictions,
                self.hardware_evictions
            )?;
        }
        writeln!(
            f,
            "scheduler: {} tier under policy {} — {}",
            self.sched_tier, self.sched_policy, self.sched_tier_reason
        )?;
        for phase in &self.phases {
            let best = match phase.best_weighted_accuracy {
                Some(acc) => format!(", best {acc:.4}"),
                None => String::new(),
            };
            writeln!(
                f,
                "  phase {}: {} episode(s), {} explored, {} compliant{} — {}",
                phase.name,
                phase.episodes,
                phase.explored,
                phase.spec_compliant,
                best,
                phase.detail
            )?;
        }
        match &self.best {
            Some(best) => write!(
                f,
                "best @ ep{}: weighted accuracy {:.4}, latency {:.3e} cycles, \
                 energy {:.3e} nJ, area {:.3e} um^2\n  {}",
                best.episode,
                best.weighted_accuracy,
                best.latency_cycles,
                best.energy_nj,
                best.area_um2,
                best.candidate
            ),
            None => write!(f, "best: no spec-compliant solution found"),
        }
    }
}

impl Scenario {
    /// Run the scenario's declared algorithm and summarise the result
    /// (wall-clock timed; this is what `nasaic run` emits).
    pub fn run_report(&self) -> RunReport {
        let engine = self.engine();
        self.run_report_with_engine(self.search.algorithm, &engine)
    }

    /// Run one algorithm through a shared engine and summarise the result
    /// (the `nasaic compare` path).  The reported cache hit rate covers
    /// this run only, even when the engine already served earlier runs.
    pub fn run_report_with_engine(&self, algorithm: Algorithm, engine: &EvalEngine) -> RunReport {
        self.run_report_observed(algorithm, engine, &NullObserver)
    }

    /// [`run_report_with_engine`](Self::run_report_with_engine) with a
    /// [`SearchObserver`] streaming the run's events (the CLI's
    /// `nasaic run --trace` path).  Observation is passive: the report is
    /// identical (modulo wall time) to the unobserved run.
    pub fn run_report_observed(
        &self,
        algorithm: Algorithm,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
    ) -> RunReport {
        self.run_report_checkpointed(algorithm, engine, observer, None, &NullCheckpointSink)
    }

    /// [`run_report_observed`](Self::run_report_observed) with checkpoint
    /// plumbing (the CLI's `--checkpoint`/`--resume` path): `resume`
    /// continues from a saved checkpoint, `sink` receives new ones.
    pub fn run_report_checkpointed(
        &self,
        algorithm: Algorithm,
        engine: &EvalEngine,
        observer: &dyn SearchObserver,
        resume: Option<&SearchCheckpoint>,
        sink: &dyn CheckpointSink,
    ) -> RunReport {
        let stats_before = engine.stats();
        let start = Instant::now();
        let outcome = self.run_algorithm_checkpointed(algorithm, engine, observer, resume, sink);
        let wall_ms = start.elapsed().as_millis() as u64;
        RunReport::new(
            self,
            algorithm,
            &outcome,
            engine.stats().since(&stats_before),
            wall_ms,
        )
    }

    /// Summarise an already-computed outcome (the `nasaic merge` path,
    /// where the merge itself does no evaluation worth timing).
    pub fn report_for_outcome(&self, algorithm: Algorithm, outcome: &SearchOutcome) -> RunReport {
        RunReport::new(self, algorithm, outcome, CacheStats::default(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::registry;

    fn tiny(name: &str, algorithm: Algorithm) -> Scenario {
        let mut scenario = registry::get(name).expect("built-in");
        scenario.search.algorithm = algorithm;
        scenario.search.episodes = 6;
        scenario.search.hardware_trials = 3;
        scenario.search.bound_samples = 5;
        scenario.seed = 11;
        scenario
    }

    #[test]
    fn run_report_summarises_a_tiny_nasaic_run() {
        let report = tiny("w3", Algorithm::Nasaic).run_report();
        assert_eq!(report.scenario, "w3");
        assert_eq!(report.algorithm, Algorithm::Nasaic);
        assert_eq!(report.episodes, 6);
        assert!(report.cache_hit_rate > 0.0);
        // JSON parses back and carries the same counts.
        let parsed = value::parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed.get("episodes").unwrap().as_integer(), Some(6));
        assert_eq!(parsed.get("algorithm").unwrap().as_str(), Some("nasaic"));
        // CSV row and header have the same number of columns.
        assert_eq!(
            report.to_csv_row().split(',').count(),
            RunReport::CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn baseline_reports_flow_through_the_same_path() {
        let report = tiny("w3", Algorithm::MonteCarlo).run_report();
        assert_eq!(report.algorithm, Algorithm::MonteCarlo);
        // Monte-Carlo spends the full evaluation budget as samples.
        assert_eq!(report.episodes, 6 * (1 + 3));
        assert_eq!(report.explored, 24);
    }

    #[test]
    fn display_mentions_outcome_counts() {
        let report = tiny("w3", Algorithm::Nasaic).run_report();
        let text = report.to_string();
        assert!(text.contains("w3 [nasaic]"), "{text}");
        assert!(text.contains("episodes"), "{text}");
    }
}
